#!/usr/bin/env python3
"""Validate pgr telemetry against the checked-in schema, stdlib-only
(CI runners have no jsonschema package).

Document mode — check a `pgr ... --metrics json` file:

    python3 schema/validate.py schema/metrics.schema.json out.json [command]

Checks the generic pgr-metrics/2 shape (sections, name patterns, integer
fields, histogram quantiles) and, when `command` (train | compress | run
| serve) is given, that every metric name the schema pins for that
command is present — so renaming or dropping a documented metric fails
CI instead of drifting silently.

Drift mode — cross-check the schema against the Rust name registry:

    python3 schema/validate.py --drift schema/metrics.schema.json \
        crates/telemetry/src/names.rs

Parses every `pub const NAME: &str = "...";` out of names.rs and fails
if (a) any constant is absent from the schema's x-metric-names list,
(b) the list carries a stale entry with no constant behind it, (c) the
dynamic-prefix constants (values ending in '.') diverge from
x-dynamic-prefixes, or (d) the serve pinned-histogram list does not
exactly match the `serve.request.<op>.micros` plus `serve.batch.*`
constants — that list is *generated* from names.rs, never hand-edited.
"""

import json
import re
import sys


def fail(msg):
    print(f"metrics schema violation: {msg}", file=sys.stderr)
    sys.exit(1)


def check_names(section, entries, pattern):
    pat = re.compile(pattern)
    for name in entries:
        if not pat.match(name):
            fail(f"{section} name {name!r} does not match {pattern!r}")


def check_int(section, name, field, value):
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        fail(f"{section}[{name!r}].{field} = {value!r} is not a non-negative integer")


def parse_names_rs(path):
    """All `pub const X: &str = "...";` values in names.rs, split into
    (plain metric names, dynamic-family prefixes ending in '.')."""
    text = open(path).read()
    values = re.findall(r'pub const \w+: &str = "([^"]+)";', text)
    if not values:
        fail(f"{path}: found no `pub const NAME: &str` metric constants")
    names = [v for v in values if not v.endswith(".")]
    prefixes = [v for v in values if v.endswith(".")]
    return names, prefixes


def check_drift(schema_path, names_path):
    schema = json.load(open(schema_path))
    names, prefixes = parse_names_rs(names_path)
    listed = schema["x-metric-names"]["names"]
    listed_prefixes = schema["x-dynamic-prefixes"]["prefixes"]

    missing = sorted(set(names) - set(listed))
    if missing:
        fail(
            f"names.rs constants absent from x-metric-names: {missing} "
            f"(add them to {schema_path})"
        )
    stale = sorted(set(listed) - set(names))
    if stale:
        fail(
            f"x-metric-names entries with no constant in names.rs: {stale} "
            f"(remove them from {schema_path})"
        )
    if set(prefixes) != set(listed_prefixes):
        fail(
            f"dynamic prefixes diverge: names.rs has {sorted(prefixes)}, "
            f"schema has {sorted(listed_prefixes)}"
        )

    # The serve pinned-histogram list is generated from names.rs: the
    # `serve.request.<op>.micros` constants plus the batching histograms
    # (`serve.batch.*`), exactly.
    generated = sorted(
        n
        for n in names
        if (n.startswith("serve.request.") and n.endswith(".micros"))
        or n.startswith("serve.batch.")
    )
    pinned = sorted(schema["x-required-keys"]["serve"].get("histograms", []))
    if generated != pinned:
        fail(
            f"serve pinned histograms diverge from names.rs: "
            f"generated {generated}, schema pins {pinned}"
        )

    # Internal consistency: anything pinned for a command must be a known
    # name (or belong to a dynamic family).
    known = set(listed)
    for command, pins in schema["x-required-keys"].items():
        if not isinstance(pins, dict):
            continue
        for section, keys in pins.items():
            if not isinstance(keys, list):
                continue
            for key in keys:
                if key in known:
                    continue
                if any(key.startswith(p) for p in listed_prefixes):
                    continue
                if section == "spans":
                    # Span paths are hierarchical (`train.ingest`); their
                    # roots live in names.rs but nested paths need not.
                    continue
                fail(f"x-required-keys[{command!r}] pins unknown {section} {key!r}")

    print(
        f"{schema_path}: x-metric-names in sync with {names_path} "
        f"({len(names)} names, {len(prefixes)} dynamic prefixes, "
        f"{len(generated)} generated serve histograms)"
    )


def check_document(schema_path, doc_path, command):
    schema = json.load(open(schema_path))
    doc = json.load(open(doc_path))

    if not isinstance(doc, dict):
        fail("root is not an object")
    expected_tag = schema["properties"]["schema"]["const"]
    if doc.get("schema") != expected_tag:
        fail(f"schema tag {doc.get('schema')!r} != {expected_tag!r}")
    sections = ("counters", "gauges", "histograms", "spans")
    extra = set(doc) - set(sections) - {"schema"}
    if extra:
        fail(f"unexpected top-level keys {sorted(extra)}")
    for section in sections:
        if not isinstance(doc.get(section), dict):
            fail(f"missing {section!r} object")
        pattern = schema["properties"][section]["propertyNames"]["pattern"]
        check_names(section, doc[section], pattern)

    for section in ("counters", "gauges"):
        for name, value in doc[section].items():
            check_int(section, name, "value", value)
    for section, fields in (
        ("histograms", schema["definitions"]["hist"]["required"]),
        ("spans", schema["definitions"]["span"]["required"]),
    ):
        for name, entry in doc[section].items():
            if not isinstance(entry, dict) or set(entry) != set(fields):
                fail(f"{section}[{name!r}] must have exactly fields {fields}")
            for field in fields:
                check_int(section, name, field, entry[field])
    for name, entry in doc["histograms"].items():
        if not entry["min"] <= entry["p50"] <= entry["p90"] <= entry["p99"]:
            fail(f"histograms[{name!r}] quantiles are not monotone: {entry}")
        if entry["count"] and not entry["p99"] <= entry["max"]:
            fail(f"histograms[{name!r}] p99 exceeds max: {entry}")

    if command:
        pinned = schema["x-required-keys"].get(command)
        if pinned is None:
            fail(f"unknown command {command!r} in x-required-keys")
        for section in sections:
            missing = [k for k in pinned.get(section, []) if k not in doc[section]]
            if missing:
                fail(f"{command} output lacks pinned {section}: {missing}")

    print(f"{doc_path}: valid {expected_tag} document"
          + (f" with all pinned {command} keys" if command else ""))


def main():
    args = sys.argv[1:]
    if args and args[0] == "--drift":
        if len(args) != 3:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        check_drift(args[1], args[2])
        return
    if len(args) not in (2, 3):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_document(args[0], args[1], args[2] if len(args) == 3 else None)


if __name__ == "__main__":
    main()
