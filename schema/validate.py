#!/usr/bin/env python3
"""Validate a `pgr ... --metrics json` document against the checked-in
schema, stdlib-only (CI runners have no jsonschema package).

    python3 schema/validate.py schema/metrics.schema.json out.json [command]

Checks the generic pgr-metrics/1 shape (sections, name patterns, integer
fields) and, when `command` (train | compress | run | serve) is given, that every
metric name the schema pins for that command is present — so renaming or
dropping a documented metric fails CI instead of drifting silently.
"""

import json
import re
import sys


def fail(msg):
    print(f"metrics schema violation: {msg}", file=sys.stderr)
    sys.exit(1)


def check_names(section, entries, pattern):
    pat = re.compile(pattern)
    for name in entries:
        if not pat.match(name):
            fail(f"{section} name {name!r} does not match {pattern!r}")


def check_int(section, name, field, value):
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        fail(f"{section}[{name!r}].{field} = {value!r} is not a non-negative integer")


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    schema = json.load(open(sys.argv[1]))
    doc = json.load(open(sys.argv[2]))
    command = sys.argv[3] if len(sys.argv) == 4 else None

    if not isinstance(doc, dict):
        fail("root is not an object")
    expected_tag = schema["properties"]["schema"]["const"]
    if doc.get("schema") != expected_tag:
        fail(f"schema tag {doc.get('schema')!r} != {expected_tag!r}")
    sections = ("counters", "gauges", "histograms", "spans")
    extra = set(doc) - set(sections) - {"schema"}
    if extra:
        fail(f"unexpected top-level keys {sorted(extra)}")
    for section in sections:
        if not isinstance(doc.get(section), dict):
            fail(f"missing {section!r} object")
        pattern = schema["properties"][section]["propertyNames"]["pattern"]
        check_names(section, doc[section], pattern)

    for section in ("counters", "gauges"):
        for name, value in doc[section].items():
            check_int(section, name, "value", value)
    for section, fields in (
        ("histograms", schema["definitions"]["hist"]["required"]),
        ("spans", schema["definitions"]["span"]["required"]),
    ):
        for name, entry in doc[section].items():
            if not isinstance(entry, dict) or set(entry) != set(fields):
                fail(f"{section}[{name!r}] must have exactly fields {fields}")
            for field in fields:
                check_int(section, name, field, entry[field])

    if command:
        pinned = schema["x-required-keys"].get(command)
        if pinned is None:
            fail(f"unknown command {command!r} in x-required-keys")
        for section in sections:
            missing = [k for k in pinned.get(section, []) if k not in doc[section]]
            if missing:
                fail(f"{command} output lacks pinned {section}: {missing}")

    print(f"{sys.argv[2]}: valid {expected_tag} document"
          + (f" with all pinned {command} keys" if command else ""))


if __name__ == "__main__":
    main()
