//! Cross-training (the point of Table 1's two grammar columns):
//! "Predictably, lcc and gcc each compress somewhat better with their own
//! grammar, but the other inputs compress about as well with either
//! grammar."
//!
//! ```text
//! cargo run --release --example cross_training
//! ```
//!
//! Trains one grammar per corpus, then compresses every corpus under
//! every grammar — a full matrix rather than the paper's two columns.

use pgr::core::{train, TrainConfig, Trained};
use pgr::corpus::{corpus, Corpus, CorpusName};

fn compress_under(trained: &Trained, c: &Corpus) -> (usize, usize) {
    // One engine per (grammar, corpus) pass: the Earley tables are built
    // once and recurring segments hit the derivation cache.
    let engine = trained.compressor();
    let mut original = 0;
    let mut compressed = 0;
    for p in &c.programs {
        let (_, stats) = engine.compress(p).expect("corpora are in the language");
        original += stats.original_code;
        compressed += stats.compressed_code;
    }
    (original, compressed)
}

fn main() {
    let corpora: Vec<Corpus> = CorpusName::ALL.iter().map(|&n| corpus(n)).collect();
    let grammars: Vec<(&str, Trained)> = corpora
        .iter()
        .map(|c| {
            (
                c.name.label(),
                train(&c.refs(), &TrainConfig::default()).expect("trains"),
            )
        })
        .collect();

    print!("{:>18}", "input \\ grammar");
    for (name, _) in &grammars {
        print!("{name:>12}");
    }
    println!();

    for c in &corpora {
        print!("{:>10} ({:>6}B)", c.name.label(), c.code_size());
        let mut best: Option<(usize, f64)> = None;
        for (gi, (_, trained)) in grammars.iter().enumerate() {
            let (original, compressed) = compress_under(trained, c);
            let ratio = 100.0 * compressed as f64 / original as f64;
            if best.is_none_or(|(_, b)| ratio < b) {
                best = Some((gi, ratio));
            }
            print!("{ratio:>11.1}%");
        }
        let (best_gi, _) = best.expect("at least one grammar");
        println!("   <- best: {}", grammars[best_gi].0);
    }

    println!(
        "\nEach big corpus should prefer its own grammar (the diagonal), while the\n\
         small inputs (gzip, 8q) compress comparably under either big grammar —\n\
         exactly Table 1's observation."
    );
}
