//! The paper's motivating scenario (§1): a fixed-size ROM in an embedded
//! device, where "saving ROM or packing more features into a fixed-size
//! ROM can give a competitive advantage", decompress-to-RAM is not an
//! option, and code must be interpreted directly from ROM.
//!
//! ```text
//! cargo run --release --example embedded_rom
//! ```
//!
//! We build a pile of "feature modules" (mini-C programs), train one
//! grammar on half of them, and count how many modules fit into a 64 KiB
//! ROM — uncompressed with the small interpreter, versus compressed with
//! the bigger generated interpreter. The compressed interpreter costs
//! ~11 KiB more up front (mostly its grammar tables) and wins it back
//! within a few modules.

use pgr::bytecode::image::ImageStats;
use pgr::core::{train, TrainConfig};
use pgr::corpus::synth::{generate, Flavor, SynthConfig};
use pgr::vm::cgen::interpreter_sizes;

const ROM_BYTES: usize = 64 * 1024;

fn main() {
    // Thirty candidate feature modules drawn from one population.
    let modules: Vec<_> = (0..30)
        .map(|i| {
            generate(&SynthConfig {
                seed: 1_000 + i,
                functions: 12,
                flavor: Flavor::Compiler,
            })
        })
        .collect();

    // Train on the first half (the shipped firmware's profile).
    let training: Vec<_> = modules.iter().take(15).collect();
    let trained = train(&training, &TrainConfig::default()).expect("trains");
    let sizes = interpreter_sizes(trained.expanded());

    println!("ROM budget: {} bytes", ROM_BYTES);
    println!(
        "interpreters: initial {} bytes, compressed-bytecode {} bytes (grammar {} bytes)\n",
        sizes.initial, sizes.compressed, sizes.grammar
    );

    let mut plain_used = sizes.initial;
    let mut packed_used = sizes.compressed;
    let mut plain_fit = 0usize;
    let mut packed_fit = 0usize;
    let mut crossover = None;

    for (i, module) in modules.iter().enumerate() {
        let image = ImageStats::of(module).total();
        if plain_used + image <= ROM_BYTES {
            plain_used += image;
            plain_fit += 1;
        }
        let (compressed, _) = trained.compress(module).expect("in-language");
        let cimage = ImageStats::of(&compressed.program).total();
        if packed_used + cimage <= ROM_BYTES {
            packed_used += cimage;
            packed_fit += 1;
        }
        if crossover.is_none() && packed_used < plain_used {
            crossover = Some(i + 1);
        }
        println!(
            "module {:>2}: image {:>6} B uncompressed / {:>6} B compressed   rom: {:>6} vs {:>6}",
            i + 1,
            image,
            cimage,
            plain_used,
            packed_used
        );
    }

    println!("\nuncompressed firmware fits {plain_fit} modules; compressed fits {packed_fit}");
    match crossover {
        Some(n) => println!(
            "the bigger interpreter pays for itself after {n} modules \
             (the paper's 11 KB interpreter saved 900 KB on gcc)"
        ),
        None => println!("the compressed interpreter never paid for itself (corpus too small)"),
    }
    assert!(
        packed_fit > plain_fit,
        "compression should win at this scale"
    );
}
