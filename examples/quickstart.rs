//! Quickstart: the whole pipeline on one small C program.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Compiles a C program to the stack bytecode (§3), trains an expanded
//! grammar on it (§4.1), compresses it into derivation bytes, and runs
//! both representations — uncompressed under `interp1`, compressed under
//! the generated `interp_nt` (§5) — checking they behave identically.

use pgr::core::{train, TrainConfig};
use pgr::minic;
use pgr::vm::{Vm, VmConfig};

const SOURCE: &str = r#"
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}

int main(void) {
    int i;
    for (i = 1; i <= 10; i++) {
        putint(fib(i));
        putchar(i < 10 ? ' ' : '\n');
    }
    return 0;
}
"#;

fn main() {
    // 1. C -> initial bytecode.
    let program = minic::compile(SOURCE).expect("compiles");
    println!(
        "bytecode: {} bytes in {} procedures",
        program.code_size(),
        program.procs.len()
    );

    // 2. Train the expanded grammar on a sample (here: the program itself).
    let trained = train(&[&program], &TrainConfig::default()).expect("trains");
    println!(
        "training: +{} inlined rules (-{} subsumed), grammar {} bytes",
        trained.stats.rules_added,
        trained.stats.rules_removed,
        trained.grammar_size()
    );

    // 3. Compress: shortest derivations, one byte per rule.
    let (compressed, stats) = trained.compress(&program).expect("compresses");
    println!(
        "compressed: {} -> {} bytes ({:.0}%)",
        stats.original_code,
        stats.compressed_code,
        100.0 * stats.ratio()
    );

    // 4. Run both representations.
    let mut vm = Vm::new(&program, VmConfig::default()).expect("loads");
    let plain = vm.run().expect("runs");

    let ig = trained.initial();
    let mut cvm = Vm::new_compressed(
        &compressed.program,
        trained.expanded(),
        ig.nt_start,
        ig.nt_byte,
        VmConfig::default(),
    )
    .expect("loads");
    let direct = cvm.run().expect("runs");

    assert_eq!(plain.output, direct.output, "identical behaviour");
    println!(
        "output (both interpreters): {}",
        String::from_utf8_lossy(&plain.output)
    );
    println!(
        "steps: interp1 {} vs interp_nt {} (the compressed interpreter walks rules too)",
        plain.steps, direct.steps
    );
}
