//! Look inside an expanded grammar: which rules training invented, how
//! literals get burnt into rules (§5's `<start> ::= JUMPV 0 <byte>`
//! example), and what the generated interpreter looks like.
//!
//! ```text
//! cargo run --release --example grammar_explorer
//! ```

use pgr::bytecode::asm::disassemble_proc;
use pgr::core::{train, TrainConfig};
use pgr::corpus::{corpus, CorpusName};
use pgr::grammar::{RuleOrigin, Symbol};
use pgr::vm::cgen;

fn main() {
    let c = corpus(CorpusName::Gzip);
    let trained = train(&c.refs(), &TrainConfig::default()).expect("trains");
    let g = trained.expanded();
    let ig = trained.initial();

    println!(
        "expanded grammar: {} live rules (+{} trained, -{} subsumed), {} bytes encoded\n",
        g.live_rule_count(),
        trained.stats.rules_added,
        trained.stats.rules_removed,
        trained.grammar_size()
    );

    // The longest inlined rules per non-terminal: whole idioms fused into
    // single bytecodes, possibly spanning several statements ("a single
    // bytecode in our system may represent the code from several
    // expression trees", §7).
    println!("-- ten longest inlined rules --");
    let mut inlined: Vec<_> = (0..g.rule_slots() as u32)
        .map(pgr::grammar::RuleId)
        .filter(|&id| g.rule(id).alive && matches!(g.rule(id).origin, RuleOrigin::Inlined { .. }))
        .collect();
    inlined.sort_by_key(|&id| std::cmp::Reverse(g.rule(id).rhs.len()));
    for &id in inlined.iter().take(10) {
        println!("  {}", g.display_rule(id));
    }

    // Partially inlined literals: rules mixing burnt-in bytes with open
    // <byte> slots, the §5 GET-split case.
    println!("\n-- rules with partially inlined literals --");
    let mut shown = 0;
    for &id in &inlined {
        let rule = g.rule(id);
        let burnt = rule
            .rhs
            .iter()
            .filter(|s| matches!(s, Symbol::T(pgr::grammar::Terminal::Byte(_))))
            .count();
        let open = rule
            .rhs
            .iter()
            .filter(|s| matches!(s, Symbol::N(n) if *n == ig.nt_byte))
            .count();
        if burnt > 0 && open > 0 && shown < 5 {
            println!("  {}  ({burnt} burnt, {open} open)", g.display_rule(id));
            shown += 1;
        }
    }

    // One tiny program, before and after.
    let program = pgr::minic::compile(
        "int main(void) { int i; for (i = 0; i < 5; i++) putint(i); return 0; }",
    )
    .expect("compiles");
    let (compressed, stats) = trained.compress(&program).expect("in-language");
    println!("\n-- sample procedure, uncompressed --");
    print!("{}", disassemble_proc(&program.procs[0]));
    println!(
        "-- compressed to {} bytes (from {}) --",
        stats.compressed_code, stats.original_code
    );
    let bytes: Vec<String> = compressed.program.procs[0]
        .code
        .iter()
        .map(|b| b.to_string())
        .collect();
    println!("derivation bytes: {}", bytes.join(" "));

    // The generated artifacts (§2's interpreter generator).
    let sizes = cgen::interpreter_sizes(g);
    println!(
        "\n-- generated interpreter --\ninitial {} B, compressed {} B, grammar tables {} B",
        sizes.initial, sizes.compressed, sizes.grammar
    );
    let nt_src = cgen::interp_nt_source();
    println!("\nfirst lines of the generated interpNT driver:");
    for line in nt_src.lines().take(12) {
        println!("  {line}");
    }
    let tables = cgen::rule_tables_source(g);
    println!(
        "\nrule tables: {} lines of generated C ({} bytes of source)",
        tables.lines().count(),
        tables.len()
    );
}
