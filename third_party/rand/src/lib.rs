//! A tiny, dependency-free stand-in for the subset of the `rand` 0.8 API
//! used by this workspace (`StdRng`/`SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`, `Rng::gen_bool`).
//!
//! The build environment for this repository has no network access, so the
//! real crates.io `rand` cannot be fetched; everything in the workspace that
//! needs randomness needs only *deterministic, seedable* pseudo-randomness
//! (reproducible corpora, property-test inputs), not cryptographic or
//! statistical-grade streams. The generator here is SplitMix64 feeding a
//! xorshift mix — deterministic for a given seed on every platform, which is
//! all the determinism tests require.
//!
//! The streams do NOT match the real `rand` crate's; they only have to be
//! stable across runs and platforms.

#![warn(missing_docs)]

/// Core RNG interface: a source of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Deterministic: equal seeds
    /// give equal streams.
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator from OS entropy. The stub derives the seed from
    /// the system clock (only as good as the caller needs; the workspace
    /// always seeds explicitly).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)`. `high` must be greater than
    /// `low`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Modulo bias is acceptable for this stub's consumers
                // (corpus synthesis, test-input generation).
                let off = rng.next_u64() % span;
                ((low as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// A range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl SampleRange<u8> for std::ops::RangeInclusive<u8> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u8 {
        let (lo, hi) = (*self.start(), *self.end());
        (u64::from(lo) + rng.next_u64() % (u64::from(hi) - u64::from(lo) + 1)) as u8
    }
}

impl SampleRange<usize> for std::ops::RangeInclusive<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        (lo as u64 + rng.next_u64() % (hi as u64 - lo as u64 + 1)) as usize
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range, e.g. `rng.gen_range(0..10)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 random bits -> uniform in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: a seeded SplitMix64 stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Scramble the raw seed so nearby seeds give unrelated streams.
            let mut s = seed ^ 0x5851_f42d_4c95_7f2d;
            let _ = splitmix64(&mut s);
            StdRng { state: s }
        }
    }

    /// Stand-in for `rand::rngs::SmallRng`; identical engine to [`StdRng`]
    /// here (the stub has no speed/size trade-off to make).
    #[derive(Debug, Clone)]
    pub struct SmallRng(StdRng);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng(StdRng::seed_from_u64(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..8);
            assert!((3..8).contains(&v));
            let w: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits));
    }
}
