//! Sampling helpers (`prop::sample::Index`).

/// A position into a collection whose length is unknown at generation
/// time: `idx.index(len)` maps the raw draw uniformly into `0..len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Build from raw random bits.
    pub fn from_raw(raw: u64) -> Index {
        Index { raw }
    }

    /// The index this draw denotes within a collection of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.raw % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_maps_into_bounds() {
        for raw in [0u64, 1, 41, u64::MAX] {
            let idx = Index::from_raw(raw);
            for len in [1usize, 2, 7, 1000] {
                assert!(idx.index(len) < len);
            }
        }
    }
}
