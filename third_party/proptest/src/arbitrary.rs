//! `any::<T>()`: canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized {
    /// Generate one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, e.g. `any::<u8>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> (A, B) {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}
