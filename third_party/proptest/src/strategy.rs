//! Value-generation strategies: the stub's version of
//! `proptest::strategy`.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (re-drawing up to a bounded
    /// number of times).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// The result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?}: gave up after 1000 rejections",
            self.whence
        )
    }
}

/// Weighted union of same-typed strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof: all weights are zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights covered the draw")
    }
}

/// Integer ranges are strategies over their element type.
macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::deterministic("compose");
        let s = (1usize..6).prop_map(|n| n * 2);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!(v % 2 == 0 && (2..12).contains(&v));
        }
    }

    #[test]
    fn unions_respect_weights_roughly() {
        let mut rng = TestRng::deterministic("weights");
        let s = crate::prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| s.new_value(&mut rng)).count();
        assert!(trues > 700, "{trues}");
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::deterministic("tuples");
        let s = (any::<u8>(), 0usize..4, Just("x"));
        let (a, b, c) = s.new_value(&mut rng);
        let _: u8 = a;
        assert!(b < 4);
        assert_eq!(c, "x");
    }
}
