//! The minimal test-running machinery behind the `proptest!` macro.

use std::fmt;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    ///
    /// Unlike the real crate, a `PROPTEST_CASES` environment variable
    /// overrides even an explicit count: this workspace's CI fuzz-smoke
    /// job scales the suites up without patching every
    /// `proptest_config` attribute.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig::with_cases(256)
    }
}

/// The `PROPTEST_CASES` override, when set and parseable.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Why a single generated case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// The case asked to be skipped (unused by this workspace, kept for
    /// API shape).
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// A rejected (skipped) case.
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Shorthand used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic generator driving value production.
///
/// Seeded from the test's name, so every test has its own reproducible
/// stream and a code change in one test cannot perturb another.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("foo");
        let mut b = TestRng::deterministic("foo");
        let mut c = TestRng::deterministic("bar");
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
