//! A small, dependency-free stand-in for the subset of the `proptest` API
//! used by this workspace.
//!
//! The build environment has no network access, so the real crates.io
//! `proptest` cannot be fetched. This stub keeps the same *shape* —
//! `proptest!`, `prop_assert*!`, `prop_oneof!`, `Strategy`/`BoxedStrategy`,
//! `any::<T>()`, `prop::collection::vec`, `prop::sample::Index`,
//! `ProptestConfig` — so the repository's property tests compile and run
//! unchanged.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the case number; rerun
//!   with the same build to reproduce (generation is deterministic, seeded
//!   per test name).
//! * **No persisted regression files.** `*.proptest-regressions` files are
//!   ignored.
//! * Value distributions are simpler (uniform, modulo-bias tolerated).

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop`, the module-tree shorthand
    /// (`prop::collection::vec`, `prop::sample::Index`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Runs `proptest!`-style test bodies: see [`test_runner::ProptestConfig`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $(
                        let $pat = $crate::strategy::Strategy::new_value(
                            &($strat),
                            &mut rng,
                        );
                    )+
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    ::core::panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// `assert!` that reports a test-case failure instead of panicking, so the
/// harness can attach the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Weighted choice between strategies producing the same value type.
///
/// `prop_oneof![a, b]` picks uniformly; `prop_oneof![3 => a, 1 => b]`
/// picks `a` three times as often.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}
