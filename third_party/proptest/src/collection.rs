//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_respect_the_range() {
        let mut rng = TestRng::deterministic("vec-len");
        let s = vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn nested_vecs_work() {
        let mut rng = TestRng::deterministic("vec-nest");
        let s = vec(vec(any::<u8>(), 1..3), 0..4);
        let v = s.new_value(&mut rng);
        assert!(v.len() < 4);
        for inner in v {
            assert!((1..3).contains(&inner.len()));
        }
    }
}
