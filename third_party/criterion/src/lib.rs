//! A small, dependency-free stand-in for the subset of the `criterion`
//! benchmarking API used by this workspace.
//!
//! The build environment has no network access, so the real crates.io
//! `criterion` cannot be fetched. This stub keeps the same call surface —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `Bencher::iter`/`iter_batched`,
//! `Throughput`, `BenchmarkId`, `BatchSize` — and performs a plain
//! wall-clock measurement: a short warm-up, then `sample_size` timed
//! samples, reporting min/median/mean (and throughput when configured) to
//! stdout. No statistics engine, no HTML reports, no comparison against
//! saved baselines.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Per-iteration input regime for [`Bencher::iter_batched`]. The stub
/// treats every variant the same (setup re-runs for each measured batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch in the real crate.
    SmallInput,
    /// Large inputs: one iteration per batch in the real crate.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units for reporting how much work one iteration performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group name supplies the rest).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Conversion of names/ids into a printable benchmark label.
pub trait IntoBenchmarkId {
    /// The label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            durations: Vec::with_capacity(samples),
        }
    }

    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }
}

fn human(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn report(label: &str, throughput: Option<Throughput>, mut durations: Vec<Duration>) {
    if durations.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    durations.sort_unstable();
    let min = durations[0];
    let median = durations[durations.len() / 2];
    let mean = durations.iter().sum::<Duration>() / durations.len() as u32;
    let mut line = format!(
        "{label:<40} min {:>12}  median {:>12}  mean {:>12}",
        human(min),
        human(median),
        human(mean)
    );
    if let Some(tp) = throughput {
        let (amount, unit) = match tp {
            Throughput::Bytes(n) => (n as f64, "B"),
            Throughput::Elements(n) => (n as f64, "elem"),
        };
        let secs = median.as_secs_f64();
        if secs > 0.0 {
            let rate = amount / secs;
            let pretty = if rate >= 1e9 {
                format!("{:.2} G{unit}/s", rate / 1e9)
            } else if rate >= 1e6 {
                format!("{:.2} M{unit}/s", rate / 1e6)
            } else if rate >= 1e3 {
                format!("{:.2} K{unit}/s", rate / 1e3)
            } else {
                format!("{rate:.2} {unit}/s")
            };
            line.push_str(&format!("  [{pretty}]"));
        }
    }
    println!("{line}");
}

/// A set of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Units of work per iteration, for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Target measurement time: accepted and ignored (the stub's cost is
    /// bounded by `sample_size`).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&label, self.throughput, bencher.durations);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        report(&label, self.throughput, bencher.durations);
        self
    }

    /// End the group (re-exported for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepts and ignores command-line configuration (API parity).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(id, None, bencher.durations);
        self
    }
}

/// Collect benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Opaque value barrier (re-export of the std implementation).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3).throughput(Throughput::Bytes(1024));
        let mut calls = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert!(calls >= 3, "warm-up + samples, got {calls}");
    }

    #[test]
    fn iter_batched_reruns_setup() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(4);
        let mut setups = 0usize;
        group.bench_with_input(BenchmarkId::new("batched", 1), &1, |b, _| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| (),
                BatchSize::SmallInput,
            )
        });
        assert!(setups >= 4);
    }
}
