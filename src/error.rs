//! The unified error type for the whole pipeline.
//!
//! Each subsystem has a precise error enum (`TrainError`, `CompressError`,
//! `DecompressError`, `ValidateError`); [`PgrError`] wraps them so
//! embedders and the CLI can hold one type end-to-end, and so `?` works
//! across phase boundaries. Every variant preserves its inner error via
//! [`std::error::Error::source`], giving a full cause chain down to the
//! leaf (`DecodeError`, `TokenizeError`, `NoParse`, …).

use pgr_bytecode::ValidateError;
use pgr_core::{CompressError, DecompressError, TrainError};
use pgr_grammar::GrammarFileError;
use pgr_registry::{RegistryError, ServeError};
use std::error::Error;
use std::fmt;

/// Any failure in the train → compress → decompress pipeline, in the
/// validation that guards it, or in the grammar storage and serving
/// layers around it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PgrError {
    /// Grammar training failed.
    Train(TrainError),
    /// Compression failed.
    Compress(CompressError),
    /// Decompression failed.
    Decompress(DecompressError),
    /// A program failed static validation.
    Validate(ValidateError),
    /// A `.pgrg` grammar file failed to decode.
    GrammarFile(GrammarFileError),
    /// The grammar registry refused an operation.
    Registry(RegistryError),
    /// The request server failed to start.
    Serve(ServeError),
}

impl fmt::Display for PgrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgrError::Train(e) => write!(f, "training failed: {e}"),
            PgrError::Compress(e) => write!(f, "compression failed: {e}"),
            PgrError::Decompress(e) => write!(f, "decompression failed: {e}"),
            PgrError::Validate(e) => write!(f, "validation failed: {e}"),
            PgrError::GrammarFile(_) => write!(f, "grammar file rejected"),
            PgrError::Registry(_) => write!(f, "registry operation failed"),
            PgrError::Serve(_) => write!(f, "serve failed"),
        }
    }
}

impl Error for PgrError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PgrError::Train(e) => Some(e),
            PgrError::Compress(e) => Some(e),
            PgrError::Decompress(e) => Some(e),
            PgrError::Validate(e) => Some(e),
            PgrError::GrammarFile(e) => Some(e),
            PgrError::Registry(e) => Some(e),
            PgrError::Serve(e) => Some(e),
        }
    }
}

impl From<TrainError> for PgrError {
    fn from(e: TrainError) -> PgrError {
        PgrError::Train(e)
    }
}

impl From<CompressError> for PgrError {
    fn from(e: CompressError) -> PgrError {
        PgrError::Compress(e)
    }
}

impl From<DecompressError> for PgrError {
    fn from(e: DecompressError) -> PgrError {
        PgrError::Decompress(e)
    }
}

impl From<ValidateError> for PgrError {
    fn from(e: ValidateError) -> PgrError {
        PgrError::Validate(e)
    }
}

impl From<GrammarFileError> for PgrError {
    fn from(e: GrammarFileError) -> PgrError {
        PgrError::GrammarFile(e)
    }
}

impl From<RegistryError> for PgrError {
    fn from(e: RegistryError) -> PgrError {
        PgrError::Registry(e)
    }
}

impl From<ServeError> for PgrError {
    fn from(e: ServeError) -> PgrError {
        PgrError::Serve(e)
    }
}

impl PgrError {
    /// Render the error with its full cause chain, one `caused by:` line
    /// per source, for terminal diagnostics:
    ///
    /// ```text
    /// compression failed: f: segment at 3: no parse at token 2
    ///   caused by: no parse at token 2
    /// ```
    pub fn report(&self) -> String {
        error_chain(self)
    }
}

/// Render any error and its [`source`](Error::source) chain, one
/// indented `caused by:` line per level.
pub fn error_chain(err: &dyn Error) -> String {
    let mut out = err.to_string();
    let mut cause = err.source();
    while let Some(e) = cause {
        out.push_str(&format!("\n  caused by: {e}"));
        cause = e.source();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgr_bytecode::{Opcode, Procedure, Program};
    use pgr_core::{train, TrainConfig};
    use pgr_grammar::InitialGrammar;

    fn undecodable_program() -> Program {
        let mut prog = Program::new();
        let mut proc = Procedure::new("f");
        proc.code = vec![0xff];
        prog.procs.push(proc);
        prog
    }

    #[test]
    fn train_errors_chain_to_the_leaf() {
        let prog = undecodable_program();
        let err: PgrError = train(&[&prog], &TrainConfig::default()).unwrap_err().into();
        assert!(matches!(err, PgrError::Train(_)));
        // PgrError -> TrainError -> ValidateError -> DecodeError
        let validate = err.source().unwrap().source().unwrap();
        let decode = validate.source().unwrap();
        assert!(decode.to_string().contains("invalid opcode"));
        assert!(decode.source().is_none());
    }

    #[test]
    fn compress_errors_chain_to_the_parser_report() {
        let ig = InitialGrammar::build();
        let mut prog = Program::new();
        let mut proc = Procedure::new("f");
        proc.code = vec![Opcode::ADDU as u8];
        prog.procs.push(proc);
        let err: PgrError = pgr_core::Compressor::with_config(
            &ig.grammar,
            ig.nt_start,
            pgr_core::CompressorConfig::default().fallback(false),
        )
        .compress(&prog)
        .unwrap_err()
        .into();
        let report = err.report();
        assert!(report.starts_with("compression failed"), "{report}");
        assert!(report.contains("caused by:"), "{report}");
    }

    #[test]
    fn validate_errors_wrap_directly() {
        let err: PgrError = pgr_bytecode::validate_program(&undecodable_program())
            .unwrap_err()
            .into();
        assert!(matches!(err, PgrError::Validate(_)));
        assert!(err.source().unwrap().source().is_some());
    }

    #[test]
    fn chain_renders_every_level() {
        let prog = undecodable_program();
        let err: PgrError = train(&[&prog], &TrainConfig::default()).unwrap_err().into();
        let report = err.report();
        // PgrError -> TrainError -> ValidateError -> DecodeError.
        assert_eq!(report.matches("caused by:").count(), 3, "{report}");
    }
}
