//! # pgr — Bytecode Compression via Profiled Grammar Rewriting
//!
//! A full reproduction of **W. S. Evans and C. W. Fraser, "Bytecode
//! Compression via Profiled Grammar Rewriting", PLDI 2001**: a system
//! that designs compact bytecoded instruction sets by rewriting a grammar
//! for a stack bytecode against a training corpus, producing compressed
//! programs that are *interpreted directly*, with no decompression step.
//!
//! The facade re-exports every subsystem:
//!
//! | crate | role |
//! |-------|------|
//! | [`bytecode`] | the lcc-style stack bytecode (§3, Appendices 1–3) |
//! | [`grammar`] | grammar machinery, the initial grammar, parse forests |
//! | [`earley`] | shortest-derivation Earley parser (§4.1) |
//! | [`core`] | the expander + compressor/decompressor (the contribution) |
//! | [`vm`] | both interpreters and the interpreter generator (§5) |
//! | [`minic`] | a C-subset compiler emitting the bytecode (lcc stand-in) |
//! | [`corpus`] | §6's gcc/lcc/gzip/8q corpora, real + synthetic |
//! | [`baselines`] | Huffman, LZSS+Huffman (gzip), Tunstall, superoperators |
//! | [`native`] | synthetic x86 code-size model (Table 2) |
//! | [`registry`] | content-addressed grammar store + the request server |
//! | [`client`] | retrying NDJSON client for the request server |
//!
//! ## End to end
//!
//! ```
//! use pgr::prelude::*;
//!
//! // 1. Compile C to the initial bytecode.
//! let program = pgr::minic::compile(
//!     "int main(void) { int i; for (i = 0; i < 3; i++) putchar('a' + i); return 0; }",
//! ).unwrap();
//!
//! // 2. Train an expanded grammar (here: on the program itself).
//! let trained = pgr::core::train(&[&program], &TrainConfig::default()).unwrap();
//!
//! // 3. Compress: the derivation bytes ARE the new program.
//! let (compressed, stats) = trained.compress(&program).unwrap();
//! assert!(stats.compressed_code < stats.original_code);
//!
//! // 4. Run both representations; behaviour is identical.
//! let out1 = Vm::new(&program, VmConfig::default()).unwrap().run().unwrap();
//! let ig = trained.initial();
//! let out2 = Vm::new_compressed(
//!     &compressed.program, trained.expanded(), ig.nt_start, ig.nt_byte,
//!     VmConfig::default(),
//! ).unwrap().run().unwrap();
//! assert_eq!(out1.output, out2.output);
//! assert_eq!(out1.output, b"abc");
//! ```

#![warn(missing_docs)]

pub mod error;

pub use error::{error_chain, PgrError};

pub use pgr_baselines as baselines;
pub use pgr_bytecode as bytecode;
pub use pgr_client as client;
pub use pgr_core as core;
pub use pgr_corpus as corpus;
pub use pgr_earley as earley;
pub use pgr_grammar as grammar;
pub use pgr_minic as minic;
pub use pgr_native as native;
pub use pgr_registry as registry;
pub use pgr_telemetry as telemetry;
pub use pgr_vm as vm;

/// The most commonly used names, for quick starts.
pub mod prelude {
    pub use crate::error::PgrError;
    pub use pgr_bytecode::{Opcode, Program};
    pub use pgr_core::{train, Compressor, CompressorConfig, TrainConfig, Trained};
    pub use pgr_grammar::InitialGrammar;
    pub use pgr_telemetry::{Metrics, Recorder};
    pub use pgr_vm::{Vm, VmConfig};
}
