#!/usr/bin/env python3
"""Chaos smoke for `pgr serve` + `pgr chaos-proxy`, stdlib-only.

Chaos mode — churn faulted clients through a running chaos proxy while
healthy clients talk to the server directly:

    python3 ci/chaos_smoke.py chaos <proxy-socket> <server-socket> \
        <grammar-id> <image.pgrb> [--seconds S] [--conns N]

The proxy injects seeded partial writes, mid-frame resets, stalls, and
garbage; the server behind it must (a) never hang a client that uses
socket timeouts, (b) keep answering healthy direct connections with
byte-identical compress results throughout, and (c) have every
connection slot back by the end — verified by seating a burst of fresh
direct connections. Any assertion failure exits non-zero. On success
the server is shut down in-band so the caller's `wait` completes.

Fake-overloaded mode — a one-shot stand-in server for `pgr call`:

    python3 ci/chaos_smoke.py fake-overloaded <socket> [--retry-after-ms M]

Answers the first request line with an in-band
`{"ok":false,"error":"overloaded","retry_after_ms":M}` and every
subsequent line with `{"ok":true}`, then exits once an ok has been
served. It asserts the client's retry arrived no sooner than ~M ms
after the rejection — i.e. that the client honored the advertised
backoff floor — so the CI step only needs to check `pgr call`'s exit
status and verbose attempt counts.
"""

import base64
import json
import socket
import sys
import threading
import time


def fail(msg):
    print(f"chaos smoke failure: {msg}", file=sys.stderr)
    sys.exit(1)


def opt(args, name, default):
    if name in args:
        return int(args[args.index(name) + 1])
    return default


def call(path, line, timeout=10.0):
    """One request/response exchange on a fresh connection."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(timeout)
        s.connect(path)
        s.sendall(line.encode() + b"\n")
        reply = recv_line(s)
        if reply is None:
            fail(f"server closed instead of answering {line[:60]}...")
        return json.loads(reply)


def recv_line(sock):
    buf = b""
    while b"\n" not in buf:
        chunk = sock.recv(65536)
        if not chunk:
            return None
        buf += chunk
    return buf.split(b"\n", 1)[0]


def chaos(argv):
    proxy_path, direct_path, grammar_id, image_path = argv[:4]
    seconds = opt(argv, "--seconds", 20)
    conns = opt(argv, "--conns", 16)

    image64 = base64.b64encode(open(image_path, "rb").read()).decode()
    request = json.dumps({"op": "compress", "grammar": grammar_id, "image": image64})

    golden = call(direct_path, request)
    if not golden.get("ok") or "image" not in golden:
        fail(f"golden compress failed: {golden}")
    golden_image = golden["image"]

    deadline = time.monotonic() + seconds
    stats = {"sent": 0, "answered": 0, "dropped": 0}
    failures = []

    def churn():
        """One faulted client: loop connections through the proxy until
        the deadline, tolerating resets and in-band errors, never
        hanging (every socket call is under a timeout)."""
        while time.monotonic() < deadline:
            try:
                s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                s.settimeout(5.0)
                s.connect(proxy_path)
            except OSError:
                time.sleep(0.05)
                continue
            with s:
                for _ in range(4):
                    if time.monotonic() >= deadline:
                        break
                    try:
                        s.sendall(request.encode() + b"\n")
                        stats["sent"] += 1
                        if recv_line(s) is None:
                            stats["dropped"] += 1
                            break  # mid-frame reset: next connection
                        stats["answered"] += 1
                    except socket.timeout:
                        failures.append("a faulted request hung past 5s")
                        return
                    except OSError:
                        stats["dropped"] += 1
                        break

    def healthy():
        """One healthy client, direct to the server: every answer must
        be ok and byte-identical to the golden image."""
        while time.monotonic() < deadline:
            resp = call(direct_path, request)
            if not resp.get("ok"):
                failures.append(f"healthy request failed during chaos: {resp}")
                return
            if resp.get("image") != golden_image:
                failures.append("healthy response bytes diverged during chaos")
                return

    threads = [threading.Thread(target=churn) for _ in range(conns)]
    threads += [threading.Thread(target=healthy) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=seconds + 30)
        if t.is_alive():
            fail("a client thread is stuck — the server hung a request")
    if failures:
        fail(failures[0])
    if stats["answered"] == 0:
        fail(f"no faulted request ever completed: {stats}")

    # Slot reclamation: a burst of fresh direct connections all seated
    # and answered at once. A leaked slot per reset would make this
    # impossible after a long churn.
    burst = []
    try:
        for _ in range(8):
            s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            s.settimeout(10.0)
            s.connect(direct_path)
            s.sendall(b'{"op":"stats"}\n')
            burst.append(s)
        for s in burst:
            resp = json.loads(recv_line(s))
            if not resp.get("ok"):
                fail(f"slot not reclaimed after chaos: {resp}")
    finally:
        for s in burst:
            s.close()

    resp = call(direct_path, '{"op":"shutdown"}')
    if not resp.get("ok"):
        fail(f"shutdown refused: {resp}")
    print(json.dumps(stats))


def fake_overloaded(argv):
    path = argv[0]
    retry_after_ms = opt(argv, "--retry-after-ms", 80)
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    server.bind(path)
    server.listen(4)
    server.settimeout(30.0)

    rejected_at = None
    first = True
    while True:
        conn, _ = server.accept()
        with conn:
            conn.settimeout(30.0)
            while True:
                line = recv_line(conn)
                if line is None:
                    break  # client reconnects; keep accepting
                if first:
                    first = False
                    rejected_at = time.monotonic()
                    conn.sendall(
                        b'{"ok":false,"error":"overloaded","retry_after_ms":%d}\n'
                        % retry_after_ms
                    )
                    continue
                waited_ms = (time.monotonic() - rejected_at) * 1000.0
                # 0.9 ×: scheduler slop, not a weaker contract.
                if waited_ms < retry_after_ms * 0.9:
                    fail(
                        f"client retried after {waited_ms:.0f}ms, under the "
                        f"{retry_after_ms}ms retry_after_ms floor"
                    )
                conn.sendall(b'{"ok":true}\n')
                print(f"retry honored the floor: waited {waited_ms:.0f}ms")
                return


def main():
    if len(sys.argv) < 2:
        fail(__doc__.strip())
    mode, argv = sys.argv[1], sys.argv[2:]
    if mode == "chaos":
        chaos(argv)
    elif mode == "fake-overloaded":
        fake_overloaded(argv)
    else:
        fail(f"unknown mode {mode!r}")


if __name__ == "__main__":
    main()
