#!/usr/bin/env python3
"""Drive a running `pgr serve` instance end to end, stdlib-only (CI
runners have no extra packages).

    python3 ci/serve_smoke.py <socket> <grammar-id> <image.pgrb>

Speaks the newline-delimited JSON protocol from pgr-registry's `serve`
module and checks the contract the docs promise:

  * an unknown op fails in-band without dropping the connection,
  * compress -> decompress round-trips byte-identical on canonical
    images (the compressor canonicalizes, so the first round-trip maps
    the input to its canonical form and every later one is an identity),
  * the compressed image runs via its embedded grammar id alone
    (no "grammar" field in the request) with the same exit code and
    output as the uncompressed original,
  * a request declaring more than the server's --max-budget ceiling is
    admitted with a clamped budget rather than rejected,
  * stats reports a populated serve.request.<op>.micros histogram for
    every op exercised,
  * shutdown is acknowledged before the server exits.

The caller is expected to validate the server's emitted metrics file
against schema/metrics.schema.json afterwards.
"""

import base64
import json
import socket
import sys


def fail(msg):
    print(f"serve smoke failure: {msg}", file=sys.stderr)
    sys.exit(1)


class Client:
    def __init__(self, path):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(path)
        self.reader = self.sock.makefile("r", encoding="utf-8")

    def call(self, **request):
        self.sock.sendall((json.dumps(request) + "\n").encode())
        line = self.reader.readline()
        if not line:
            fail(f"connection closed during {request.get('op')!r}")
        return json.loads(line)


def main():
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path, grammar_id, image_path = sys.argv[1:]
    original = open(image_path, "rb").read()
    client = Client(path)

    bad = client.call(op="frobnicate")
    if bad.get("ok") is not False or "error" not in bad:
        fail(f"unknown op did not fail in-band: {bad}")

    def compress(image_b64, **extra):
        packed = client.call(op="compress", grammar=grammar_id, image=image_b64, **extra)
        if not packed.get("ok"):
            fail(f"compress: {packed.get('error')}")
        if packed.get("grammar") != grammar_id:
            fail(f"compress stamped {packed.get('grammar')!r}, expected {grammar_id!r}")
        return packed

    def decompress(image_b64):
        # No "grammar" field: the server must resolve it from the
        # grammar id embedded in the compressed image's header.
        back = client.call(op="decompress", image=image_b64)
        if not back.get("ok"):
            fail(f"decompress: {back.get('error')}")
        return back["image"]

    packed = compress(base64.b64encode(original).decode())
    canonical = decompress(packed["image"])
    again = decompress(compress(canonical)["image"])
    if again != canonical:
        fail("round-trip on the canonical image is not byte-identical")

    # Admission control: a request declaring more than the server's
    # --max-budget ceiling must be clamped (and say so), not rejected.
    greedy = compress(canonical, budget={"max_items": 2**53, "max_columns": 2**53})
    if greedy.get("clamped") is not True:
        fail(f"over-ceiling budget was not clamped: {greedy}")

    def run(image_b64):
        ran = client.call(op="run", image=image_b64)
        if not ran.get("ok"):
            fail(f"run: {ran.get('error')}")
        return ran

    plain, compressed = run(base64.b64encode(original).decode()), run(packed["image"])
    if plain.get("exit_code") != 0:
        fail(f"uncompressed run exit code {plain.get('exit_code')!r}")
    for key in ("exit_code", "output"):
        if plain.get(key) != compressed.get(key):
            fail(
                f"compressed run diverged on {key}: "
                f"{plain.get(key)!r} vs {compressed.get(key)!r}"
            )

    stats = client.call(op="stats")
    if not stats.get("ok"):
        fail(f"stats: {stats.get('error')}")
    histograms = stats["metrics"]["histograms"]
    for op in ("compress", "decompress", "run", "stats"):
        name = f"serve.request.{op}.micros"
        if histograms.get(name, {}).get("count", 0) < 1:
            fail(f"stats lacks a populated {name} histogram")

    down = client.call(op="shutdown")
    if not down.get("ok"):
        fail(f"shutdown: {down.get('error')}")
    print("serve smoke: compress/decompress/run/stats round-trip ok")


if __name__ == "__main__":
    main()
