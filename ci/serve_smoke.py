#!/usr/bin/env python3
"""Drive a running `pgr serve` instance end to end, stdlib-only (CI
runners have no extra packages).

    python3 ci/serve_smoke.py <socket> <grammar-id> <image.pgrb> [slow.ndjson]

Speaks the newline-delimited JSON protocol from pgr-registry's `serve`
module and checks the contract the docs promise:

  * an unknown op fails in-band without dropping the connection, and
    the error payload carries the request's trace id and elapsed micros,
  * every response (ok or not) carries a 16-hex-digit trace id,
  * compress -> decompress round-trips byte-identical on canonical
    images (the compressor canonicalizes, so the first round-trip maps
    the input to its canonical form and every later one is an identity),
  * the compressed image runs via its embedded grammar id alone
    (no "grammar" field in the request) with the same exit code and
    output as the uncompressed original,
  * a request declaring more than the server's --max-budget ceiling is
    admitted with a clamped budget rather than rejected,
  * stats reports a populated serve.request.<op>.micros histogram with
    quantile fields (p50/p90/p95/p99) for every op exercised, plus the
    sliding-window aggregates and uptime,
  * stats exposes the reactor's live queue depth and resident engine
    count, and the batching histograms (serve.batch.size,
    serve.batch.wait_micros) are populated once a compress has run,
  * shutdown is acknowledged before the server exits,
  * when a slow-trace path is given (the server ran with --slow-ms 0),
    the NDJSON dump exists, every line parses, and the header trace ids
    include the ids the client saw in its responses.

Overload mode — run against a server started with a tiny queue (e.g.
`--workers 1 --batch-window-us 200000 --max-queue 2`):

    python3 ci/serve_smoke.py --overload <socket> <grammar-id> <image.pgrb>

Pipelines 4x the queue bound of compress requests in one write and
checks that admission control answers the overflow in-band — some
requests succeed, the rest get `{"ok":false,"error":"overloaded"}` with
a retry_after_ms hint — with every response delivered in request order
on a connection that stays open, and that serve.rejected.overload and
the window's rejected counter agree with what the client saw.

The caller is expected to validate the server's emitted metrics file
against schema/metrics.schema.json afterwards.
"""

import base64
import json
import socket
import sys


def fail(msg):
    print(f"serve smoke failure: {msg}", file=sys.stderr)
    sys.exit(1)


class Client:
    def __init__(self, path):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(path)
        self.reader = self.sock.makefile("r", encoding="utf-8")

    def call(self, **request):
        self.sock.sendall((json.dumps(request) + "\n").encode())
        line = self.reader.readline()
        if not line:
            fail(f"connection closed during {request.get('op')!r}")
        return json.loads(line)


TRACES = []


def trace_of(resp):
    """The response's trace id, checked for shape and collected."""
    trace = resp.get("trace")
    if not isinstance(trace, str) or len(trace) != 16:
        fail(f"response lacks a 16-hex trace id: {resp}")
    try:
        int(trace, 16)
    except ValueError:
        fail(f"trace id is not hex: {trace!r}")
    TRACES.append(trace)
    return trace


def check_slow_trace(path):
    """Every slow-log line parses; headers announce their event counts
    and cover the trace ids the client saw in its responses."""
    try:
        text = open(path).read()
    except OSError as e:
        fail(f"slow-trace dump missing: {e}")
    headers, pending = [], 0
    for lineno, line in enumerate(text.splitlines(), 1):
        try:
            value = json.loads(line)
        except ValueError as e:
            fail(f"{path}:{lineno}: not JSON ({e})")
        if pending == 0:
            for key in ("trace", "op", "micros", "events"):
                if key not in value:
                    fail(f"{path}:{lineno}: header lacks {key!r}: {value}")
            headers.append(value["trace"])
            pending = value["events"]
        else:
            if "name" not in value or "ph" not in value:
                fail(f"{path}:{lineno}: span event lacks name/ph: {value}")
            pending -= 1
    if pending:
        fail(f"{path} ends mid-request ({pending} events short)")
    missing = [t for t in TRACES if t not in headers]
    if missing:
        fail(f"response traces absent from slow log: {missing}")
    print(f"serve smoke: slow-trace dump ok ({len(headers)} request trees)")


def check_overload(path, grammar_id, image_path):
    """Pipeline 8 compresses at a server with a tiny queue: overflow is
    refused in-band, in order, without dropping the connection."""
    original = open(image_path, "rb").read()
    request = (
        json.dumps(
            {
                "op": "compress",
                "grammar": grammar_id,
                "image": base64.b64encode(original).decode(),
            }
        )
        + "\n"
    ).encode()
    client = Client(path)
    burst = 8
    client.sock.sendall(request * burst)
    ok = overloaded = 0
    for i in range(burst):
        line = client.reader.readline()
        if not line:
            fail(f"connection dropped after {i} of {burst} pipelined responses")
        resp = json.loads(line)
        trace_of(resp)
        if resp.get("ok"):
            ok += 1
        elif resp.get("error") == "overloaded":
            if not isinstance(resp.get("retry_after_ms"), int) or resp["retry_after_ms"] < 1:
                fail(f"overloaded response lacks a retry_after_ms hint: {resp}")
            overloaded += 1
        else:
            fail(f"unexpected failure under load: {resp}")
    if not ok or not overloaded:
        fail(f"saturation did not split the burst: ok={ok} overloaded={overloaded}")

    stats = client.call(op="stats")
    if not stats.get("ok"):
        fail(f"stats: {stats.get('error')}")
    rejected = stats["metrics"]["counters"].get("serve.rejected.overload", 0)
    if rejected != overloaded:
        fail(f"serve.rejected.overload={rejected} but client saw {overloaded}")
    if stats.get("window", {}).get("rejected") != overloaded:
        fail(f"window rejected diverges from client: {stats.get('window')}")

    down = client.call(op="shutdown")
    if not down.get("ok"):
        fail(f"shutdown: {down.get('error')}")
    print(f"serve smoke: overload split {burst} pipelined requests into "
          f"{ok} ok + {overloaded} in-band rejections")


def main():
    argv = sys.argv[1:]
    if argv and argv[0] == "--overload":
        if len(argv) != 4:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        check_overload(*argv[1:])
        return
    if len(sys.argv) not in (4, 5):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path, grammar_id, image_path = sys.argv[1:4]
    slow_trace = sys.argv[4] if len(sys.argv) == 5 else None
    original = open(image_path, "rb").read()
    client = Client(path)

    bad = client.call(op="frobnicate")
    if bad.get("ok") is not False or "error" not in bad:
        fail(f"unknown op did not fail in-band: {bad}")
    trace_of(bad)
    if not isinstance(bad.get("micros"), int):
        fail(f"error payload lacks elapsed micros: {bad}")

    def compress(image_b64, **extra):
        packed = client.call(op="compress", grammar=grammar_id, image=image_b64, **extra)
        if not packed.get("ok"):
            fail(f"compress: {packed.get('error')}")
        if packed.get("grammar") != grammar_id:
            fail(f"compress stamped {packed.get('grammar')!r}, expected {grammar_id!r}")
        trace_of(packed)
        return packed

    def decompress(image_b64):
        # No "grammar" field: the server must resolve it from the
        # grammar id embedded in the compressed image's header.
        back = client.call(op="decompress", image=image_b64)
        if not back.get("ok"):
            fail(f"decompress: {back.get('error')}")
        trace_of(back)
        return back["image"]

    packed = compress(base64.b64encode(original).decode())
    canonical = decompress(packed["image"])
    again = decompress(compress(canonical)["image"])
    if again != canonical:
        fail("round-trip on the canonical image is not byte-identical")

    # Admission control: a request declaring more than the server's
    # --max-budget ceiling must be clamped (and say so), not rejected.
    greedy = compress(canonical, budget={"max_items": 2**53, "max_columns": 2**53})
    if greedy.get("clamped") is not True:
        fail(f"over-ceiling budget was not clamped: {greedy}")

    def run(image_b64):
        ran = client.call(op="run", image=image_b64)
        if not ran.get("ok"):
            fail(f"run: {ran.get('error')}")
        trace_of(ran)
        return ran

    plain, compressed = run(base64.b64encode(original).decode()), run(packed["image"])
    if plain.get("exit_code") != 0:
        fail(f"uncompressed run exit code {plain.get('exit_code')!r}")
    for key in ("exit_code", "output"):
        if plain.get(key) != compressed.get(key):
            fail(
                f"compressed run diverged on {key}: "
                f"{plain.get(key)!r} vs {compressed.get(key)!r}"
            )

    stats = client.call(op="stats")
    if not stats.get("ok"):
        fail(f"stats: {stats.get('error')}")
    trace_of(stats)
    if not isinstance(stats.get("uptime_secs"), int):
        fail(f"stats lacks uptime_secs: {list(stats)}")
    histograms = stats["metrics"]["histograms"]
    for op in ("compress", "decompress", "run", "stats"):
        name = f"serve.request.{op}.micros"
        hist = histograms.get(name, {})
        if hist.get("count", 0) < 1:
            fail(f"stats lacks a populated {name} histogram")
        for q in ("p50", "p90", "p95", "p99"):
            if not isinstance(hist.get(q), int):
                fail(f"{name} lacks quantile {q}: {hist}")

    # Reactor surface: live queue depth and resident engines, plus the
    # batching histograms (every compress passes through the batcher, so
    # a singleton dispatch still records a batch of one).
    for field in ("queue_depth", "engines"):
        if not isinstance(stats.get(field), int):
            fail(f"stats lacks {field}: {list(stats)}")
    if stats["engines"] < 1:
        fail(f"stats reports no resident engines after compressing: {stats['engines']}")
    for name in ("serve.batch.size", "serve.batch.wait_micros"):
        hist = histograms.get(name)
        if not isinstance(hist, dict):
            fail(f"stats lacks the {name} histogram")
        if name == "serve.batch.size" and hist.get("count", 0) < 1:
            fail(f"{name} never recorded a dispatch: {hist}")

    window = stats.get("window")
    if not isinstance(window, dict):
        fail(f"stats lacks a window object: {list(stats)}")
    if window.get("requests", 0) < 1:
        fail(f"window saw no requests: {window}")
    if not isinstance(window.get("rejected"), int):
        fail(f"window lacks a rejected counter: {window}")
    for agg in ("batch_size", "batch_wait"):
        entry = window.get(agg)
        if not isinstance(entry, dict) or not isinstance(entry.get("count"), int):
            fail(f"window lacks a {agg} aggregate: {window}")
    for op, entry in window.get("ops", {}).items():
        for field in ("count", "p50", "p90", "p95", "p99", "max"):
            if not isinstance(entry.get(field), int):
                fail(f"window op {op!r} lacks {field}: {entry}")
    if "compress" not in window.get("ops", {}):
        fail(f"window lacks a compress entry: {window.get('ops')}")

    down = client.call(op="shutdown")
    if not down.get("ok"):
        fail(f"shutdown: {down.get('error')}")
    print("serve smoke: compress/decompress/run/stats round-trip ok")

    if slow_trace is not None:
        check_slow_trace(slow_trace)


if __name__ == "__main__":
    main()
