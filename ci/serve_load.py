#!/usr/bin/env python3
"""Closed-loop load generator for `pgr serve`, stdlib-only.

Live mode — drive a running server and print a JSON result line:

    python3 ci/serve_load.py <socket> <grammar-id> <image.pgrb> \
        [--connections N] [--duration S] [--warmup S] [--depth D]

Opens N Unix-socket connections and keeps D compress requests
outstanding on each (closed loop: responses immediately fund
replacement requests). The client usually shares a core with the
server, so it is built to spend as little CPU per request as possible:
one request line is prebuilt and reused verbatim, responses are
*counted* (newlines and `"ok":true` tokens scanned per recv chunk at C
speed, with an 8-byte carry so a token split across chunks still
counts) rather than parsed, and refills go out as one buffered write.
Requests completing during the warmup are discarded; the printed
result covers only the measurement window:

    {"rps": ..., "p50_us": ..., "p99_us": ..., "requests": ..., "errors": ...}

Latency is measured by probe sampling: each connection keeps one timed
request in flight at a time and clocks it when the response count
catches up, so a probe resolves at recv granularity. At --depth 1
every request is a probe and the quantiles are exact per-request
send-to-response times; at higher depths they include client-side
pipeline queueing and are the honest figure for a pipelining client,
not comparable to depth-1 numbers.

Check mode — validate a committed BENCH_serve.json baseline:

    python3 ci/serve_load.py --check BENCH_serve.json

Asserts the pgr-serve-bench/1 shape, recomputes the speedup and p99
ratio from the section figures, and enforces the acceptance floors:
reactor throughput at high concurrency at least 3x thread-per-conn,
single-connection p99 within 10%, zero errors in every section.
"""

import base64
import json
import selectors
import socket
import sys
import time

OK_TOKEN = b'"ok":true'
CARRY = len(OK_TOKEN) - 1


def fail(msg):
    print(f"serve load failure: {msg}", file=sys.stderr)
    sys.exit(1)


class Conn:
    """One closed-loop connection with `depth` requests outstanding."""

    def __init__(self, path, request):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(path)
        self.sock.setblocking(False)
        self.request = request
        self.out = b""
        self.outstanding = 0
        self.tail = b""  # carry for ok-tokens split across recv chunks
        self.probe_sent = None
        self.probe_due = 0

    def enqueue(self, n, now):
        if n <= 0:
            return
        if self.probe_sent is None:
            # Time the first request of this refill: it completes after
            # everything already in flight plus itself.
            self.probe_sent = now
            self.probe_due = self.outstanding + 1
        self.out += self.request * n
        self.outstanding += n

    def pump_out(self):
        """Write as much pending request data as the socket accepts."""
        while self.out:
            try:
                n = self.sock.send(self.out)
            except BlockingIOError:
                break
            self.out = self.out[n:]

    def count_ok(self, chunk):
        """Occurrences of `"ok":true` ending inside `chunk`, including
        ones that started in the previous chunk."""
        data = self.tail + chunk
        ok = 0
        idx = data.find(OK_TOKEN)
        while idx != -1:
            ok += 1
            idx = data.find(OK_TOKEN, idx + 1)
        self.tail = data[-CARRY:]
        return ok


def run_load(path, grammar_id, image_path, connections, duration, warmup, depth):
    image = base64.b64encode(open(image_path, "rb").read()).decode()
    request = (
        json.dumps({"op": "compress", "grammar": grammar_id, "image": image}) + "\n"
    ).encode()

    sel = selectors.DefaultSelector()
    conns = []
    now = time.perf_counter_ns()
    for _ in range(connections):
        conn = Conn(path, request)
        conns.append(conn)
        sel.register(conn.sock, selectors.EVENT_READ, conn)
    for conn in conns:
        conn.enqueue(depth, now)
        conn.pump_out()

    start = time.perf_counter_ns()
    warm_end = start + int(warmup * 1e9)
    end = warm_end + int(duration * 1e9)
    requests = total_lines = total_ok = 0
    latencies = []
    measuring = False

    while True:
        now = time.perf_counter_ns()
        if now >= end:
            break
        if not measuring and now >= warm_end:
            measuring = True
        for key, events in sel.select(timeout=0.1):
            conn = key.data
            if events & selectors.EVENT_WRITE:
                conn.pump_out()
                if not conn.out:
                    sel.modify(conn.sock, selectors.EVENT_READ, conn)
            if not events & selectors.EVENT_READ:
                continue
            try:
                chunk = conn.sock.recv(1 << 18)
            except BlockingIOError:
                continue
            if not chunk:
                fail("server closed a connection mid-run")
            now = time.perf_counter_ns()
            n = chunk.count(b"\n")
            ok = conn.count_ok(chunk)
            conn.outstanding -= n
            # Track totals over the whole run: a response split across
            # the warmup boundary would otherwise skew the window's
            # error count by one.
            total_lines += n
            total_ok += ok
            if measuring:
                requests += n
            if conn.probe_sent is not None:
                conn.probe_due -= n
                if conn.probe_due <= 0:
                    if measuring:
                        latencies.append((now - conn.probe_sent) // 1000)
                    conn.probe_sent = None
            was_blocked = bool(conn.out)
            conn.enqueue(n, now)
            conn.pump_out()
            if conn.out and not was_blocked:
                sel.modify(
                    conn.sock, selectors.EVENT_READ | selectors.EVENT_WRITE, conn
                )

    elapsed = (time.perf_counter_ns() - warm_end) / 1e9
    for conn in conns:
        conn.sock.close()
    if not latencies:
        fail("no latency probes completed inside the measurement window")
    latencies.sort()

    def pct(p):
        return latencies[min(len(latencies) - 1, int(len(latencies) * p))]

    return {
        "rps": round(requests / elapsed, 1),
        "p50_us": pct(0.50),
        "p99_us": pct(0.99),
        "requests": requests,
        # A line straddling the cutoff can leave its ok-token counted
        # but its newline unread, so clamp at zero.
        "errors": max(0, total_lines - total_ok),
    }


def check_baseline(path):
    doc = json.load(open(path))
    if doc.get("schema") != "pgr-serve-bench/1":
        fail(f"schema tag {doc.get('schema')!r} != 'pgr-serve-bench/1'")
    for key in ("corpus", "connections", "depth", "duration_secs"):
        if key not in doc:
            fail(f"baseline lacks {key!r}")

    def section(obj, label):
        for field in ("rps", "p50_us", "p99_us", "requests", "errors"):
            if not isinstance(obj.get(field), (int, float)):
                fail(f"{label} lacks numeric {field!r}: {obj}")
        if obj["errors"]:
            fail(f"{label} recorded {obj['errors']} errors")
        if obj["rps"] <= 0:
            fail(f"{label} throughput is not positive: {obj['rps']}")
        return obj

    reactor = section(doc.get("reactor", {}), "reactor")
    legacy = section(doc.get("thread_per_conn", {}), "thread_per_conn")
    speedup = reactor["rps"] / legacy["rps"]
    if abs(speedup - doc.get("speedup", 0)) > 0.05:
        fail(f"stored speedup {doc.get('speedup')} != recomputed {speedup:.2f}")
    if speedup < 3.0:
        fail(
            f"reactor must be >= 3x thread-per-conn at {doc['connections']} "
            f"connections; measured {speedup:.2f}x"
        )

    c1 = doc.get("concurrency1", {})
    c1_reactor = section(c1.get("reactor", {}), "concurrency1.reactor")
    c1_legacy = section(c1.get("thread_per_conn", {}), "concurrency1.thread_per_conn")
    ratio = c1_reactor["p99_us"] / c1_legacy["p99_us"]
    if abs(ratio - c1.get("p99_ratio", 0)) > 0.05:
        fail(f"stored p99_ratio {c1.get('p99_ratio')} != recomputed {ratio:.3f}")
    if ratio > 1.10:
        fail(f"single-connection p99 regressed beyond 10%: ratio {ratio:.3f}")

    print(
        f"{path}: valid pgr-serve-bench/1 baseline "
        f"({speedup:.2f}x at {doc['connections']} connections, "
        f"concurrency-1 p99 ratio {ratio:.3f})"
    )


def main():
    args = sys.argv[1:]
    if args and args[0] == "--check":
        if len(args) != 2:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        check_baseline(args[1])
        return
    if len(args) < 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path, grammar_id, image_path = args[:3]
    opts = {"--connections": 64, "--duration": 5.0, "--warmup": 1.0, "--depth": 1}
    rest = args[3:]
    while rest:
        flag = rest.pop(0)
        if flag not in opts or not rest:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        opts[flag] = type(opts[flag])(rest.pop(0))
    result = run_load(
        path,
        grammar_id,
        image_path,
        opts["--connections"],
        opts["--duration"],
        opts["--warmup"],
        opts["--depth"],
    )
    print(json.dumps(result))


if __name__ == "__main__":
    main()
