#!/usr/bin/env python3
"""Validate a `pgr --trace-out` Chrome trace_event file, stdlib-only.

    python3 ci/trace_check.py <trace.json> [min_depth] [min_lanes]

Mirrors pgr-telemetry's `validate_chrome_trace` so CI can gate the
exported artifact without a Rust build step:

  * the document is `{"displayTimeUnit": ..., "traceEvents": [...]}`,
  * every event has a name, a phase in B/E/i/M, integer ts and tid,
  * on each lane (tid), every E closes the matching open B by name,
    no lane ends with an open span, and timestamps never go backwards,
  * all span events that carry args.trace agree on one nonzero id,
  * nesting reaches at least `min_depth` (default 3) on some lane and
    at least `min_lanes` (default 2) lanes recorded events — the
    acceptance bar for per-worker lanes in a parallel compress.
"""

import json
import sys


def fail(msg):
    print(f"trace check failure: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) not in (2, 3, 4):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = sys.argv[1]
    min_depth = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    min_lanes = int(sys.argv[3]) if len(sys.argv) > 3 else 2

    try:
        doc = json.load(open(path))
    except ValueError as e:
        fail(f"{path} is not JSON: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents is missing or empty")

    stacks = {}  # tid -> open span names
    last_ts = {}  # tid -> last timestamp seen
    max_depth = 0
    trace_ids = set()
    for i, ev in enumerate(events):
        name, ph, ts, tid = ev.get("name"), ev.get("ph"), ev.get("ts"), ev.get("tid")
        if not isinstance(name, str) or not name:
            fail(f"event {i} has no name: {ev}")
        if ph not in ("B", "E", "i", "M"):
            fail(f"event {i} has unknown phase {ph!r}")
        if ph == "M":
            continue  # metadata: no timestamp/lane discipline
        if not isinstance(ts, int) or not isinstance(tid, int):
            fail(f"event {i} lacks integer ts/tid: {ev}")
        if ts < last_ts.get(tid, 0):
            fail(f"event {i} goes back in time on lane {tid}: {ev}")
        last_ts[tid] = ts
        stack = stacks.setdefault(tid, [])
        if ph == "B":
            stack.append(name)
            max_depth = max(max_depth, len(stack))
        elif ph == "E":
            if not stack:
                fail(f"event {i} ends with nothing open on lane {tid}: {ev}")
            opened = stack.pop()
            if opened != name:
                fail(f"event {i} ends {name!r} but {opened!r} is open on lane {tid}")
        trace = ev.get("args", {}).get("trace")
        if trace is not None:
            trace_ids.add(trace)

    for tid, stack in stacks.items():
        if stack:
            fail(f"lane {tid} ends with open spans {stack}")
    if "0" * 16 in trace_ids:
        fail("an event carries the null trace id")
    if len(trace_ids) > 1:
        fail(f"events disagree on the trace id: {sorted(trace_ids)}")
    lanes = len(stacks)
    if max_depth < min_depth:
        fail(f"max nesting depth {max_depth} < required {min_depth}")
    if lanes < min_lanes:
        fail(f"only {lanes} lanes recorded events, required {min_lanes}")
    print(
        f"{path}: valid trace_event JSON — {len(events)} events, "
        f"{lanes} lanes, depth {max_depth}, trace {sorted(trace_ids) or ['-']}"
    )


if __name__ == "__main__":
    main()
