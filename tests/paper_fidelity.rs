//! Fidelity checks against concrete claims and examples in the paper's
//! text.

use pgr::bytecode::asm::assemble;
use pgr::bytecode::{Opcode, StackKind};
use pgr::core::{train, TrainConfig};
use pgr::earley::ShortestParser;
use pgr::grammar::initial::tokenize_segment;
use pgr::grammar::{Derivation, Forest, InitialGrammar};
use pgr::vm::cgen;

/// §4's worked example: the bytecode for `void check(int flag) { if
/// (flag == 0) exit(0); }` parses into two separate derivations, split
/// at the `LABELV`.
#[test]
fn section_4_check_example() {
    let prog = assemble(
        "proc check frame=0 args=4\n\
         \tADDRFP 0\n\tINDIRU\n\tLIT1 0\n\tNEU\n\tBrTrue 0\n\
         \tLIT1 0\n\tARGU\n\tADDRGP 0\n\tCALLU\n\tPOPU\n\
         \tlabel 0\n\
         \tRETV\n\
         endproc\nnative exit\nentry check\n",
    )
    .unwrap();
    let proc = &prog.procs[0];
    let segments = proc.segments().unwrap();
    assert_eq!(
        segments.len(),
        2,
        "the parse produces a forest of two trees"
    );

    let ig = InitialGrammar::build();
    let mut forest = Forest::new();
    for range in segments {
        let tokens = tokenize_segment(&proc.code[range]).unwrap();
        forest.add_segment(&ig, &tokens).unwrap();
    }
    assert_eq!(forest.roots().len(), 2);
    // The second derivation is exactly: <start>::=<start><x>, ε,
    // <x>::=<x0>, <x0>::=RETV — the "0 0" tail of the paper's encoding.
    let d2 = Derivation::from_tree(&forest, forest.roots()[1]);
    assert_eq!(d2.len(), 4);
}

/// Appendix 2's grammar shape: operator groups by stack effect, with the
/// non-terminals that "track stack height".
#[test]
fn appendix_2_grammar_groups() {
    let ig = InitialGrammar::build();
    // "Non-terminals that end in 0, 1, and 2 denote leaf, unary and
    // binary operators."
    for &op in Opcode::ALL {
        if op == Opcode::LABELV {
            continue;
        }
        let rule = ig.grammar.rule(ig.rule_for_opcode(op));
        let expected = match op.kind() {
            StackKind::V0 => ig.nt_v0,
            StackKind::V1 => ig.nt_v1,
            StackKind::V2 => ig.nt_v2,
            StackKind::X0 => ig.nt_x0,
            StackKind::X1 => ig.nt_x1,
            StackKind::X2 => ig.nt_x2,
            StackKind::Label => unreachable!(),
        };
        assert_eq!(rule.lhs, expected, "{op}");
        // "The grammar shows how many literal bytes follow each operator."
        assert_eq!(rule.arity(), op.operand_bytes(), "{op}");
    }
}

/// §4.1: "we stop creating rules for a non-terminal once it has 256
/// rules" — byte-indexable rules for every non-terminal, always.
#[test]
fn rules_always_fit_one_byte() {
    let c = pgr::corpus::corpus(pgr::corpus::CorpusName::Gzip);
    let trained = train(&c.refs(), &TrainConfig::default()).unwrap();
    let g = trained.expanded();
    for nt in 0..g.nt_count() {
        let nt = pgr::grammar::Nt(nt as u16);
        assert!(g.rules_of(nt).len() <= 256, "{}", g.nt_name(nt));
    }
}

/// §5's partially-inlined-literal contract: in every live rule, an
/// operator's literal operands immediately follow it, each either a
/// burnt byte or a `<byte>` slot — the invariant the generated GET
/// depends on.
#[test]
fn get_split_invariant_holds_after_training() {
    use pgr::grammar::{Symbol, Terminal};
    let c = pgr::corpus::corpus(pgr::corpus::CorpusName::Gzip);
    let trained = train(&c.refs(), &TrainConfig::default()).unwrap();
    let g = trained.expanded();
    let ig = trained.initial();
    for nt in 0..g.nt_count() {
        for &id in g.rules_of(pgr::grammar::Nt(nt as u16)) {
            let rule = g.rule(id);
            let mut i = 0;
            while i < rule.rhs.len() {
                if let Symbol::T(Terminal::Op(op)) = rule.rhs[i] {
                    for k in 1..=op.operand_bytes() {
                        match rule.rhs.get(i + k) {
                            Some(Symbol::T(Terminal::Byte(_))) => {}
                            Some(Symbol::N(n)) if *n == ig.nt_byte => {}
                            other => {
                                panic!("{}: operand {k} of {op} is {other:?}", g.display_rule(id))
                            }
                        }
                    }
                    i += 1 + op.operand_bytes();
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// §6's headline: "11KB of extra space in the interpreter" — the
/// compressed interpreter's delta is dominated by the grammar, and the
/// absolute sizes land where the paper's did.
#[test]
fn interpreter_size_claims() {
    let c = pgr::corpus::corpus(pgr::corpus::CorpusName::Lcc);
    let trained = train(&c.refs(), &TrainConfig::default()).unwrap();
    let sizes = cgen::interpreter_sizes(trained.expanded());
    // Paper: 7,855 initial / 18,962 compressed / 10,525 grammar.
    assert!(
        (6_000..10_000).contains(&sizes.initial),
        "{}",
        sizes.initial
    );
    assert!(
        (14_000..26_000).contains(&sizes.compressed),
        "{}",
        sizes.compressed
    );
    assert!(
        sizes.grammar * 2 > sizes.delta(),
        "the grammar accounts for most of the difference (§6): {} of {}",
        sizes.grammar,
        sizes.delta()
    );
}

/// Table 2's ordering: compressed < native x86 < uncompressed, each
/// total including everything but library code (§6).
#[test]
fn table_2_ordering_holds() {
    use pgr::bytecode::image::ImageStats;
    let c = pgr::corpus::corpus(pgr::corpus::CorpusName::Lcc);
    let trained = train(&c.refs(), &TrainConfig::default()).unwrap();
    let sizes = cgen::interpreter_sizes(trained.expanded());

    let mut uncompressed = sizes.initial;
    let mut compressed = sizes.compressed;
    let mut native = 0usize;
    for p in &c.programs {
        uncompressed += ImageStats::of(&pgr::core::canonicalize_program(p).unwrap()).total();
        let (cp, _) = trained.compress(p).unwrap();
        compressed += ImageStats::of(&cp.program).total();
        native += pgr::native::measure_program(p).total();
    }
    assert!(
        compressed < native && native < uncompressed,
        "expected compressed < native < uncompressed, got {compressed} / {native} / {uncompressed}"
    );
}

/// §4: the Earley encoder picks the *shortest* derivation among the
/// ambiguous alternatives — never worse than re-deriving with the
/// original rules only.
#[test]
fn shortest_derivation_beats_original_rules() {
    let c = pgr::corpus::corpus(pgr::corpus::CorpusName::EightQ);
    let trained = train(&c.refs(), &TrainConfig::default()).unwrap();
    let ig = InitialGrammar::build();
    let original_parser = ShortestParser::new(&ig.grammar);
    let expanded_parser = ShortestParser::new(trained.expanded());

    let p = &c.programs[0];
    for proc in &p.procs {
        for range in proc.segments().unwrap() {
            let tokens = tokenize_segment(&proc.code[range]).unwrap();
            let base = original_parser.parse(ig.nt_start, &tokens).unwrap();
            let best = expanded_parser
                .parse(trained.initial().nt_start, &tokens)
                .unwrap();
            assert!(best.len() <= base.len());
        }
    }
}
