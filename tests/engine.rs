//! Compressor-engine guarantees: parallel segment encoding and the
//! derivation cache are pure optimizations — the compressed bytes, the
//! stats, and the error behaviour must be indistinguishable from the
//! sequential, cache-free path at every configuration.

use pgr::core::{train, CompressorConfig, TrainConfig};
use pgr::corpus::synth::{generate_source, Flavor, SynthConfig};
use pgr::corpus::{corpus, CorpusName};
use proptest::prelude::*;

/// Every thread count produces byte-identical output and equal stats on
/// a full corpus — the strided fan-out must be invisible.
#[test]
fn parallel_output_is_byte_identical_to_sequential() {
    let c = corpus(CorpusName::Gzip);
    let trained = train(&c.refs(), &TrainConfig::default()).unwrap();
    let sequential = trained.compressor_with(
        CompressorConfig::default()
            .threads(1)
            .segment_cache_capacity(0),
    );
    let reference: Vec<_> = c
        .programs
        .iter()
        .map(|p| sequential.compress(p).unwrap())
        .collect();

    for threads in [1usize, 2, 3, 4, 8] {
        let engine = trained.compressor_with(CompressorConfig::default().threads(threads));
        for (p, (ref_cp, ref_stats)) in c.programs.iter().zip(&reference) {
            let (cp, stats) = engine.compress(p).unwrap();
            assert_eq!(&cp, ref_cp, "compressed bytes differ at threads={threads}");
            assert_eq!(&stats, ref_stats, "stats differ at threads={threads}");
        }
    }

    // Batch granularity is scheduling only: per-segment dispatch, small
    // batches, and one-batch-per-program all reproduce the reference.
    for (threads, batch) in [(4usize, 0usize), (3, 64), (2, 1 << 20)] {
        let engine = trained.compressor_with(
            CompressorConfig::default()
                .threads(threads)
                .batch_bytes(batch),
        );
        for (p, (ref_cp, ref_stats)) in c.programs.iter().zip(&reference) {
            let (cp, stats) = engine.compress(p).unwrap();
            assert_eq!(
                &cp, ref_cp,
                "bytes differ at threads={threads} batch={batch}"
            );
            assert_eq!(
                &stats, ref_stats,
                "stats differ at threads={threads} batch={batch}"
            );
        }
    }
}

/// Parallel decompression inputs round-trip exactly like sequential ones.
#[test]
fn parallel_roundtrip_matches_canonical_form() {
    let c = corpus(CorpusName::Gzip);
    let trained = train(&c.refs(), &TrainConfig::default()).unwrap();
    let engine = trained.compressor_with(CompressorConfig::default().threads(4));
    for p in &c.programs {
        let (cp, _) = engine.compress(p).unwrap();
        let back = engine.decompress(&cp).unwrap();
        assert_eq!(back, pgr::core::canonicalize_program(p).unwrap());
    }
}

/// The cache actually engages on corpus-shaped input, and its counters
/// add up.
#[test]
fn cache_counters_account_for_every_segment() {
    let c = corpus(CorpusName::Gzip);
    let trained = train(&c.refs(), &TrainConfig::default()).unwrap();
    let engine = trained.compressor_with(CompressorConfig::default().threads(1));
    let mut segments = 0u64;
    for p in &c.programs {
        let (_, stats) = engine.compress(p).unwrap();
        segments += stats.segments as u64;
    }
    let cs = engine.cache_stats();
    assert_eq!(cs.hits + cs.misses, segments);
    assert!(cs.hits > 0, "a corpus never repeats a segment? {cs:?}");
    assert!(cs.entries <= cs.capacity);
}

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        any::<u64>(),
        1usize..5,
        prop_oneof![Just(Flavor::Compiler), Just(Flavor::Numeric)],
    )
        .prop_map(|(seed, functions, flavor)| SynthConfig {
            seed,
            functions,
            flavor,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A warm cache must be invisible: compressing the same program a
    /// second time (every segment now cached) returns exactly the cold
    /// result, and both equal the cache-free result.
    #[test]
    fn cache_warm_compression_equals_cold(config in arb_config()) {
        let source = generate_source(&config);
        let program = pgr::minic::compile(&source).expect("valid mini-C");
        let trained = train(&[&program], &TrainConfig::default()).unwrap();

        let uncached = trained.compressor_with(
            CompressorConfig::default().threads(1).segment_cache_capacity(0),
        );
        let baseline = uncached.compress(&program).unwrap();

        let engine = trained.compressor();
        let cold = engine.compress(&program).unwrap();
        let cold_stats = engine.cache_stats();
        let warm = engine.compress(&program).unwrap();
        let warm_stats = engine.cache_stats();

        prop_assert_eq!(&cold, &baseline);
        prop_assert_eq!(&warm, &cold);
        // The warm pass parsed nothing new.
        prop_assert_eq!(warm_stats.misses, cold_stats.misses);
        prop_assert!(warm_stats.hits >= cold_stats.hits);
    }

    /// Thread-count and batch-size invariance holds for arbitrary
    /// generated programs, not just the fixed corpora.
    #[test]
    fn thread_counts_agree_on_generated_programs(config in arb_config()) {
        let source = generate_source(&config);
        let program = pgr::minic::compile(&source).expect("valid mini-C");
        let trained = train(&[&program], &TrainConfig::default()).unwrap();
        let reference = trained
            .compressor_with(CompressorConfig::default().threads(1))
            .compress(&program)
            .unwrap();
        for (threads, batch) in [(2usize, 1024usize), (5, 1024), (3, 0), (4, 129), (2, 1 << 20)] {
            let got = trained
                .compressor_with(
                    CompressorConfig::default().threads(threads).batch_bytes(batch),
                )
                .compress(&program)
                .unwrap();
            prop_assert_eq!(&got, &reference);
        }
    }

    /// A parser fed through one long-lived [`ChartArena`] must be
    /// indistinguishable from a fresh parse per segment: byte-identical
    /// derivations (hence identical costs) over every straight-line
    /// segment of an arbitrary program, under the expanded grammar.
    #[test]
    fn reused_arena_matches_fresh_parser_on_random_segments(config in arb_config()) {
        use pgr::bytecode::{instrs, Opcode};
        use pgr::earley::{ChartArena, ShortestParser};
        use pgr::grammar::initial::tokenize_segment;

        let source = generate_source(&config);
        let program = pgr::minic::compile(&source).expect("valid mini-C");
        let trained = train(&[&program], &TrainConfig::default()).unwrap();
        let start = trained.initial().nt_start;
        let parser = ShortestParser::new(trained.expanded());
        let mut arena = ChartArena::new();

        let canon = pgr::core::canonicalize_program(&program).unwrap();
        let mut segments = 0usize;
        for proc in &canon.procs {
            let mut ranges = Vec::new();
            let mut seg_start = 0usize;
            for insn in instrs(&proc.code) {
                let insn = insn.expect("canonical code decodes");
                if insn.opcode == Opcode::LABELV {
                    if insn.offset > seg_start {
                        ranges.push(seg_start..insn.offset);
                    }
                    seg_start = insn.offset + 1;
                }
            }
            if proc.code.len() > seg_start {
                ranges.push(seg_start..proc.code.len());
            }
            for range in ranges {
                let tokens = tokenize_segment(&proc.code[range]).unwrap();
                let fresh = parser.parse(start, &tokens);
                let reused = parser.parse_into(&mut arena, start, &tokens);
                prop_assert_eq!(fresh, reused);
                segments += 1;
            }
        }
        prop_assert!(segments > 0, "program produced no segments");
    }
}

// ---- telemetry --------------------------------------------------------

use pgr::telemetry::{Metrics, Recorder};
use std::time::Duration;

/// An arbitrary metrics batch drawing names from a small pool so merges
/// actually collide on keys.
fn arb_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")]
}

fn arb_metrics() -> impl Strategy<Value = Metrics> {
    let counter = (arb_name(), 0u64..1000);
    let gauge = (arb_name(), 0u64..1000);
    let obs = (arb_name(), 0u64..1000);
    let span = (arb_name(), 0u64..1_000_000);
    (
        prop::collection::vec(counter, 0..6),
        prop::collection::vec(gauge, 0..6),
        prop::collection::vec(obs, 0..6),
        prop::collection::vec(span, 0..6),
    )
        .prop_map(|(counters, gauges, obs, spans)| {
            let mut m = Metrics::new();
            for (k, v) in counters {
                m.add(k, v);
            }
            for (k, v) in gauges {
                m.gauge_max(k, v);
            }
            for (k, v) in obs {
                m.observe(k, v);
            }
            for (k, ns) in spans {
                m.record_span(k, Duration::from_nanos(ns));
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The metrics monoid: merge is associative and commutative, so
    /// per-worker batches can land in any grouping and any order.
    #[test]
    fn metrics_merge_is_associative_and_commutative(
        a in arb_metrics(),
        b in arb_metrics(),
        c in arb_metrics(),
    ) {
        let ab_c = a.clone().merge(b.clone()).merge(c.clone());
        let a_bc = a.clone().merge(b.clone().merge(c.clone()));
        prop_assert_eq!(&ab_c, &a_bc);

        let ab = a.clone().merge(b.clone());
        let ba = b.merge(a);
        prop_assert_eq!(&ab, &ba);

        // The empty batch is the identity.
        prop_assert_eq!(&ab_c.clone().merge(Metrics::new()), &ab_c);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Parallel and sequential compression record identical counter and
    /// gauge totals — the strided fan-out merges worker batches into the
    /// same sums the single-threaded path produces. (Spans are excluded:
    /// wall-clock durations are never deterministic.)
    #[test]
    fn parallel_and_sequential_record_identical_counters(config in arb_config()) {
        let source = generate_source(&config);
        let program = pgr::minic::compile(&source).expect("valid mini-C");
        let trained = train(&[&program], &TrainConfig::default()).unwrap();

        let mut totals = Vec::new();
        for threads in [1usize, 4] {
            let recorder = Recorder::new();
            let engine = trained.compressor_with_recorder(
                CompressorConfig::default().threads(threads).segment_cache_capacity(0),
                recorder.clone(),
            );
            engine.compress(&program).unwrap();
            let m = recorder.take();
            // `earley.arena.reuse` is the one intentionally
            // scheduling-dependent counter: each worker warms its own
            // arena, so more workers means fewer reuses. Everything
            // else must match exactly.
            let mut counters = m.counters().clone();
            counters.remove("earley.arena.reuse");
            totals.push((counters, m.gauges().clone()));
        }
        prop_assert_eq!(&totals[0], &totals[1]);
    }
}
