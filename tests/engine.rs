//! Compressor-engine guarantees: parallel segment encoding and the
//! derivation cache are pure optimizations — the compressed bytes, the
//! stats, and the error behaviour must be indistinguishable from the
//! sequential, cache-free path at every configuration.

use pgr::core::{train, CompressorConfig, TrainConfig};
use pgr::corpus::synth::{generate_source, Flavor, SynthConfig};
use pgr::corpus::{corpus, CorpusName};
use proptest::prelude::*;

/// Every thread count produces byte-identical output and equal stats on
/// a full corpus — the strided fan-out must be invisible.
#[test]
fn parallel_output_is_byte_identical_to_sequential() {
    let c = corpus(CorpusName::Gzip);
    let trained = train(&c.refs(), &TrainConfig::default()).unwrap();
    let sequential = trained.compressor_with(
        CompressorConfig::default()
            .threads(1)
            .segment_cache_capacity(0),
    );
    let reference: Vec<_> = c
        .programs
        .iter()
        .map(|p| sequential.compress(p).unwrap())
        .collect();

    for threads in [1usize, 2, 3, 4, 8] {
        let engine = trained.compressor_with(CompressorConfig::default().threads(threads));
        for (p, (ref_cp, ref_stats)) in c.programs.iter().zip(&reference) {
            let (cp, stats) = engine.compress(p).unwrap();
            assert_eq!(&cp, ref_cp, "compressed bytes differ at threads={threads}");
            assert_eq!(&stats, ref_stats, "stats differ at threads={threads}");
        }
    }
}

/// Parallel decompression inputs round-trip exactly like sequential ones.
#[test]
fn parallel_roundtrip_matches_canonical_form() {
    let c = corpus(CorpusName::Gzip);
    let trained = train(&c.refs(), &TrainConfig::default()).unwrap();
    let engine = trained.compressor_with(CompressorConfig::default().threads(4));
    for p in &c.programs {
        let (cp, _) = engine.compress(p).unwrap();
        let back = engine.decompress(&cp).unwrap();
        assert_eq!(back, pgr::core::canonicalize_program(p).unwrap());
    }
}

/// The cache actually engages on corpus-shaped input, and its counters
/// add up.
#[test]
fn cache_counters_account_for_every_segment() {
    let c = corpus(CorpusName::Gzip);
    let trained = train(&c.refs(), &TrainConfig::default()).unwrap();
    let engine = trained.compressor_with(CompressorConfig::default().threads(1));
    let mut segments = 0u64;
    for p in &c.programs {
        let (_, stats) = engine.compress(p).unwrap();
        segments += stats.segments as u64;
    }
    let cs = engine.cache_stats();
    assert_eq!(cs.hits + cs.misses, segments);
    assert!(cs.hits > 0, "a corpus never repeats a segment? {cs:?}");
    assert!(cs.entries <= cs.capacity);
}

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        any::<u64>(),
        1usize..5,
        prop_oneof![Just(Flavor::Compiler), Just(Flavor::Numeric)],
    )
        .prop_map(|(seed, functions, flavor)| SynthConfig {
            seed,
            functions,
            flavor,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A warm cache must be invisible: compressing the same program a
    /// second time (every segment now cached) returns exactly the cold
    /// result, and both equal the cache-free result.
    #[test]
    fn cache_warm_compression_equals_cold(config in arb_config()) {
        let source = generate_source(&config);
        let program = pgr::minic::compile(&source).expect("valid mini-C");
        let trained = train(&[&program], &TrainConfig::default()).unwrap();

        let uncached = trained.compressor_with(
            CompressorConfig::default().threads(1).segment_cache_capacity(0),
        );
        let baseline = uncached.compress(&program).unwrap();

        let engine = trained.compressor();
        let cold = engine.compress(&program).unwrap();
        let cold_stats = engine.cache_stats();
        let warm = engine.compress(&program).unwrap();
        let warm_stats = engine.cache_stats();

        prop_assert_eq!(&cold, &baseline);
        prop_assert_eq!(&warm, &cold);
        // The warm pass parsed nothing new.
        prop_assert_eq!(warm_stats.misses, cold_stats.misses);
        prop_assert!(warm_stats.hits >= cold_stats.hits);
    }

    /// Thread-count invariance holds for arbitrary generated programs,
    /// not just the fixed corpora.
    #[test]
    fn thread_counts_agree_on_generated_programs(config in arb_config()) {
        let source = generate_source(&config);
        let program = pgr::minic::compile(&source).expect("valid mini-C");
        let trained = train(&[&program], &TrainConfig::default()).unwrap();
        let reference = trained
            .compressor_with(CompressorConfig::default().threads(1))
            .compress(&program)
            .unwrap();
        for threads in [2usize, 5] {
            let got = trained
                .compressor_with(CompressorConfig::default().threads(threads))
                .compress(&program)
                .unwrap();
            prop_assert_eq!(&got, &reference);
        }
    }
}
