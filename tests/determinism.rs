//! Determinism guarantees: EXPERIMENTS.md promises bit-for-bit
//! reproducible numbers, which requires every pipeline stage to be
//! deterministic — seeded corpora, ordered contraction, tie-broken
//! heaps, and iteration-order-free bookkeeping.

use pgr::core::{train, TrainConfig};
use pgr::corpus::{corpus, CorpusName};
use pgr::grammar::encode::encode_grammar;

#[test]
fn corpora_are_bit_identical_across_builds() {
    let a = corpus(CorpusName::Gzip);
    let b = corpus(CorpusName::Gzip);
    assert_eq!(a.programs, b.programs);
    let a = corpus(CorpusName::Lcc);
    let b = corpus(CorpusName::Lcc);
    assert_eq!(a.programs, b.programs);
}

#[test]
fn training_is_bit_identical_across_runs() {
    let c = corpus(CorpusName::Gzip);
    let t1 = train(&c.refs(), &TrainConfig::default()).unwrap();
    let t2 = train(&c.refs(), &TrainConfig::default()).unwrap();
    assert_eq!(t1.stats, t2.stats);
    assert_eq!(
        encode_grammar(t1.expanded()),
        encode_grammar(t2.expanded()),
        "expanded grammars must be byte-identical"
    );
}

#[test]
fn compression_is_bit_identical_across_runs() {
    let c = corpus(CorpusName::Gzip);
    let trained = train(&c.refs(), &TrainConfig::default()).unwrap();
    for p in &c.programs {
        let (cp1, s1) = trained.compress(p).unwrap();
        let (cp2, s2) = trained.compress(p).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(cp1.program, cp2.program);
    }
}

#[test]
fn superoperator_training_is_deterministic() {
    let c = corpus(CorpusName::Gzip);
    let s1 = pgr::baselines::superop::train(&c.refs(), 256);
    let s2 = pgr::baselines::superop::train(&c.refs(), 256);
    assert_eq!(s1.pairs, s2.pairs);
}
