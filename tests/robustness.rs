//! Fuzz-style robustness: every decoder in the system must reject
//! arbitrary garbage with an error, never a panic, and every
//! error-reporting path must stay total. The compressed interpreter in
//! particular must survive corrupted derivation streams (a ROM bit-flip
//! in the §1 scenario) with a clean `CorruptDerivation`.

use pgr::bytecode::{binfmt, decode};
use pgr::core::{train, TrainConfig};
use pgr::grammar::encode::decode_grammar;
use pgr::grammar::{Derivation, InitialGrammar};
use pgr::vm::{Vm, VmConfig, VmError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn instruction_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        for insn in decode(&bytes) {
            if insn.is_err() {
                break;
            }
        }
    }

    #[test]
    fn image_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = binfmt::read_program(&bytes);
    }

    #[test]
    fn image_reader_survives_mutation(flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8)) {
        // v2 images checksum their whole payload and frame every
        // section, so there is no byte whose corruption parses
        // silently: either the flips cancel out (XOR with zero, or a
        // self-inverse pair) and the image is byte-identical, or the
        // reader MUST reject it.
        let program = pgr::minic::compile("int main(void) { return 1; }").unwrap();
        let original = binfmt::write_program(&program, binfmt::ImageKind::Uncompressed);
        let mut bytes = original.clone();
        for (idx, val) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= val;
        }
        match binfmt::read_program(&bytes) {
            Ok(_) => prop_assert!(bytes == original, "a mutated image parsed silently"),
            Err(_) => prop_assert!(bytes != original, "a pristine image was rejected"),
        }
    }

    #[test]
    fn grammar_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_grammar(&bytes);
    }

    #[test]
    fn derivation_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..100)) {
        let ig = InitialGrammar::build();
        let _ = Derivation::from_bytes(&ig.grammar, ig.nt_start, &bytes);
    }

    #[test]
    fn validator_never_panics_on_garbage_code(bytes in prop::collection::vec(any::<u8>(), 0..120)) {
        let mut program = pgr::bytecode::Program::new();
        let mut proc = pgr::bytecode::Procedure::new("fuzz");
        proc.code = bytes;
        program.procs.push(proc);
        let _ = pgr::bytecode::validate_program(&program);
    }

    #[test]
    fn interp1_never_panics_on_garbage_code(bytes in prop::collection::vec(any::<u8>(), 1..120)) {
        let mut program = pgr::bytecode::Program::new();
        let mut proc = pgr::bytecode::Procedure::new("fuzz");
        proc.code = bytes;
        proc.frame_size = 64;
        program.procs.push(proc);
        let mut vm = Vm::new(&program, VmConfig {
            fuel: 50_000,
            ..VmConfig::default()
        }).unwrap();
        let _ = vm.run(); // must terminate with Ok or a clean error
    }
}

#[test]
fn corrupted_derivation_streams_error_cleanly() {
    let program = pgr::minic::compile(
        "int main(void) { int i; for (i = 0; i < 4; i++) putint(i); return i; }",
    )
    .unwrap();
    let trained = train(&[&program], &TrainConfig::default()).unwrap();
    let (compressed, _) = trained.compress(&program).unwrap();
    let ig = trained.initial();

    let baseline = {
        let mut vm = Vm::new_compressed(
            &compressed.program,
            trained.expanded(),
            ig.nt_start,
            ig.nt_byte,
            VmConfig::default(),
        )
        .unwrap();
        vm.run().unwrap()
    };

    // Flip every single byte of the compressed stream in turn; the VM
    // must either still produce *some* clean result or report a clean
    // error — never panic, never run forever — and the fast path must
    // reach the identical outcome as the reference walker.
    let code_len = compressed.program.procs[0].code.len();
    let mut clean_errors = 0;
    for i in 0..code_len {
        let mut mutated = compressed.clone();
        mutated.program.procs[0].code[i] ^= 0x55;
        let run_with = |reference_walker: bool| {
            let mut vm = Vm::new_compressed(
                &mutated.program,
                trained.expanded(),
                ig.nt_start,
                ig.nt_byte,
                VmConfig {
                    fuel: 1_000_000,
                    reference_walker,
                    ..VmConfig::default()
                },
            )
            .unwrap();
            vm.run()
        };
        let reference = run_with(true);
        let fast = run_with(false);
        assert_eq!(fast, reference, "byte {i}: interpreter paths diverged");
        match fast {
            Ok(_) => {}
            Err(
                VmError::CorruptDerivation { .. }
                | VmError::FellOffEnd { .. }
                | VmError::StackUnderflow { .. }
                | VmError::BadAddress { .. }
                | VmError::BadLabel { .. }
                | VmError::BadGlobal { .. }
                | VmError::BadDescriptor { .. }
                | VmError::BadCallTarget { .. }
                | VmError::DivideByZero { .. }
                | VmError::OutOfFuel
                | VmError::CallDepthExceeded { .. }
                | VmError::ArgUnderflow { .. },
            ) => clean_errors += 1,
            Err(other) => panic!("byte {i}: unexpected error class {other}"),
        }
    }
    assert!(clean_errors > 0, "some corruption must be detected");
    let _ = baseline;
}

#[test]
fn truncated_compressed_streams_error_cleanly() {
    let program = pgr::minic::compile("int main(void) { return 42; }").unwrap();
    let trained = train(&[&program], &TrainConfig::default()).unwrap();
    let (compressed, _) = trained.compress(&program).unwrap();
    let ig = trained.initial();
    let full = compressed.program.procs[0].code.clone();
    for cut in 0..full.len() {
        let mut mutated = compressed.clone();
        mutated.program.procs[0].code.truncate(cut);
        mutated.program.procs[0].labels.iter_mut().for_each(|l| {
            *l = (*l).min(cut as u32);
        });
        let mut vm = Vm::new_compressed(
            &mutated.program,
            trained.expanded(),
            ig.nt_start,
            ig.nt_byte,
            VmConfig {
                fuel: 1_000_000,
                ..VmConfig::default()
            },
        )
        .unwrap();
        // Truncation is not always fatal — a prefix can legitimately
        // execute a return before running off the end — but it must
        // terminate cleanly either way, and a run that completes must
        // have taken a return path (no garbage results).
        if let Ok(result) = vm.run() {
            assert!(result.exit_code.is_none(), "cut at {cut}")
        }
    }
}
