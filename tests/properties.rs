//! Property tests over randomly generated programs: the pipeline's
//! invariants must hold for *every* program the compiler can emit, not
//! just the hand-picked samples.

use pgr::bytecode::validate_program;
use pgr::core::{canonicalize_program, train, TrainConfig};
use pgr::corpus::synth::{generate_source, Flavor, SynthConfig};
use pgr::earley::ShortestParser;
use pgr::grammar::initial::tokenize_segment;
use pgr::vm::{Vm, VmConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        any::<u64>(),
        1usize..6,
        prop_oneof![Just(Flavor::Compiler), Just(Flavor::Numeric)],
    )
        .prop_map(|(seed, functions, flavor)| SynthConfig {
            seed,
            functions,
            flavor,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated program compiles, validates, and every segment of
    /// its code is in the initial grammar's language (Earley agrees with
    /// the deterministic stack parser).
    #[test]
    fn generated_programs_are_in_the_language(config in arb_config()) {
        let source = generate_source(&config);
        let program = pgr::minic::compile(&source).expect("generator emits valid mini-C");
        validate_program(&program).expect("generator emits valid bytecode");

        let ig = pgr::grammar::InitialGrammar::build();
        let parser = ShortestParser::new(&ig.grammar);
        for proc in &program.procs {
            for range in proc.segments().unwrap() {
                let tokens = tokenize_segment(&proc.code[range.clone()]).unwrap();
                let d = parser.parse(ig.nt_start, &tokens).unwrap_or_else(|e| {
                    panic!("{}: segment {range:?} not in language: {e}", proc.name)
                });
                prop_assert_eq!(d.expand(&ig.grammar, ig.nt_start).unwrap(), tokens);
            }
        }
    }

    /// Self-training then compressing round-trips exactly and shrinks.
    #[test]
    fn compression_roundtrips_on_generated_programs(config in arb_config()) {
        let source = generate_source(&config);
        let program = pgr::minic::compile(&source).expect("valid mini-C");
        let trained = train(&[&program], &TrainConfig::default()).unwrap();
        let (compressed, stats) = trained.compress(&program).unwrap();
        let back = trained.decompress(&compressed).unwrap();
        prop_assert_eq!(back, canonicalize_program(&program).unwrap());
        // Self-compression shrinks once a program has any repetition;
        // tiny one-function programs may stay flat but must never grow
        // beyond the parse-tree bound.
        prop_assert!(stats.compressed_code <= stats.original_code * 3);
    }

    /// Compressed execution is behaviourally identical to uncompressed
    /// execution (or both fail to finish within the same small budget).
    #[test]
    fn execution_is_equivalent_on_generated_programs(config in arb_config()) {
        let source = generate_source(&config);
        let program = pgr::minic::compile(&source).expect("valid mini-C");
        let fuel = 3_000_000;
        let cfg = VmConfig { fuel, ..VmConfig::default() };

        let plain = Vm::new(&program, cfg.clone()).unwrap().run();
        let Ok(plain) = plain else {
            // Generated programs are bounded, but a tiny budget may trip:
            // skip instead of comparing divergent truncations (the two
            // interpreters meter fuel differently).
            return Ok(());
        };

        let trained = train(&[&program], &TrainConfig::default()).unwrap();
        let (compressed, _) = trained.compress(&program).unwrap();
        let ig = trained.initial();
        // The compressed interpreter also burns fuel on rule steps, so
        // give it proportional head-room.
        let ccfg = VmConfig { fuel: fuel * 8, ..VmConfig::default() };
        let direct = Vm::new_compressed(
            &compressed.program,
            trained.expanded(),
            ig.nt_start,
            ig.nt_byte,
            ccfg,
        )
        .unwrap()
        .run()
        .expect("compressed run completes within proportional budget");

        prop_assert_eq!(plain.output, direct.output);
        prop_assert_eq!(plain.ret, direct.ret);
        prop_assert_eq!(plain.exit_code, direct.exit_code);
    }

    /// A starvation-level Earley budget must never break correctness:
    /// every segment the parser cannot afford degrades to a verbatim
    /// escape, the image round-trips byte-identically, and all three
    /// interpreter paths execute it exactly like the uncompressed
    /// program. Strict mode (`--no-fallback`) instead names the failing
    /// segment's procedure and offset.
    #[test]
    fn tiny_budgets_degrade_to_verbatim_and_roundtrip(config in arb_config()) {
        use pgr::core::{CompressError, Compressor, CompressorConfig, EarleyBudget, NoParse};

        let source = generate_source(&config);
        let program = pgr::minic::compile(&source).expect("valid mini-C");
        let canonical = canonicalize_program(&program).unwrap();
        let trained = train(&[&program], &TrainConfig::default()).unwrap();
        let ig = trained.initial();
        let budget = EarleyBudget::UNLIMITED.max_items(2);

        let engine = Compressor::with_config(
            trained.expanded(),
            ig.nt_start,
            CompressorConfig::default().earley_budget(budget),
        );
        let (compressed, stats) = engine.compress(&program).unwrap();
        prop_assert!(stats.fallback_segments >= 1, "a two-item budget must starve some parse");

        let back = pgr::core::compress::decompress_program(
            trained.expanded(),
            ig.nt_start,
            &compressed,
        )
        .unwrap();
        prop_assert!(back == canonical, "verbatim fallback broke the round-trip");

        // Behavioural equivalence on every interpreter path.
        let fuel = 3_000_000;
        if let Ok(plain) = Vm::new(&program, VmConfig { fuel, ..VmConfig::default() }).unwrap().run() {
            let variants = [
                ("fast path", VmConfig { fuel: fuel * 8, ..VmConfig::default() }),
                ("fast path, cache off", VmConfig { fuel: fuel * 8, segment_cache_entries: 0, ..VmConfig::default() }),
                ("reference walker", VmConfig { fuel: fuel * 8, reference_walker: true, ..VmConfig::default() }),
            ];
            for (label, ccfg) in variants {
                let got = Vm::new_compressed(
                    &compressed.program,
                    trained.expanded(),
                    ig.nt_start,
                    ig.nt_byte,
                    ccfg,
                )
                .unwrap()
                .run()
                .expect("escaped image runs within proportional budget");
                prop_assert!(plain.output == got.output, "{}: output diverged", label);
                prop_assert!(plain.ret == got.ret, "{}: return value diverged", label);
                prop_assert!(plain.exit_code == got.exit_code, "{}: exit code diverged", label);
            }
        }

        // Strict mode: the same budget is a structured error naming the
        // first failing segment.
        let strict = Compressor::with_config(
            trained.expanded(),
            ig.nt_start,
            CompressorConfig::default().earley_budget(budget).fallback(false),
        );
        match strict.compress(&program).unwrap_err() {
            CompressError::NoParse { proc, segment_offset, error } => {
                prop_assert!(matches!(error, NoParse::BudgetExceeded { .. }),
                             "strict failure should carry the budget error, got {:?}", error);
                let failing = canonical.procs.iter().find(|p| p.name == proc);
                prop_assert!(failing.is_some(), "reported proc {:?} is not in the program", proc);
                prop_assert!(segment_offset < failing.unwrap().code.len(),
                             "segment offset {} out of range", segment_offset);
            }
            other => panic!("wanted NoParse, got {other:?}"),
        }
    }
}
