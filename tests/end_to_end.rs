//! Cross-crate integration: the full paper pipeline over the real sample
//! programs — compile → validate → train → compress → decompress →
//! execute both representations.

use pgr::bytecode::validate_program;
use pgr::core::{canonicalize_program, train, TrainConfig};
use pgr::corpus::{compile_sample, corpus, CorpusName, SAMPLES};
use pgr::vm::{Vm, VmConfig};

/// Compression round-trips exactly on every sample program.
#[test]
fn samples_compress_and_decompress_exactly() {
    let programs: Vec<_> = SAMPLES.iter().map(|(n, _)| compile_sample(n)).collect();
    let refs: Vec<_> = programs.iter().collect();
    let trained = train(&refs, &TrainConfig::default()).unwrap();
    for (program, (name, _)) in programs.iter().zip(SAMPLES) {
        let (compressed, stats) = trained.compress(program).unwrap();
        assert!(
            stats.compressed_code < stats.original_code,
            "{name}: {} -> {}",
            stats.original_code,
            stats.compressed_code
        );
        let back = trained.decompress(&compressed).unwrap();
        assert_eq!(back, canonicalize_program(program).unwrap(), "{name}");
        validate_program(&back).unwrap();
    }
}

/// Compressed execution equals uncompressed execution on fast samples.
#[test]
fn samples_run_identically_compressed() {
    for name in ["8q", "calc", "fmt", "sort"] {
        let program = compile_sample(name);
        let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
        let plain = vm.run().unwrap_or_else(|e| panic!("{name}: {e}"));

        let trained = train(&[&program], &TrainConfig::default()).unwrap();
        let (compressed, _) = trained.compress(&program).unwrap();
        let ig = trained.initial();
        let mut cvm = Vm::new_compressed(
            &compressed.program,
            trained.expanded(),
            ig.nt_start,
            ig.nt_byte,
            VmConfig::default(),
        )
        .unwrap();
        let direct = cvm
            .run()
            .unwrap_or_else(|e| panic!("{name} compressed: {e}"));
        assert_eq!(plain.output, direct.output, "{name}");
        assert_eq!(plain.ret, direct.ret, "{name}");
        assert_eq!(plain.exit_code, direct.exit_code, "{name}");
    }
}

/// A grammar trained on one corpus compresses a *different* corpus (the
/// cross-training column of Table 1), and self-training is at least as
/// good on the big corpora.
#[test]
fn cross_training_orders_as_in_table_1() {
    let gzip = corpus(CorpusName::Gzip);
    let eightq = corpus(CorpusName::EightQ);
    let trained_gzip = train(&gzip.refs(), &TrainConfig::default()).unwrap();
    let trained_8q = train(&eightq.refs(), &TrainConfig::default()).unwrap();

    let measure = |trained: &pgr::core::Trained, c: &pgr::corpus::Corpus| {
        let mut orig = 0;
        let mut comp = 0;
        for p in &c.programs {
            let (_, s) = trained.compress(p).unwrap();
            orig += s.original_code;
            comp += s.compressed_code;
        }
        comp as f64 / orig as f64
    };

    let gzip_self = measure(&trained_gzip, &gzip);
    let gzip_cross = measure(&trained_8q, &gzip);
    let q_self = measure(&trained_8q, &eightq);
    let q_cross = measure(&trained_gzip, &eightq);

    assert!(gzip_self < gzip_cross, "{gzip_self} vs {gzip_cross}");
    assert!(q_self < q_cross, "{q_self} vs {q_cross}");
    // Everything still beats no compression.
    assert!(gzip_cross < 1.0);
    assert!(q_cross < 1.0);
}

/// The compressed label tables support branching: a branchy program
/// (calc, with switches and loops) must execute correctly compressed
/// under a *foreign* grammar too.
#[test]
fn foreign_grammar_execution_is_correct() {
    let gzip = corpus(CorpusName::Gzip);
    let trained = train(&gzip.refs(), &TrainConfig::default()).unwrap();
    let program = compile_sample("calc");

    let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
    let plain = vm.run().unwrap();

    let (compressed, _) = trained.compress(&program).unwrap();
    let ig = trained.initial();
    let mut cvm = Vm::new_compressed(
        &compressed.program,
        trained.expanded(),
        ig.nt_start,
        ig.nt_byte,
        VmConfig::default(),
    )
    .unwrap();
    let direct = cvm.run().unwrap();
    assert_eq!(plain.output, direct.output);
}

/// Training on the empty corpus yields the initial grammar: compression
/// under it *expands* (one byte per parse step), the paper's baseline
/// observation that the initial grammar is not a code.
#[test]
fn untrained_grammar_expands_programs() {
    let trained = train(&[], &TrainConfig::default()).unwrap();
    assert_eq!(trained.stats.rules_added, 0);
    let program = compile_sample("8q");
    let (_, stats) = trained.compress(&program).unwrap();
    assert!(stats.compressed_code > stats.original_code);
}
