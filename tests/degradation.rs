//! Graceful-degradation tests, driven by the deterministic
//! fault-injection layer (`pgr::telemetry::faults`).
//!
//! Each test installs a [`FaultPlan`] and holds its guard for the whole
//! body: installation is serialized process-wide, so tests in this
//! binary never observe each other's faults. The plans use `Nth` (trip
//! one exact occurrence) or `Seeded` (replayable from the seed), so
//! every failure here reproduces byte-for-byte.

use pgr::bytecode::{binfmt, read_program, write_program, ImageKind};
use pgr::core::compress::decompress_program;
use pgr::core::{train, CompressError, Compressor, CompressorConfig, DecompressError, TrainConfig};
use pgr::telemetry::faults::{self, FaultMode, FaultPlan, FaultPoint};
use pgr::telemetry::{names, Recorder};
use pgr::vm::{Vm, VmConfig};

const SRC: &str = "int main(void) { int i; for (i = 0; i < 6; i++) putint(i * i); return i; }";

/// Train on the sample and hand back everything the tests need.
fn trained_sample() -> (pgr::bytecode::Program, pgr::core::Trained) {
    let program = pgr::minic::compile(SRC).unwrap();
    let trained = train(&[&program], &TrainConfig::default()).unwrap();
    (program, trained)
}

/// Run a compressed image on the fast path, the cache-off fast path,
/// and the reference walker; assert all three match the plain
/// interpreter's behaviour.
fn assert_runs_identically(
    program: &pgr::bytecode::Program,
    cp: &pgr::core::CompressedProgram,
    trained: &pgr::core::Trained,
) {
    let plain = Vm::new(program, VmConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let ig = trained.initial();
    let variants = [
        ("fast path", VmConfig::default()),
        (
            "fast path, cache off",
            VmConfig {
                segment_cache_entries: 0,
                ..VmConfig::default()
            },
        ),
        (
            "reference walker",
            VmConfig {
                reference_walker: true,
                ..VmConfig::default()
            },
        ),
    ];
    for (label, config) in variants {
        let got = Vm::new_compressed(
            &cp.program,
            trained.expanded(),
            ig.nt_start,
            ig.nt_byte,
            config,
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(plain.output, got.output, "{label}: output diverged");
        assert_eq!(plain.ret, got.ret, "{label}: return value diverged");
        assert_eq!(
            plain.exit_code, got.exit_code,
            "{label}: exit code diverged"
        );
    }
}

#[test]
fn an_empty_plan_faults_nothing() {
    // Holding the gate with an all-Never plan: the full pipeline runs
    // exactly as in production.
    let _guard = faults::install(FaultPlan::new());
    for point in FaultPoint::ALL {
        assert!(!faults::fire(point));
    }
    let (program, trained) = trained_sample();
    let (cp, stats) = trained.compress(&program).unwrap();
    assert_eq!(stats.fallback_segments, 0);
    let ig = trained.initial();
    let back = decompress_program(trained.expanded(), ig.nt_start, &cp).unwrap();
    let bytes = write_program(&back, ImageKind::Uncompressed);
    assert!(read_program(&bytes).is_ok());
}

#[test]
fn injected_image_reads_fail_once_then_recover() {
    let program = pgr::minic::compile("int main(void) { return 3; }").unwrap();
    let bytes = write_program(&program, ImageKind::Uncompressed);
    let _guard = faults::install(FaultPlan::new().with(FaultPoint::ImageRead, FaultMode::Nth(1)));
    assert!(matches!(
        read_program(&bytes),
        Err(binfmt::BinError::Injected)
    ));
    // The fault tripped exactly once; the same bytes now parse.
    let (back, kind) = read_program(&bytes).unwrap();
    assert_eq!(kind, ImageKind::Uncompressed);
    assert_eq!(back, program);
    assert_eq!(faults::fired(FaultPoint::ImageRead), 1);
}

#[test]
fn injected_parse_failures_degrade_to_verbatim_and_run_identically() {
    let (program, trained) = trained_sample();
    let ig = trained.initial();
    let _guard = faults::install(FaultPlan::new().with(FaultPoint::Parse, FaultMode::Nth(1)));

    let recorder = Recorder::new();
    let engine = Compressor::with_recorder(
        trained.expanded(),
        ig.nt_start,
        CompressorConfig::default().threads(1),
        recorder.clone(),
    );
    let (cp, stats) = engine.compress(&program).unwrap();
    assert!(
        stats.fallback_segments >= 1,
        "the injected NoParse must fall back"
    );

    // The degraded image still decompresses to the canonical program…
    let clean = trained.compress(&program).map(|(cp, _)| cp).unwrap();
    let back = decompress_program(trained.expanded(), ig.nt_start, &cp).unwrap();
    let clean_back = decompress_program(trained.expanded(), ig.nt_start, &clean).unwrap();
    assert_eq!(
        back, clean_back,
        "fallback changed the decompressed program"
    );

    // …and executes identically on every interpreter path.
    assert_runs_identically(&program, &cp, &trained);

    // The hardening counters are pinned in the metrics schema: present
    // even when zero, counted when tripped.
    let m = recorder.snapshot();
    assert_eq!(
        m.counter(names::COMPRESS_FALLBACK_SEGMENTS),
        stats.fallback_segments as u64
    );
    assert!(m.counters().contains_key(names::COMPRESS_CACHE_POISONED));
    assert!(m.counters().contains_key(names::EARLEY_BUDGET_EXCEEDED));
}

#[test]
fn strict_mode_reports_the_failing_segment() {
    let (program, trained) = trained_sample();
    let ig = trained.initial();
    let _guard = faults::install(FaultPlan::new().with(FaultPoint::Parse, FaultMode::Nth(1)));
    let engine = Compressor::with_config(
        trained.expanded(),
        ig.nt_start,
        CompressorConfig::default().threads(1).fallback(false),
    );
    match engine.compress(&program).unwrap_err() {
        CompressError::NoParse {
            proc,
            segment_offset,
            ..
        } => {
            assert!(
                program.procs.iter().any(|p| p.name == proc),
                "reported proc {proc:?} is not in the program"
            );
            let failing = program.procs.iter().find(|p| p.name == proc).unwrap();
            assert!(
                segment_offset < failing.code.len().max(1),
                "segment offset {segment_offset} out of range"
            );
        }
        other => panic!("wanted NoParse, got {other:?}"),
    }
}

#[test]
fn injected_cache_panics_are_isolated_and_the_engine_recovers() {
    let (program, trained) = trained_sample();
    let ig = trained.initial();
    let _guard = faults::install(FaultPlan::new().with(FaultPoint::CacheLock, FaultMode::Nth(1)));
    let engine = Compressor::with_config(
        trained.expanded(),
        ig.nt_start,
        CompressorConfig::default().threads(1),
    );
    // The injected panic fires inside an encoder worker while it holds
    // the derivation-cache lock; isolation turns it into a structured
    // error instead of tearing the process down.
    match engine.compress(&program).unwrap_err() {
        CompressError::WorkerPanic { message, .. } => {
            assert!(
                message.contains("injected"),
                "unexpected payload: {message}"
            )
        }
        other => panic!("wanted WorkerPanic, got {other:?}"),
    }
    // The same engine stays usable: the poisoned cache is cleared and
    // counted, and the next compression round-trips.
    let (cp, _) = engine.compress(&program).unwrap();
    assert!(engine.cache_poisonings() >= 1, "poison recovery never ran");
    let back = decompress_program(trained.expanded(), ig.nt_start, &cp).unwrap();
    let rt = trained.compress(&back).map(|(cp2, _)| cp2);
    assert!(rt.is_ok(), "recovered engine produced a bad image");
    assert_runs_identically(&program, &cp, &trained);
}

#[test]
fn injected_decode_failures_surface_cleanly_then_recover() {
    let (program, trained) = trained_sample();
    let ig = trained.initial();
    let (cp, _) = trained.compress(&program).unwrap();
    let _guard = faults::install(FaultPlan::new().with(FaultPoint::Decode, FaultMode::Nth(1)));
    assert!(matches!(
        decompress_program(trained.expanded(), ig.nt_start, &cp),
        Err(DecompressError::Injected { .. })
    ));
    assert!(decompress_program(trained.expanded(), ig.nt_start, &cp).is_ok());
}

#[test]
fn seeded_fault_plans_replay_identically() {
    let (program, trained) = trained_sample();
    let ig = trained.initial();
    let run = |seed: u64| {
        let _guard = faults::install(FaultPlan::new().with(
            FaultPoint::Parse,
            FaultMode::Seeded {
                seed,
                rate_per_1024: 512,
            },
        ));
        let engine = Compressor::with_config(
            trained.expanded(),
            ig.nt_start,
            CompressorConfig::default().threads(1),
        );
        let (cp, stats) = engine.compress(&program).unwrap();
        (cp.program.procs[0].code.clone(), stats.fallback_segments)
    };
    let (code_a, fallbacks_a) = run(0xDEC0DE);
    let (code_b, fallbacks_b) = run(0xDEC0DE);
    assert_eq!(code_a, code_b, "same seed produced different images");
    assert_eq!(fallbacks_a, fallbacks_b);
}
