//! Cooperative cancellation: a shared deadline + cancelled flag that
//! long-running work checks at its natural batch boundaries.
//!
//! The serving path admits requests whose work is bounded only by the
//! Earley budget and the VM fuel tank — both of which can be seconds of
//! wall clock on an adversarial input. A [`CancelToken`] is the
//! lightweight contract between the request's owner (the serve reactor,
//! which knows the deadline) and the compute layers (Earley chart
//! construction, segment encoding, VM fuel replay), which poll it at
//! coarse boundaries: chart columns, segment starts, fuel-batch refills.
//!
//! The design constraints mirror the rest of this crate:
//!
//! 1. **One relaxed load when unarmed.** A token with no deadline and no
//!    cancel request costs a single `AtomicBool` load per check, so the
//!    offline CLI pipeline (which never arms one) pays nothing
//!    measurable.
//! 2. **No clock reads unless armed.** `Instant::now()` is only touched
//!    once a deadline exists, and only at the coarse check points.
//! 3. **Clone-to-share.** The token is an `Arc` handle: the reactor
//!    keeps one clone to force-cancel from the event thread while the
//!    worker's clone rides through the engine layers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Sentinel meaning "no deadline" in [`Inner::deadline_micros`].
const NO_DEADLINE: u64 = u64::MAX;

#[derive(Debug)]
struct Inner {
    /// True once a deadline is set or a cancel is requested; the
    /// fast-path gate for [`CancelToken::is_cancelled`].
    armed: AtomicBool,
    /// Explicit cancellation (the watchdog's lever), independent of the
    /// deadline.
    cancelled: AtomicBool,
    /// Deadline as microseconds after `base`; [`NO_DEADLINE`] when none.
    deadline_micros: AtomicU64,
    /// The token's birth instant; deadlines and `elapsed_ms` are both
    /// measured from here.
    base: Instant,
}

/// A cloneable cancellation handle carrying an optional deadline.
///
/// Checking is cheap and monotonic: once [`CancelToken::is_cancelled`]
/// returns true it stays true (the deadline never moves backwards and
/// the cancelled flag is never cleared).
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh, unarmed token: never cancelled until someone arms it.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                armed: AtomicBool::new(false),
                cancelled: AtomicBool::new(false),
                deadline_micros: AtomicU64::new(NO_DEADLINE),
                base: Instant::now(),
            }),
        }
    }

    /// A fresh token that expires `deadline` from now.
    pub fn with_deadline(deadline: Duration) -> CancelToken {
        let token = CancelToken::new();
        token.set_deadline(deadline);
        token
    }

    /// A shared token that is never cancelled — the default threaded
    /// through paths with no serving deadline. Cloning it is one atomic
    /// increment; no per-call allocation.
    pub fn never() -> CancelToken {
        static NEVER: OnceLock<CancelToken> = OnceLock::new();
        NEVER.get_or_init(CancelToken::new).clone()
    }

    /// Arm (or tighten) the deadline to `deadline` from now. A later
    /// deadline than the current one is ignored: deadlines only shrink.
    pub fn set_deadline(&self, deadline: Duration) {
        let micros = u64::try_from(self.inner.base.elapsed().as_micros())
            .unwrap_or(u64::MAX - 1)
            .saturating_add(u64::try_from(deadline.as_micros()).unwrap_or(u64::MAX - 1));
        self.inner
            .deadline_micros
            .fetch_min(micros, Ordering::Relaxed);
        self.inner.armed.store(true, Ordering::Release);
    }

    /// Request cancellation now, regardless of any deadline.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
        self.inner.armed.store(true, Ordering::Release);
    }

    /// Whether the work should stop: explicitly cancelled, or past the
    /// deadline. One relaxed load when the token was never armed.
    pub fn is_cancelled(&self) -> bool {
        if !self.inner.armed.load(Ordering::Acquire) {
            return false;
        }
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        let deadline = self.inner.deadline_micros.load(Ordering::Relaxed);
        deadline != NO_DEADLINE
            && u64::try_from(self.inner.base.elapsed().as_micros()).unwrap_or(u64::MAX) >= deadline
    }

    /// Time left before the deadline (`None` when no deadline is set;
    /// zero once expired or cancelled).
    pub fn remaining(&self) -> Option<Duration> {
        let deadline = self.inner.deadline_micros.load(Ordering::Relaxed);
        if deadline == NO_DEADLINE {
            return None;
        }
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Some(Duration::ZERO);
        }
        let elapsed = u64::try_from(self.inner.base.elapsed().as_micros()).unwrap_or(u64::MAX);
        Some(Duration::from_micros(deadline.saturating_sub(elapsed)))
    }

    /// Milliseconds since the token was created — the `elapsed_ms`
    /// reported by structured `Cancelled` errors.
    pub fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.inner.base.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_token_never_cancels() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn explicit_cancel_fires_across_clones() {
        let t = CancelToken::new();
        let worker = t.clone();
        assert!(!worker.is_cancelled());
        t.cancel();
        assert!(worker.is_cancelled());
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::with_deadline(Duration::from_micros(1));
        std::thread::sleep(Duration::from_millis(2));
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_does_not_fire_early() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        let left = t.remaining().expect("deadline set");
        assert!(left > Duration::from_secs(3000), "remaining {left:?}");
    }

    #[test]
    fn deadlines_only_tighten() {
        let t = CancelToken::with_deadline(Duration::from_micros(1));
        t.set_deadline(Duration::from_secs(3600));
        std::thread::sleep(Duration::from_millis(2));
        assert!(t.is_cancelled(), "later deadline must not loosen");
    }

    #[test]
    fn never_token_is_shared_and_inert() {
        let a = CancelToken::never();
        let b = CancelToken::never();
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
        assert!(!a.is_cancelled());
    }

    #[test]
    fn elapsed_ms_advances() {
        let t = CancelToken::new();
        std::thread::sleep(Duration::from_millis(2));
        assert!(t.elapsed_ms() >= 1);
    }
}
