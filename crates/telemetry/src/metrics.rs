//! The metrics registry value type and its monoid merge.

use std::collections::BTreeMap;
use std::time::Duration;

/// A compact histogram summary: count / sum / min / max. Used both for
/// explicitly observed distributions and for span durations (in
/// nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hist {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Hist {
    /// A histogram holding a single observation.
    pub fn single(value: u64) -> Hist {
        Hist {
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }

    /// Fold one more observation in.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merge two summaries (componentwise; commutative and associative).
    pub fn merge(self, other: Hist) -> Hist {
        Hist {
            count: self.count + other.count,
            sum: self.sum.saturating_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A batch of named metrics: counters, gauges, histograms, and span
/// timings.
///
/// `Metrics` is both the registry snapshot handed to [`Sink`]s and the
/// unit of batched recording: hot loops accumulate into a local
/// `Metrics` (or plain locals) and merge it into the shared
/// [`Recorder`] once per unit of work.
///
/// Merging is a **commutative monoid** with [`Metrics::default`] as the
/// identity — counters add, gauges keep the maximum (high-water-mark
/// semantics), histograms and spans component-merge — so fold order
/// never affects totals. The engine's scoped-thread fan-out depends on
/// this; `tests/engine.rs` property-tests it.
///
/// [`Sink`]: crate::Sink
/// [`Recorder`]: crate::Recorder
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, Hist>,
    spans: BTreeMap<String, Hist>,
}

impl Metrics {
    /// An empty batch (the merge identity).
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.spans.is_empty()
    }

    /// Add `n` to the counter `name` (creating it at 0 first, so a
    /// recorded-but-zero counter still appears in reports).
    pub fn add(&mut self, name: impl Into<String>, n: u64) {
        *self.counters.entry(name.into()).or_insert(0) += n;
    }

    /// Raise the gauge `name` to at least `value` (high-water mark).
    pub fn gauge_max(&mut self, name: impl Into<String>, value: u64) {
        let slot = self.gauges.entry(name.into()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Fold `value` into the histogram `name`.
    pub fn observe(&mut self, name: impl Into<String>, value: u64) {
        self.hists
            .entry(name.into())
            .and_modify(|h| h.observe(value))
            .or_insert_with(|| Hist::single(value));
    }

    /// Fold one span duration into the timing summary at `path`.
    pub fn record_span(&mut self, path: impl Into<String>, duration: Duration) {
        let ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        self.spans
            .entry(path.into())
            .and_modify(|h| h.observe(ns))
            .or_insert_with(|| Hist::single(ns));
    }

    /// Absorb `other` into `self` (the in-place form of [`Metrics::merge`]).
    pub fn merge_from(&mut self, other: Metrics) {
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.gauges {
            let slot = self.gauges.entry(k).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (k, v) in other.hists {
            self.hists
                .entry(k)
                .and_modify(|h| *h = h.merge(v))
                .or_insert(v);
        }
        for (k, v) in other.spans {
            self.spans
                .entry(k)
                .and_modify(|h| *h = h.merge(v))
                .or_insert(v);
        }
    }

    /// Combine two batches (commutative, associative, `Default` is the
    /// identity).
    #[must_use]
    pub fn merge(mut self, other: Metrics) -> Metrics {
        self.merge_from(other);
        self
    }

    /// Value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a gauge, if recorded.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Histogram summary, if recorded.
    pub fn hist(&self, name: &str) -> Option<Hist> {
        self.hists.get(name).copied()
    }

    /// Span timing summary (durations in nanoseconds), if recorded.
    pub fn span_stat(&self, path: &str) -> Option<Hist> {
        self.spans.get(path).copied()
    }

    /// Total recorded duration of a span path (zero when absent).
    pub fn span_total(&self, path: &str) -> Duration {
        Duration::from_nanos(self.span_stat(path).map(|h| h.sum).unwrap_or(0))
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> &BTreeMap<String, u64> {
        &self.gauges
    }

    /// All histograms, sorted by name.
    pub fn hists(&self) -> &BTreeMap<String, Hist> {
        &self.hists
    }

    /// All span timings, sorted by path.
    pub fn spans(&self) -> &BTreeMap<String, Hist> {
        &self.spans
    }

    /// Render the batch as a stable JSON document (see
    /// [`crate::SCHEMA`]): objects keyed by metric name under
    /// `"counters"`, `"gauges"`, `"histograms"`, and `"spans"`, with
    /// deterministic (sorted) key order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n  \"schema\": ");
        push_json_str(&mut out, crate::SCHEMA);
        out.push_str(",\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            sep(&mut out, &mut first);
            push_json_str(&mut out, k);
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        out.push_str("\n  },\n  \"gauges\": {");
        let mut first = true;
        for (k, v) in &self.gauges {
            sep(&mut out, &mut first);
            push_json_str(&mut out, k);
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        out.push_str("\n  },\n  \"histograms\": {");
        let mut first = true;
        for (k, h) in &self.hists {
            sep(&mut out, &mut first);
            push_json_str(&mut out, k);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                h.count, h.sum, h.min, h.max
            ));
        }
        out.push_str("\n  },\n  \"spans\": {");
        let mut first = true;
        for (k, h) in &self.spans {
            sep(&mut out, &mut first);
            push_json_str(&mut out, k);
            out.push_str(&format!(
                ": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                h.count, h.sum, h.min, h.max
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Render the batch as an aligned human-readable table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.hists.keys())
            .chain(self.spans.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        if !self.spans.is_empty() {
            out.push_str("spans (total / count / mean):\n");
            for (k, h) in &self.spans {
                out.push_str(&format!(
                    "  {k:<width$}  {:>12?}  {:>8}  {:?}\n",
                    Duration::from_nanos(h.sum),
                    h.count,
                    Duration::from_nanos(h.mean() as u64),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<width$}  {v:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges (high-water marks):\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<width$}  {v:>12}\n"));
            }
        }
        if !self.hists.is_empty() {
            out.push_str("histograms (count / mean / min / max):\n");
            for (k, h) in &self.hists {
                out.push_str(&format!(
                    "  {k:<width$}  {:>8}  {:>10.1}  {:>8}  {:>8}\n",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
    out.push_str("\n    ");
}

/// Append `s` as a JSON string literal (quotes + escapes).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_gauges_max() {
        let mut a = Metrics::new();
        a.add("c", 2);
        a.gauge_max("g", 5);
        let mut b = Metrics::new();
        b.add("c", 3);
        b.gauge_max("g", 4);
        b.add("only_b", 0);
        let m = a.merge(b);
        assert_eq!(m.counter("c"), 5);
        assert_eq!(m.gauge("g"), Some(5));
        // A zero counter is still present (schema stability).
        assert!(m.counters().contains_key("only_b"));
        assert_eq!(m.counter("only_b"), 0);
    }

    #[test]
    fn merge_is_commutative_on_spot_checks() {
        let mut a = Metrics::new();
        a.observe("h", 10);
        a.record_span("s", Duration::from_nanos(50));
        let mut b = Metrics::new();
        b.observe("h", 2);
        b.record_span("s", Duration::from_nanos(7));
        assert_eq!(a.clone().merge(b.clone()), b.merge(a));
    }

    #[test]
    fn default_is_the_identity() {
        let mut a = Metrics::new();
        a.add("c", 9);
        a.gauge_max("g", 1);
        a.observe("h", 3);
        assert_eq!(a.clone().merge(Metrics::default()), a);
        assert_eq!(Metrics::default().merge(a.clone()), a);
    }

    #[test]
    fn json_is_parseable_and_complete() {
        let mut m = Metrics::new();
        m.add("earley.items_completed", 7);
        m.gauge_max("earley.chart_states_peak", 3);
        m.observe("seg.len", 11);
        m.record_span("compress.parse", Duration::from_micros(2));
        let doc = crate::json::parse(&m.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(crate::SCHEMA)
        );
        let counters = doc.get("counters").unwrap();
        assert_eq!(
            counters.get("earley.items_completed").unwrap().as_u64(),
            Some(7)
        );
        let span = doc.get("spans").unwrap().get("compress.parse").unwrap();
        assert_eq!(span.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(span.get("total_ns").unwrap().as_u64(), Some(2000));
    }

    #[test]
    fn table_rendering_mentions_every_name() {
        let mut m = Metrics::new();
        m.add("a.count", 1);
        m.gauge_max("b.peak", 2);
        m.record_span("c.phase", Duration::from_nanos(3));
        let table = m.render_table();
        for name in ["a.count", "b.peak", "c.phase"] {
            assert!(table.contains(name), "{table}");
        }
    }
}
