//! The metrics registry value type and its monoid merge.

use std::collections::BTreeMap;
use std::time::Duration;

/// Number of log2 buckets: one for zero, one per bit length 1..=64.
pub const HIST_BUCKETS: usize = 65;

/// A fixed log-bucketed histogram: count / sum / min / max plus 65
/// power-of-two buckets (one for zero, one per bit length), enough to
/// estimate any quantile to within its bucket. Used both for explicitly
/// observed distributions and for span durations (in nanoseconds).
///
/// `Hist::default()` is the merge identity (the `min` field holds a
/// `u64::MAX` sentinel until the first observation; [`Hist::min_or_zero`]
/// is the reporting form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hist {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` until anything is observed).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// `buckets[0]` counts zeros; `buckets[b]` counts values in
    /// `[2^(b-1), 2^b)` for `b` in 1..=64.
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    /// The empty histogram — the identity of [`Hist::merge`].
    fn default() -> Hist {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

/// The bucket index a value lands in: its bit length (0 for 0).
#[inline]
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive `[lo, hi]` value range covered by bucket `b`.
fn bucket_bounds(b: usize) -> (u64, u64) {
    match b {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (b - 1), (1 << b) - 1),
    }
}

impl Hist {
    /// A histogram holding a single observation.
    pub fn single(value: u64) -> Hist {
        let mut h = Hist::default();
        h.observe(value);
        h
    }

    /// Fold one more observation in.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// Merge two summaries (componentwise; commutative and associative,
    /// with [`Hist::default`] as the identity).
    pub fn merge(self, other: Hist) -> Hist {
        let mut buckets = self.buckets;
        for (slot, n) in buckets.iter_mut().zip(other.buckets) {
            *slot += n;
        }
        Hist {
            count: self.count + other.count,
            sum: self.sum.saturating_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            buckets,
        }
    }

    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The minimum as reported (0 when empty, hiding the sentinel).
    pub fn min_or_zero(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) of the observed
    /// distribution: rank-walk the buckets, linearly interpolate within
    /// the bucket holding the rank, clamp to `[min, max]`. The estimate
    /// always lands in the same power-of-two bucket as the exact
    /// quantile (property-tested in `tests/telemetry_quantiles.rs`).
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = bucket_bounds(b);
                // Position of the rank within this bucket, in [0, 1).
                let pos = (rank - seen - 1) as f64 / n as f64;
                let est = lo + ((hi - lo) as f64 * pos) as u64;
                return est.clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The raw bucket counts (zeros bucket first, then bit lengths).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }
}

/// A batch of named metrics: counters, gauges, histograms, and span
/// timings.
///
/// `Metrics` is both the registry snapshot handed to [`Sink`]s and the
/// unit of batched recording: hot loops accumulate into a local
/// `Metrics` (or plain locals) and merge it into the shared
/// [`Recorder`] once per unit of work.
///
/// Merging is a **commutative monoid** with [`Metrics::default`] as the
/// identity — counters add, gauges keep the maximum (high-water-mark
/// semantics), histograms and spans component-merge — so fold order
/// never affects totals. The engine's scoped-thread fan-out depends on
/// this; `tests/engine.rs` property-tests it.
///
/// [`Sink`]: crate::Sink
/// [`Recorder`]: crate::Recorder
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, Hist>,
    spans: BTreeMap<String, Hist>,
}

impl Metrics {
    /// An empty batch (the merge identity).
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.spans.is_empty()
    }

    /// Add `n` to the counter `name` (creating it at 0 first, so a
    /// recorded-but-zero counter still appears in reports).
    pub fn add(&mut self, name: impl Into<String>, n: u64) {
        *self.counters.entry(name.into()).or_insert(0) += n;
    }

    /// Raise the gauge `name` to at least `value` (high-water mark).
    pub fn gauge_max(&mut self, name: impl Into<String>, value: u64) {
        let slot = self.gauges.entry(name.into()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Fold `value` into the histogram `name`.
    pub fn observe(&mut self, name: impl Into<String>, value: u64) {
        self.hists.entry(name.into()).or_default().observe(value);
    }

    /// Ensure the histogram `name` exists (empty if new), so it appears
    /// in reports before its first observation. Serve pre-registers its
    /// per-op request histograms this way: `stats` always shows every
    /// op, quantiles and all, even before traffic arrives.
    pub fn ensure_hist(&mut self, name: impl Into<String>) {
        self.hists.entry(name.into()).or_default();
    }

    /// Fold one span duration into the timing summary at `path`.
    pub fn record_span(&mut self, path: impl Into<String>, duration: Duration) {
        let ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        self.spans.entry(path.into()).or_default().observe(ns);
    }

    /// Absorb `other` into `self` (the in-place form of [`Metrics::merge`]).
    pub fn merge_from(&mut self, other: Metrics) {
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.gauges {
            let slot = self.gauges.entry(k).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (k, v) in other.hists {
            let slot = self.hists.entry(k).or_default();
            *slot = slot.merge(v);
        }
        for (k, v) in other.spans {
            let slot = self.spans.entry(k).or_default();
            *slot = slot.merge(v);
        }
    }

    /// Combine two batches (commutative, associative, `Default` is the
    /// identity).
    #[must_use]
    pub fn merge(mut self, other: Metrics) -> Metrics {
        self.merge_from(other);
        self
    }

    /// Value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a gauge, if recorded.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Histogram summary, if recorded.
    pub fn hist(&self, name: &str) -> Option<Hist> {
        self.hists.get(name).copied()
    }

    /// Span timing summary (durations in nanoseconds), if recorded.
    pub fn span_stat(&self, path: &str) -> Option<Hist> {
        self.spans.get(path).copied()
    }

    /// Total recorded duration of a span path (zero when absent).
    pub fn span_total(&self, path: &str) -> Duration {
        Duration::from_nanos(self.span_stat(path).map(|h| h.sum).unwrap_or(0))
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> &BTreeMap<String, u64> {
        &self.gauges
    }

    /// All histograms, sorted by name.
    pub fn hists(&self) -> &BTreeMap<String, Hist> {
        &self.hists
    }

    /// All span timings, sorted by path.
    pub fn spans(&self) -> &BTreeMap<String, Hist> {
        &self.spans
    }

    /// Render the batch as a stable JSON document (see
    /// [`crate::SCHEMA`]): objects keyed by metric name under
    /// `"counters"`, `"gauges"`, `"histograms"`, and `"spans"`, with
    /// deterministic (sorted) key order. Histograms carry quantile
    /// estimates; span summaries keep the flat pre-quantile shape.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n  \"schema\": ");
        push_json_str(&mut out, crate::SCHEMA);
        out.push_str(",\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            sep(&mut out, &mut first);
            push_json_str(&mut out, k);
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        out.push_str("\n  },\n  \"gauges\": {");
        let mut first = true;
        for (k, v) in &self.gauges {
            sep(&mut out, &mut first);
            push_json_str(&mut out, k);
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        out.push_str("\n  },\n  \"histograms\": {");
        let mut first = true;
        for (k, h) in &self.hists {
            sep(&mut out, &mut first);
            push_json_str(&mut out, k);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p95\": {}, \"p99\": {}}}",
                h.count,
                h.sum,
                h.min_or_zero(),
                h.max,
                h.p50(),
                h.p90(),
                h.p95(),
                h.p99()
            ));
        }
        out.push_str("\n  },\n  \"spans\": {");
        let mut first = true;
        for (k, h) in &self.spans {
            sep(&mut out, &mut first);
            push_json_str(&mut out, k);
            out.push_str(&format!(
                ": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                h.count,
                h.sum,
                h.min_or_zero(),
                h.max
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Render the batch as an aligned human-readable table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.hists.keys())
            .chain(self.spans.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        if !self.spans.is_empty() {
            out.push_str("spans (total / count / mean):\n");
            for (k, h) in &self.spans {
                out.push_str(&format!(
                    "  {k:<width$}  {:>12?}  {:>8}  {:?}\n",
                    Duration::from_nanos(h.sum),
                    h.count,
                    Duration::from_nanos(h.mean() as u64),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<width$}  {v:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges (high-water marks):\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<width$}  {v:>12}\n"));
            }
        }
        if !self.hists.is_empty() {
            out.push_str("histograms (count / mean / min / p50 / p90 / p99 / max):\n");
            for (k, h) in &self.hists {
                out.push_str(&format!(
                    "  {k:<width$}  {:>8}  {:>10.1}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
                    h.count,
                    h.mean(),
                    h.min_or_zero(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
    out.push_str("\n    ");
}

/// Append `s` as a JSON string literal (quotes + escapes).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_gauges_max() {
        let mut a = Metrics::new();
        a.add("c", 2);
        a.gauge_max("g", 5);
        let mut b = Metrics::new();
        b.add("c", 3);
        b.gauge_max("g", 4);
        b.add("only_b", 0);
        let m = a.merge(b);
        assert_eq!(m.counter("c"), 5);
        assert_eq!(m.gauge("g"), Some(5));
        // A zero counter is still present (schema stability).
        assert!(m.counters().contains_key("only_b"));
        assert_eq!(m.counter("only_b"), 0);
    }

    #[test]
    fn merge_is_commutative_on_spot_checks() {
        let mut a = Metrics::new();
        a.observe("h", 10);
        a.record_span("s", Duration::from_nanos(50));
        let mut b = Metrics::new();
        b.observe("h", 2);
        b.record_span("s", Duration::from_nanos(7));
        assert_eq!(a.clone().merge(b.clone()), b.merge(a));
    }

    #[test]
    fn default_is_the_identity() {
        let mut a = Metrics::new();
        a.add("c", 9);
        a.gauge_max("g", 1);
        a.observe("h", 3);
        assert_eq!(a.clone().merge(Metrics::default()), a);
        assert_eq!(Metrics::default().merge(a.clone()), a);
    }

    #[test]
    fn buckets_cover_the_value_space() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert!(lo <= hi);
            assert_eq!(bucket_of(lo), b, "lower bound of bucket {b}");
            assert_eq!(bucket_of(hi), b, "upper bound of bucket {b}");
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let mut h = Hist::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        // Exact p50 is 50 (bucket [32,63]); estimate must land there.
        let p50 = h.p50();
        assert!((32..=63).contains(&p50), "p50 = {p50}");
        // Exact p99 is 99 (bucket [64,100 clamped]); estimate in [64,100].
        let p99 = h.p99();
        assert!((64..=100).contains(&p99), "p99 = {p99}");
        assert!(h.p50() <= h.p90() && h.p90() <= h.p99());
        // Degenerate distributions are exact.
        let single = Hist::single(42);
        assert_eq!(single.p50(), 42);
        assert_eq!(single.p99(), 42);
        assert_eq!(Hist::default().p50(), 0);
        assert_eq!(Hist::default().min_or_zero(), 0);
    }

    #[test]
    fn hist_merge_preserves_quantile_structure() {
        let mut a = Hist::default();
        let mut b = Hist::default();
        let mut whole = Hist::default();
        for v in 0..200u64 {
            if v % 2 == 0 {
                a.observe(v * 17 % 101);
            } else {
                b.observe(v * 17 % 101);
            }
            whole.observe(v * 17 % 101);
        }
        assert_eq!(a.merge(b), whole);
        assert_eq!(Hist::default().merge(whole), whole);
    }

    #[test]
    fn json_is_parseable_and_complete() {
        let mut m = Metrics::new();
        m.add("earley.items_completed", 7);
        m.gauge_max("earley.chart_states_peak", 3);
        m.observe("seg.len", 11);
        m.ensure_hist("pre.registered");
        m.record_span("compress.parse", Duration::from_micros(2));
        let doc = crate::json::parse(&m.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(crate::SCHEMA)
        );
        let counters = doc.get("counters").unwrap();
        assert_eq!(
            counters.get("earley.items_completed").unwrap().as_u64(),
            Some(7)
        );
        let hist = doc.get("histograms").unwrap().get("seg.len").unwrap();
        for field in ["count", "sum", "min", "max", "p50", "p90", "p95", "p99"] {
            assert!(hist.get(field).is_some(), "histogram field {field}");
        }
        assert_eq!(hist.get("p50").unwrap().as_u64(), Some(11));
        // Pre-registered empty histograms report zeros, not sentinels.
        let empty = doc
            .get("histograms")
            .unwrap()
            .get("pre.registered")
            .unwrap();
        assert_eq!(empty.get("count").unwrap().as_u64(), Some(0));
        assert_eq!(empty.get("min").unwrap().as_u64(), Some(0));
        let span = doc.get("spans").unwrap().get("compress.parse").unwrap();
        assert_eq!(span.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(span.get("total_ns").unwrap().as_u64(), Some(2000));
        assert!(span.get("p50").is_none(), "spans keep the flat shape");
    }

    #[test]
    fn table_rendering_mentions_every_name() {
        let mut m = Metrics::new();
        m.add("a.count", 1);
        m.gauge_max("b.peak", 2);
        m.record_span("c.phase", Duration::from_nanos(3));
        let table = m.render_table();
        for name in ["a.count", "b.peak", "c.phase"] {
            assert!(table.contains(name), "{table}");
        }
    }
}
