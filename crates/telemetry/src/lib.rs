//! # pgr-telemetry
//!
//! The workspace's observability layer: hierarchical **spans** (wall-clock
//! timing with a thread-local path stack) and a **metrics registry** of
//! named counters, gauges, and histograms, aggregated behind a cloneable
//! [`Recorder`] handle and rendered through a [`Sink`]
//! (human-readable table or JSON).
//!
//! The paper's claims are quantitative — grammar size vs. corpus size
//! (§4), shortest-derivation cost under the ambiguous expanded grammar
//! (§5), interpreter overhead (§6) — so every hot layer of the pipeline
//! (trainer, Earley compressor, bytecode passes, both interpreters)
//! reports through this crate. The design constraints, in order:
//!
//! 1. **Zero overhead when disabled.** Everything defaults off.
//!    [`Recorder::disabled`] hands out a shared no-op handle whose
//!    [`Recorder::is_enabled`] is a single relaxed atomic load;
//!    instrumented loops hoist that load once per unit of work (one
//!    parse, one VM run) and count into plain locals, flushing a batched
//!    [`Metrics`] value only when enabled.
//! 2. **Deterministic aggregation under fan-out.** [`Metrics::merge`] is
//!    a commutative monoid (counters sum, gauges max, histograms
//!    component-merge), mirroring `CompressionStats::merge` in
//!    `pgr-core`, so N-thread and sequential runs of the engine report
//!    identical counter totals regardless of scheduling.
//! 3. **No dependencies.** The build environment vendors no external
//!    crates; JSON emission and the [`json`] parser used by the schema
//!    checker are hand-rolled over `std`.
//!
//! Metric names form a stable dotted schema (`earley.items_completed`,
//! `vm.dispatch.<opcode>`, …) documented in [`names`] and in DESIGN.md
//! §"Observability"; `schema/metrics.schema.json` pins the names the CLI
//! must emit so CI fails on silent drift.
//!
//! ```
//! use pgr_telemetry::{Recorder, Metrics, Sink, JsonSink};
//!
//! let recorder = Recorder::new(); // enabled
//! {
//!     let _outer = recorder.span("compress");
//!     let _inner = recorder.span("parse"); // records as "compress.parse"
//!     recorder.add("earley.items_completed", 3);
//! }
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot.counter("earley.items_completed"), 3);
//! assert!(snapshot.span_stat("compress.parse").is_some());
//!
//! let mut out = Vec::new();
//! JsonSink(&mut out).emit(&snapshot).unwrap();
//! assert!(String::from_utf8(out).unwrap().contains("pgr-metrics/2"));
//! ```

#![warn(missing_docs)]

pub mod cancel;
pub mod faults;
pub mod json;
mod metrics;
pub mod names;
mod recorder;
mod sink;
pub mod trace;

pub use cancel::CancelToken;
pub use metrics::{Hist, Metrics, HIST_BUCKETS};
pub use recorder::{Recorder, Span, Stopwatch, TraceSpan, DEFAULT_TRACE_CAPACITY};
pub use sink::{JsonSink, Sink, TableSink};
pub use trace::{Trace, TraceEvent, TraceId, TraceScope};

/// The schema identifier stamped into every JSON metrics report. Bump it
/// when the report *shape* changes; adding metric names is not a schema
/// change. (v2: histograms grew log-bucketed quantile fields.)
pub const SCHEMA: &str = "pgr-metrics/2";
