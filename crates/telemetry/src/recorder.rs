//! The shared recorder handle, span guards, and the gated stopwatch.

use crate::metrics::Metrics;
use crate::trace::{self, Phase, Trace, TraceEvent, TraceId};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default trace-buffer capacity (events). Roomy enough for a full
/// corpus compress at default settings; serve drains per-request so it
/// never gets near this.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// The bounded trace-event buffer behind a tracing-enabled recorder.
#[derive(Debug, Default)]
struct TraceBuf {
    /// The zero point for event timestamps, set when tracing turns on.
    epoch: Option<Instant>,
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuf {
    fn push(&mut self, name: &str, phase: Phase) {
        let Some(epoch) = self.epoch else { return };
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let ts_micros = u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.events.push(TraceEvent {
            name: name.to_string(),
            phase,
            ts_micros,
            lane: trace::lane(),
            trace: trace::current(),
        });
    }
}

#[derive(Debug)]
struct Inner {
    enabled: AtomicBool,
    tracing: AtomicBool,
    metrics: Mutex<Metrics>,
    trace: Mutex<TraceBuf>,
}

impl Inner {
    fn new(enabled: bool) -> Inner {
        Inner {
            enabled: AtomicBool::new(enabled),
            tracing: AtomicBool::new(false),
            metrics: Mutex::new(Metrics::new()),
            trace: Mutex::new(TraceBuf::default()),
        }
    }
}

thread_local! {
    /// The active span path on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A cloneable handle onto one shared metrics registry.
///
/// Cloning is an `Arc` bump; clones observe and mutate the same
/// registry, which is how the engine's scoped worker threads and the
/// layers below it (parser, VM) all report into one place. The handle is
/// `Send + Sync`.
///
/// The default handle is **disabled**: every recording call is a no-op
/// after a single relaxed atomic load, and [`Recorder::disabled`] hands
/// out a process-wide shared instance so default-constructing configs
/// allocates nothing. Enable telemetry by constructing with
/// [`Recorder::new`] and threading the handle through the relevant
/// config (`CompressorConfig`-adjacent builders, `TrainConfig`,
/// `VmConfig`).
///
/// An enabled recorder can additionally have **tracing** switched on
/// ([`Recorder::enable_tracing`]), which makes [`Recorder::span`] guards
/// and the explicit `trace_*` hooks append begin/end events to a bounded
/// buffer for export as Chrome `trace_event` JSON or per-request NDJSON
/// (see [`crate::trace`]). Tracing is a second independent flag: metrics
/// without tracing stays exactly as cheap as before.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Default for Recorder {
    /// The shared disabled handle (see [`Recorder::disabled`]).
    fn default() -> Recorder {
        Recorder::disabled()
    }
}

impl Recorder {
    /// A fresh, **enabled** recorder with an empty registry.
    #[allow(clippy::new_without_default)] // Default is the disabled handle
    pub fn new() -> Recorder {
        Recorder {
            inner: Arc::new(Inner::new(true)),
        }
    }

    /// The process-wide **disabled** recorder: recording into it is a
    /// no-op, checking it is one relaxed atomic load, and obtaining it
    /// never allocates (all calls share one static instance).
    pub fn disabled() -> Recorder {
        static DISABLED: OnceLock<Arc<Inner>> = OnceLock::new();
        Recorder {
            inner: DISABLED.get_or_init(|| Arc::new(Inner::new(false))).clone(),
        }
    }

    /// Whether this handle records anything. Hot paths load this once
    /// per unit of work (one parse, one VM run) and branch on the local.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn on trace-event collection with a buffer of at most
    /// `capacity` events (use [`DEFAULT_TRACE_CAPACITY`] unless you have
    /// a reason). Returns `false` — and stays off — on a disabled
    /// handle, so the shared [`Recorder::disabled`] singleton can never
    /// start buffering. Enabling resets the timestamp epoch and clears
    /// any previous buffer.
    pub fn enable_tracing(&self, capacity: usize) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let mut buf = self.lock_trace();
        *buf = TraceBuf {
            epoch: Some(Instant::now()),
            events: Vec::new(),
            capacity,
            dropped: 0,
        };
        self.inner.tracing.store(true, Ordering::Relaxed);
        true
    }

    /// Whether trace events are being collected.
    #[inline]
    pub fn is_tracing(&self) -> bool {
        self.inner.tracing.load(Ordering::Relaxed)
    }

    /// Record a begin event. No-op unless tracing.
    pub fn trace_begin(&self, name: &str) {
        if self.is_tracing() {
            self.lock_trace().push(name, Phase::Begin);
        }
    }

    /// Record an end event (must pair with a begin on the same thread).
    pub fn trace_end(&self, name: &str) {
        if self.is_tracing() {
            self.lock_trace().push(name, Phase::End);
        }
    }

    /// Record a point-in-time mark. No-op unless tracing.
    pub fn trace_instant(&self, name: &str) {
        if self.is_tracing() {
            self.lock_trace().push(name, Phase::Instant);
        }
    }

    /// Open a begin/end pair closed by the returned guard's drop. Unlike
    /// [`Recorder::span`] this records no duration histogram and accepts
    /// non-static names, so it suits per-request scopes whose names are
    /// built at runtime. Inert (no allocation) unless tracing.
    pub fn trace_span(&self, name: &str) -> TraceSpan<'_> {
        if !self.is_tracing() {
            return TraceSpan {
                recorder: self,
                name: None,
            };
        }
        self.trace_begin(name);
        TraceSpan {
            recorder: self,
            name: Some(name.to_string()),
        }
    }

    /// Take everything traced so far, leaving the buffer empty (tracing
    /// stays on; the epoch is preserved so timestamps keep advancing).
    pub fn take_trace(&self) -> Trace {
        let mut buf = self.lock_trace();
        Trace {
            events: std::mem::take(&mut buf.events),
            dropped: std::mem::take(&mut buf.dropped),
        }
    }

    /// Remove and return only the events attributed to `id`, leaving
    /// other requests' in-flight events buffered. This is how serve
    /// keeps the shared buffer bounded: every request drains its own
    /// events at completion, dumping them only when slow.
    pub fn drain_trace(&self, id: TraceId) -> Vec<TraceEvent> {
        let mut buf = self.lock_trace();
        let raw = id.as_u64();
        let mut drained = Vec::new();
        buf.events.retain(|ev| {
            if ev.trace == raw {
                drained.push(ev.clone());
                false
            } else {
                true
            }
        });
        drained
    }

    /// Add `n` to counter `name`. No-op when disabled.
    pub fn add(&self, name: &str, n: u64) {
        if self.is_enabled() {
            self.lock().add(name, n);
        }
    }

    /// Raise gauge `name` to at least `value`. No-op when disabled.
    pub fn gauge_max(&self, name: &str, value: u64) {
        if self.is_enabled() {
            self.lock().gauge_max(name, value);
        }
    }

    /// Fold `value` into histogram `name`. No-op when disabled.
    pub fn observe(&self, name: &str, value: u64) {
        if self.is_enabled() {
            self.lock().observe(name, value);
        }
    }

    /// Fold a duration into the span summary at `path` directly,
    /// bypassing the thread-local span stack. Used for phases measured
    /// on worker threads and aggregated by the coordinator (the span
    /// stack is per-thread, so guard-based nesting cannot name them).
    pub fn record_span(&self, path: &str, duration: Duration) {
        if self.is_enabled() {
            self.lock().record_span(path, duration);
        }
    }

    /// Merge a locally accumulated batch into the registry. This is the
    /// preferred hot-path pattern: count into locals, flush once.
    /// No-op when disabled.
    pub fn record(&self, batch: Metrics) {
        if self.is_enabled() && !batch.is_empty() {
            self.lock().merge_from(batch);
        }
    }

    /// Open a timing span named `name`, nested under any span already
    /// open **on this thread**; the guard records `outer.inner` dotted
    /// paths into the registry when dropped, and emits a begin/end
    /// trace-event pair when tracing. Inert (no clock read, no
    /// allocation) when disabled.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        if !self.is_enabled() {
            return Span {
                recorder: self,
                name,
                start: None,
            };
        }
        SPAN_STACK.with(|stack| stack.borrow_mut().push(name));
        self.trace_begin(name);
        Span {
            recorder: self,
            name,
            start: Some(Instant::now()),
        }
    }

    /// A copy of everything recorded so far.
    pub fn snapshot(&self) -> Metrics {
        self.lock().clone()
    }

    /// Drain the registry, leaving it empty (useful between benchmark
    /// iterations).
    pub fn take(&self) -> Metrics {
        std::mem::take(&mut *self.lock())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Metrics> {
        self.inner.metrics.lock().expect("telemetry registry lock")
    }

    fn lock_trace(&self) -> std::sync::MutexGuard<'_, TraceBuf> {
        self.inner.trace.lock().expect("telemetry trace lock")
    }
}

/// An RAII timing guard from [`Recorder::span`]. On drop it records the
/// elapsed wall-clock time under the dotted path of every span open on
/// this thread (`train`, `train.expand`, …) and closes the matching
/// trace event when tracing.
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct Span<'r> {
    recorder: &'r Recorder,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let elapsed = start.elapsed();
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack.join(".");
            stack.pop();
            path
        });
        self.recorder.record_span(&path, elapsed);
        self.recorder.trace_end(self.name);
    }
}

/// An RAII trace-only guard from [`Recorder::trace_span`]: closes the
/// begin event on drop, records nothing in the metrics registry.
#[must_use = "a trace span marks the scope it is bound to; binding to _ drops it immediately"]
pub struct TraceSpan<'r> {
    recorder: &'r Recorder,
    name: Option<String>,
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            self.recorder.trace_end(&name);
        }
    }
}

/// A clock that only ticks when asked to: `start_if(false)` never reads
/// the monotonic clock and always reports a zero duration.
///
/// All phase timing in the engine routes through this type, gated on one
/// "is anything observing?" check (`collect_timings` or an enabled
/// recorder), which is what guarantees the disabled path pays no
/// `Instant::now()` calls anywhere — including branches that previously
/// timed unconditionally.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Start the clock only when `enabled` is true.
    #[inline]
    pub fn start_if(enabled: bool) -> Stopwatch {
        Stopwatch(enabled.then(Instant::now))
    }

    /// Elapsed time since start (zero when the clock never started).
    #[inline]
    pub fn elapsed(self) -> Duration {
        self.0.map(|t| t.elapsed()).unwrap_or_default()
    }

    /// Whether the clock is running.
    pub fn is_running(self) -> bool {
        self.0.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let r = Recorder::disabled();
        r.add("c", 5);
        r.gauge_max("g", 5);
        r.observe("h", 5);
        {
            let _s = r.span("phase");
        }
        assert!(r.snapshot().is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn disabled_handles_are_shared() {
        let a = Recorder::disabled();
        let b = Recorder::default();
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
    }

    #[test]
    fn clones_share_one_registry() {
        let r = Recorder::new();
        let c = r.clone();
        c.add("x", 1);
        r.add("x", 2);
        assert_eq!(r.snapshot().counter("x"), 3);
        assert_eq!(r.take().counter("x"), 3);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn spans_nest_into_dotted_paths() {
        let r = Recorder::new();
        {
            let _outer = r.span("outer");
            {
                let _inner = r.span("inner");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let m = r.snapshot();
        let inner = m.span_stat("outer.inner").expect("inner recorded");
        let outer = m.span_stat("outer").expect("outer recorded");
        assert_eq!(inner.count, 1);
        assert!(outer.sum >= inner.sum, "outer contains inner");
    }

    #[test]
    fn sibling_threads_do_not_inherit_span_context() {
        let r = Recorder::new();
        let _outer = r.span("outer");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _worker = r.span("worker");
            });
        });
        // The worker's stack was empty, so its span is top-level.
        assert!(r.snapshot().span_stat("worker").is_some());
        assert!(r.snapshot().span_stat("outer.worker").is_none());
    }

    #[test]
    fn span_guards_emit_balanced_trace_events_when_tracing() {
        let r = Recorder::new();
        assert!(r.enable_tracing(1024));
        {
            let _outer = r.span("outer");
            let _inner = r.span("inner");
        }
        let trace = r.take_trace();
        let names: Vec<(&str, Phase)> = trace
            .events
            .iter()
            .map(|e| (e.name.as_str(), e.phase))
            .collect();
        assert_eq!(
            names,
            vec![
                ("outer", Phase::Begin),
                ("inner", Phase::Begin),
                ("inner", Phase::End),
                ("outer", Phase::End),
            ]
        );
        // Metrics were still recorded alongside.
        assert!(r.snapshot().span_stat("outer.inner").is_some());
    }

    #[test]
    fn drain_trace_extracts_one_request_and_keeps_the_rest() {
        let r = Recorder::new();
        assert!(r.enable_tracing(1024));
        let a = TraceId::mint();
        let b = TraceId::mint();
        {
            let _s = trace::scope(a);
            r.trace_instant("a1");
        }
        {
            let _s = trace::scope(b);
            r.trace_instant("b1");
        }
        {
            let _s = trace::scope(a);
            r.trace_instant("a2");
        }
        let drained = r.drain_trace(a);
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|e| e.trace == a.as_u64()));
        let rest = r.take_trace();
        assert_eq!(rest.events.len(), 1);
        assert_eq!(rest.events[0].trace, b.as_u64());
    }

    #[test]
    fn stopwatch_only_ticks_when_enabled() {
        let off = Stopwatch::start_if(false);
        assert!(!off.is_running());
        assert_eq!(off.elapsed(), Duration::ZERO);
        let on = Stopwatch::start_if(true);
        assert!(on.is_running());
    }
}
