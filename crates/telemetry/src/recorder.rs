//! The shared recorder handle, span guards, and the gated stopwatch.

use crate::metrics::Metrics;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    enabled: AtomicBool,
    metrics: Mutex<Metrics>,
}

impl Inner {
    fn new(enabled: bool) -> Inner {
        Inner {
            enabled: AtomicBool::new(enabled),
            metrics: Mutex::new(Metrics::new()),
        }
    }
}

thread_local! {
    /// The active span path on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A cloneable handle onto one shared metrics registry.
///
/// Cloning is an `Arc` bump; clones observe and mutate the same
/// registry, which is how the engine's scoped worker threads and the
/// layers below it (parser, VM) all report into one place. The handle is
/// `Send + Sync`.
///
/// The default handle is **disabled**: every recording call is a no-op
/// after a single relaxed atomic load, and [`Recorder::disabled`] hands
/// out a process-wide shared instance so default-constructing configs
/// allocates nothing. Enable telemetry by constructing with
/// [`Recorder::new`] and threading the handle through the relevant
/// config (`CompressorConfig`-adjacent builders, `TrainConfig`,
/// `VmConfig`).
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Default for Recorder {
    /// The shared disabled handle (see [`Recorder::disabled`]).
    fn default() -> Recorder {
        Recorder::disabled()
    }
}

impl Recorder {
    /// A fresh, **enabled** recorder with an empty registry.
    #[allow(clippy::new_without_default)] // Default is the disabled handle
    pub fn new() -> Recorder {
        Recorder {
            inner: Arc::new(Inner::new(true)),
        }
    }

    /// The process-wide **disabled** recorder: recording into it is a
    /// no-op, checking it is one relaxed atomic load, and obtaining it
    /// never allocates (all calls share one static instance).
    pub fn disabled() -> Recorder {
        static DISABLED: OnceLock<Arc<Inner>> = OnceLock::new();
        Recorder {
            inner: DISABLED.get_or_init(|| Arc::new(Inner::new(false))).clone(),
        }
    }

    /// Whether this handle records anything. Hot paths load this once
    /// per unit of work (one parse, one VM run) and branch on the local.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Add `n` to counter `name`. No-op when disabled.
    pub fn add(&self, name: &str, n: u64) {
        if self.is_enabled() {
            self.lock().add(name, n);
        }
    }

    /// Raise gauge `name` to at least `value`. No-op when disabled.
    pub fn gauge_max(&self, name: &str, value: u64) {
        if self.is_enabled() {
            self.lock().gauge_max(name, value);
        }
    }

    /// Fold `value` into histogram `name`. No-op when disabled.
    pub fn observe(&self, name: &str, value: u64) {
        if self.is_enabled() {
            self.lock().observe(name, value);
        }
    }

    /// Fold a duration into the span summary at `path` directly,
    /// bypassing the thread-local span stack. Used for phases measured
    /// on worker threads and aggregated by the coordinator (the span
    /// stack is per-thread, so guard-based nesting cannot name them).
    pub fn record_span(&self, path: &str, duration: Duration) {
        if self.is_enabled() {
            self.lock().record_span(path, duration);
        }
    }

    /// Merge a locally accumulated batch into the registry. This is the
    /// preferred hot-path pattern: count into locals, flush once.
    /// No-op when disabled.
    pub fn record(&self, batch: Metrics) {
        if self.is_enabled() && !batch.is_empty() {
            self.lock().merge_from(batch);
        }
    }

    /// Open a timing span named `name`, nested under any span already
    /// open **on this thread**; the guard records `outer.inner` dotted
    /// paths into the registry when dropped. Inert (no clock read, no
    /// allocation) when disabled.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        if !self.is_enabled() {
            return Span {
                recorder: self,
                start: None,
            };
        }
        SPAN_STACK.with(|stack| stack.borrow_mut().push(name));
        Span {
            recorder: self,
            start: Some(Instant::now()),
        }
    }

    /// A copy of everything recorded so far.
    pub fn snapshot(&self) -> Metrics {
        self.lock().clone()
    }

    /// Drain the registry, leaving it empty (useful between benchmark
    /// iterations).
    pub fn take(&self) -> Metrics {
        std::mem::take(&mut *self.lock())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Metrics> {
        self.inner.metrics.lock().expect("telemetry registry lock")
    }
}

/// An RAII timing guard from [`Recorder::span`]. On drop it records the
/// elapsed wall-clock time under the dotted path of every span open on
/// this thread (`train`, `train.expand`, …).
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct Span<'r> {
    recorder: &'r Recorder,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let elapsed = start.elapsed();
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack.join(".");
            stack.pop();
            path
        });
        self.recorder.record_span(&path, elapsed);
    }
}

/// A clock that only ticks when asked to: `start_if(false)` never reads
/// the monotonic clock and always reports a zero duration.
///
/// All phase timing in the engine routes through this type, gated on one
/// "is anything observing?" check (`collect_timings` or an enabled
/// recorder), which is what guarantees the disabled path pays no
/// `Instant::now()` calls anywhere — including branches that previously
/// timed unconditionally.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Start the clock only when `enabled` is true.
    #[inline]
    pub fn start_if(enabled: bool) -> Stopwatch {
        Stopwatch(enabled.then(Instant::now))
    }

    /// Elapsed time since start (zero when the clock never started).
    #[inline]
    pub fn elapsed(self) -> Duration {
        self.0.map(|t| t.elapsed()).unwrap_or_default()
    }

    /// Whether the clock is running.
    pub fn is_running(self) -> bool {
        self.0.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let r = Recorder::disabled();
        r.add("c", 5);
        r.gauge_max("g", 5);
        r.observe("h", 5);
        {
            let _s = r.span("phase");
        }
        assert!(r.snapshot().is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn disabled_handles_are_shared() {
        let a = Recorder::disabled();
        let b = Recorder::default();
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
    }

    #[test]
    fn clones_share_one_registry() {
        let r = Recorder::new();
        let c = r.clone();
        c.add("x", 1);
        r.add("x", 2);
        assert_eq!(r.snapshot().counter("x"), 3);
        assert_eq!(r.take().counter("x"), 3);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn spans_nest_into_dotted_paths() {
        let r = Recorder::new();
        {
            let _outer = r.span("outer");
            {
                let _inner = r.span("inner");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let m = r.snapshot();
        let inner = m.span_stat("outer.inner").expect("inner recorded");
        let outer = m.span_stat("outer").expect("outer recorded");
        assert_eq!(inner.count, 1);
        assert!(outer.sum >= inner.sum, "outer contains inner");
    }

    #[test]
    fn sibling_threads_do_not_inherit_span_context() {
        let r = Recorder::new();
        let _outer = r.span("outer");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _worker = r.span("worker");
            });
        });
        // The worker's stack was empty, so its span is top-level.
        assert!(r.snapshot().span_stat("worker").is_some());
        assert!(r.snapshot().span_stat("outer.worker").is_none());
    }

    #[test]
    fn stopwatch_only_ticks_when_enabled() {
        let off = Stopwatch::start_if(false);
        assert!(!off.is_running());
        assert_eq!(off.elapsed(), Duration::ZERO);
        let on = Stopwatch::start_if(true);
        assert!(on.is_running());
    }
}
