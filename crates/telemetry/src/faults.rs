//! Deterministic fault injection for the robustness test suite.
//!
//! The hardening work (Earley budgets, verbatim fallback, checksummed
//! images, panic-isolated workers) is only trustworthy if the degraded
//! paths are *executed*, not just written. This module gives the tests a
//! way to trip them on demand: the pipeline consults [`fire`] at a small
//! set of named [`FaultPoint`]s, and an installed [`FaultPlan`] decides —
//! deterministically — which occurrences fault.
//!
//! The design constraints mirror the [`Recorder`](crate::Recorder)
//! disabled fast path: when no plan is installed (the production state),
//! [`fire`] is a single relaxed atomic load and nothing else — no lock,
//! no counter traffic, no allocation. Only an enabled plan pays for
//! occurrence counting and mode evaluation.
//!
//! Plans are deterministic by construction: [`FaultMode::Nth`] trips one
//! exact occurrence, and [`FaultMode::Seeded`] derives each verdict from
//! a splitmix64 hash of `(seed, point, occurrence index)` — the same seed
//! always faults the same occurrences, so a failing fuzz run is
//! replayable from its seed alone.
//!
//! ```
//! use pgr_telemetry::faults::{self, FaultMode, FaultPlan, FaultPoint};
//!
//! // Disabled (the default): nothing fires.
//! assert!(!faults::fire(FaultPoint::Parse));
//!
//! // Trip exactly the second parse.
//! let _guard = faults::install(
//!     FaultPlan::new().with(FaultPoint::Parse, FaultMode::Nth(2)),
//! );
//! assert!(!faults::fire(FaultPoint::Parse));
//! assert!(faults::fire(FaultPoint::Parse));
//! assert!(!faults::fire(FaultPoint::Parse));
//! assert_eq!(faults::fired(FaultPoint::Parse), 1);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A named place in the pipeline that asks [`fire`] whether to fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// `binfmt::read_program`: reading a program image from bytes.
    ImageRead = 0,
    /// The engine's per-segment Earley parse (fires as a `NoParse`).
    Parse = 1,
    /// The engine's derivation-cache insert (fires as a panic while the
    /// cache lock is held, driving worker isolation and poison recovery).
    CacheLock = 2,
    /// The decompressor's per-segment derivation decode.
    Decode = 3,
}

/// Number of distinct [`FaultPoint`]s.
pub const POINT_COUNT: usize = 4;

impl FaultPoint {
    /// Every injection point, in discriminant order.
    pub const ALL: [FaultPoint; POINT_COUNT] = [
        FaultPoint::ImageRead,
        FaultPoint::Parse,
        FaultPoint::CacheLock,
        FaultPoint::Decode,
    ];

    fn index(self) -> usize {
        self as usize
    }
}

/// When a [`FaultPoint`] faults, over its sequence of occurrences
/// (1-based, counted per installed plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultMode {
    /// Never fault (the default for every point).
    #[default]
    Never,
    /// Fault on every occurrence.
    Always,
    /// Fault on exactly the `n`th occurrence (1-based).
    Nth(u64),
    /// Fault each occurrence independently with probability
    /// `rate_per_1024 / 1024`, decided by a splitmix64 hash of
    /// `(seed, point, occurrence)` — deterministic for a fixed seed.
    Seeded {
        /// The reproducibility seed.
        seed: u64,
        /// Fault rate in 1024ths (1024 = always).
        rate_per_1024: u16,
    },
}

/// A per-point assignment of [`FaultMode`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    modes: [FaultMode; POINT_COUNT],
}

impl FaultPlan {
    /// A plan in which nothing faults.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Set the mode for one point (builder-style).
    pub fn with(mut self, point: FaultPoint, mode: FaultMode) -> FaultPlan {
        self.modes[point.index()] = mode;
        self
    }
}

/// The disabled fast-path flag; one relaxed load per [`fire`] call.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// The installed plan (meaningful only while `ENABLED`).
static PLAN: Mutex<FaultPlan> = Mutex::new(FaultPlan {
    modes: [FaultMode::Never; POINT_COUNT],
});
/// Occurrences seen per point since the plan was installed.
static SEEN: [AtomicU64; POINT_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
/// Faults actually fired per point since the plan was installed.
static FIRED: [AtomicU64; POINT_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
/// Serializes plan installations so concurrent tests cannot interleave
/// (the injected points panic on purpose, so recover from poisoning).
static INSTALL_GATE: Mutex<()> = Mutex::new(());

/// Keeps an installed [`FaultPlan`] active; dropping it disables
/// injection and releases the (process-wide) installation gate.
pub struct FaultGuard {
    _gate: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        *lock_plan() = FaultPlan::new();
    }
}

fn lock_plan() -> MutexGuard<'static, FaultPlan> {
    // The plan is only read/replaced under the install gate or in
    // fire_slow; a panic between lock and unlock cannot leave it torn,
    // so poisoning is recoverable by construction.
    PLAN.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Install `plan` and enable injection until the returned guard drops.
///
/// Installation is serialized process-wide: a second `install` blocks
/// until the first guard drops, so concurrent tests never observe each
/// other's faults. Occurrence and fired counters reset on install.
pub fn install(plan: FaultPlan) -> FaultGuard {
    let gate = INSTALL_GATE.lock().unwrap_or_else(PoisonError::into_inner);
    *lock_plan() = plan;
    for i in 0..POINT_COUNT {
        SEEN[i].store(0, Ordering::SeqCst);
        FIRED[i].store(0, Ordering::SeqCst);
    }
    ENABLED.store(true, Ordering::SeqCst);
    FaultGuard { _gate: gate }
}

/// Ask whether this occurrence of `point` should fault.
///
/// With no plan installed this is a single relaxed atomic load returning
/// `false` — cheap enough for per-segment hot paths, in the spirit of
/// [`Recorder::is_enabled`](crate::Recorder::is_enabled).
#[inline]
pub fn fire(point: FaultPoint) -> bool {
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    fire_slow(point)
}

#[cold]
fn fire_slow(point: FaultPoint) -> bool {
    let i = point.index();
    let n = SEEN[i].fetch_add(1, Ordering::SeqCst) + 1;
    let mode = lock_plan().modes[i];
    let hit = match mode {
        FaultMode::Never => false,
        FaultMode::Always => true,
        FaultMode::Nth(k) => n == k,
        FaultMode::Seeded {
            seed,
            rate_per_1024,
        } => {
            splitmix64(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)) ^ n) % 1024
                < u64::from(rate_per_1024)
        }
    };
    if hit {
        FIRED[i].fetch_add(1, Ordering::SeqCst);
    }
    hit
}

/// Occurrences of `point` seen since the current plan was installed.
pub fn seen(point: FaultPoint) -> u64 {
    SEEN[point.index()].load(Ordering::SeqCst)
}

/// Faults fired at `point` since the current plan was installed.
pub fn fired(point: FaultPoint) -> u64 {
    FIRED[point.index()].load(Ordering::SeqCst)
}

/// The splitmix64 mixer (public-domain constants); a full-avalanche
/// 64-bit permutation, so per-occurrence verdicts are decorrelated.
/// Public because the chaos proxy and the retrying client reuse the
/// same seeded-determinism discipline for their fault/jitter decisions.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert_and_modes_are_deterministic() {
        // No plan: nothing fires, nothing is counted.
        assert!(!fire(FaultPoint::ImageRead));

        {
            let _g = install(FaultPlan::new().with(FaultPoint::Decode, FaultMode::Nth(3)));
            let pattern: Vec<bool> = (0..5).map(|_| fire(FaultPoint::Decode)).collect();
            assert_eq!(pattern, [false, false, true, false, false]);
            assert_eq!(seen(FaultPoint::Decode), 5);
            assert_eq!(fired(FaultPoint::Decode), 1);
            // Other points stay quiet.
            assert!(!fire(FaultPoint::Parse));
        }
        // Guard dropped: disabled again.
        assert!(!fire(FaultPoint::Decode));

        // Seeded mode replays identically for the same seed.
        let run = |seed| {
            let _g = install(FaultPlan::new().with(
                FaultPoint::Parse,
                FaultMode::Seeded {
                    seed,
                    rate_per_1024: 512,
                },
            ));
            (0..64).map(|_| fire(FaultPoint::Parse)).collect::<Vec<_>>()
        };
        let a = run(7);
        assert_eq!(a, run(7));
        assert_ne!(a, run(8), "different seeds should diverge");
        assert!(a.iter().any(|&b| b) && a.iter().any(|&b| !b));
    }
}
