//! A minimal JSON parser — just enough to validate metric reports.
//!
//! The build environment vendors no external crates, so the CLI's
//! `metrics-check` schema validator and the integration tests parse the
//! `--metrics json` output with this module instead of serde. It accepts
//! strict JSON (RFC 8259 values, no comments, no trailing commas) and
//! keeps numbers as `f64` — metric values are u64 counters well inside
//! the 2^53 exact-integer range, and the one report that could overflow
//! (a 292-year span total) is not worth an arbitrary-precision tower.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (sorted by key; duplicate keys keep the last value).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (one value plus optional trailing
/// whitespace).
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for metric
                            // names; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "\"abc", "{\"a\":1} x", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn u64_boundaries() {
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }
}
