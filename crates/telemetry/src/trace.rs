//! Structured request tracing: trace ids, thread lanes, and the
//! begin/end event stream behind `--trace-out` and slow-trace dumps.
//!
//! The metrics registry answers "how much, in aggregate"; this module
//! answers "what happened, in order, on which thread, for which
//! request". Three pieces:
//!
//! * **Trace ids** ([`TraceId`]) are minted per unit of attribution —
//!   one per serve request, one per CLI invocation — and installed in a
//!   thread-local *scope* ([`scope`]). Every trace event captures the
//!   scope active on its thread, so a request's events can be pulled out
//!   of the shared buffer even when requests interleave. Scopes are
//!   explicitly propagated into worker pools (see
//!   `Compressor::run_jobs`), because thread-locals do not cross
//!   `thread::scope` boundaries on their own.
//! * **Lanes** are per-thread integer ids assigned on first use; they
//!   become `tid` values in the Chrome export, so the parallel compress
//!   workers render as separate swim-lanes.
//! * **Events** are begin/end (and instant) records with a microsecond
//!   timestamp relative to the moment tracing was enabled. They are
//!   appended to a bounded buffer on the [`Recorder`](crate::Recorder)
//!   (`enable_tracing`), emitted by the same [`Span`](crate::Span)
//!   guards that feed the span histograms plus explicit
//!   `trace_begin`/`trace_end` hooks in paths too hot for guards.
//!
//! Export formats: [`Trace::to_chrome_json`] writes the Chrome
//! `trace_event` array (load it in `chrome://tracing` or Perfetto);
//! [`TraceEvent::to_ndjson`] writes one event per line for the serve
//! slow-trace dump. [`validate_chrome_trace`] is the shared checker the
//! golden tests and CI use: balanced, properly nested begin/end pairs
//! per lane, monotone timestamps, nesting depth, lane count.

use crate::json::{self, Value};
use crate::metrics::push_json_str;
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide trace-id mint (0 is reserved for "unattributed").
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
/// Process-wide lane mint (0 means "not yet assigned to this thread").
static NEXT_LANE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The trace id attributed to work on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// This thread's lane id (0 until first assigned).
    static LANE: Cell<u64> = const { Cell::new(0) };
}

/// An opaque per-request (or per-invocation) attribution id.
///
/// Ids are process-unique, minted from an atomic counter, and rendered
/// as 16 hex digits — stable to grep for across a response line, a
/// slow-trace dump, and a metrics report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// Mint the next process-unique id.
    pub fn mint() -> TraceId {
        TraceId(NEXT_TRACE.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw id value (never 0 for minted ids).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuild from a raw value (e.g. parsed back from a response line).
    pub fn from_u64(raw: u64) -> TraceId {
        TraceId(raw)
    }

    /// The 16-hex-digit rendering used in wire payloads and dumps.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The trace id currently attributed to this thread (0 = none). Workers
/// capture this before spawning and re-install it with [`scope_raw`].
pub fn current() -> u64 {
    CURRENT.with(Cell::get)
}

/// Attribute subsequent work on this thread to `id` until the returned
/// guard drops (the previous attribution is restored).
pub fn scope(id: TraceId) -> TraceScope {
    scope_raw(id.0)
}

/// [`scope`] over a raw id — the propagation form (`scope_raw(current())`
/// captured on the spawning thread re-attributes a worker).
pub fn scope_raw(raw: u64) -> TraceScope {
    let prev = CURRENT.with(|c| c.replace(raw));
    TraceScope { prev }
}

/// RAII guard from [`scope`]; restores the previous attribution on drop.
#[must_use = "a scope attributes the region it is bound to; binding to _ drops it immediately"]
pub struct TraceScope {
    prev: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// This thread's lane id, assigning one on first use. Lanes become `tid`
/// values in the Chrome export.
pub(crate) fn lane() -> u64 {
    LANE.with(|l| {
        let v = l.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
        l.set(v);
        v
    })
}

/// What kind of mark an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A span opened (`ph:"B"`).
    Begin,
    /// A span closed (`ph:"E"`).
    End,
    /// A point-in-time mark (`ph:"i"`).
    Instant,
}

impl Phase {
    /// The Chrome `trace_event` phase letter.
    pub fn letter(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span or mark name (dotted, like metric names).
    pub name: String,
    /// Begin / end / instant.
    pub phase: Phase,
    /// Microseconds since tracing was enabled.
    pub ts_micros: u64,
    /// The recording thread's lane (Chrome `tid`).
    pub lane: u64,
    /// The trace id attributed at record time (0 = unattributed).
    pub trace: u64,
}

impl TraceEvent {
    /// Append this event as one Chrome `trace_event` object.
    fn push_chrome(&self, out: &mut String) {
        out.push_str("{\"name\":");
        push_json_str(out, &self.name);
        out.push_str(&format!(
            ",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            self.phase.letter(),
            self.ts_micros,
            self.lane
        ));
        if self.phase == Phase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if self.trace != 0 {
            out.push_str(&format!(",\"args\":{{\"trace\":\"{:016x}\"}}", self.trace));
        }
        out.push('}');
    }

    /// Render as one NDJSON line (no trailing newline): the slow-trace
    /// dump format.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!("{{\"trace\":\"{:016x}\",\"name\":", self.trace));
        push_json_str(&mut out, &self.name);
        out.push_str(&format!(
            ",\"ph\":\"{}\",\"ts\":{},\"tid\":{}}}",
            self.phase.letter(),
            self.ts_micros,
            self.lane
        ));
        out
    }
}

/// A drained batch of trace events (see `Recorder::take_trace`).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in record order (globally ordered: the buffer is appended
    /// under one lock, so per-lane timestamps are monotone).
    pub events: Vec<TraceEvent>,
    /// Events discarded because the buffer hit its capacity.
    pub dropped: u64,
}

impl Trace {
    /// Serialize as a Chrome `trace_event` JSON document, loadable by
    /// `chrome://tracing` and Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            ev.push_chrome(&mut out);
        }
        out.push_str("\n]}\n");
        out
    }

    /// The subset of events attributed to `id`, in record order.
    pub fn events_for(&self, id: TraceId) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.trace == id.0).collect()
    }
}

/// What [`validate_chrome_trace`] measured about a well-formed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total begin/end/instant events.
    pub events: usize,
    /// Distinct lanes (Chrome `tid`s) that recorded at least one event.
    pub lanes: usize,
    /// Deepest begin/end nesting reached on any single lane.
    pub max_depth: usize,
}

/// Check that `text` is a valid Chrome `trace_event` document with
/// properly nested begin/end pairs: every `E` closes the matching open
/// `B` on its lane, no lane ends with an open span, and per-lane
/// timestamps never go backwards.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = json::parse(text).map_err(|e| format!("not JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing \"traceEvents\" array")?;
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
    let mut last_ts: std::collections::BTreeMap<u64, u64> = Default::default();
    let mut max_depth = 0usize;
    let mut counted = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let field = |key: &str| ev.get(key);
        let name = field("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = field("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let tid = field("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let ts = field("ts")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let prev = last_ts.entry(tid).or_insert(0);
        if ts < *prev {
            return Err(format!(
                "event {i} ({name}): lane {tid} time went backwards"
            ));
        }
        *prev = ts;
        let stack = stacks.entry(tid).or_default();
        match ph {
            "B" => {
                stack.push(name.to_string());
                max_depth = max_depth.max(stack.len());
            }
            "E" => match stack.pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return Err(format!(
                        "event {i}: lane {tid} closes {name:?} while {open:?} is open"
                    ))
                }
                None => {
                    return Err(format!(
                        "event {i}: lane {tid} closes {name:?} with nothing open"
                    ))
                }
            },
            "i" | "M" => {}
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
        counted += 1;
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("lane {tid} ends with {open:?} still open"));
        }
    }
    Ok(TraceSummary {
        events: counted,
        lanes: last_ts.len(),
        max_depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn ids_are_unique_and_hex_renders_16_digits() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        assert_eq!(a.to_hex().len(), 16);
        assert_eq!(TraceId::from_u64(a.as_u64()), a);
    }

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current(), 0);
        let outer = TraceId::mint();
        let inner = TraceId::mint();
        {
            let _o = scope(outer);
            assert_eq!(current(), outer.as_u64());
            {
                let _i = scope(inner);
                assert_eq!(current(), inner.as_u64());
            }
            assert_eq!(current(), outer.as_u64());
        }
        assert_eq!(current(), 0);
    }

    #[test]
    fn events_attribute_to_the_active_scope_and_export_validly() {
        let r = Recorder::new();
        assert!(r.enable_tracing(1024));
        let id = TraceId::mint();
        {
            let _s = scope(id);
            let _outer = r.trace_span("outer");
            let _inner = r.trace_span("inner");
        }
        r.trace_instant("unattributed");
        let trace = r.take_trace();
        assert_eq!(trace.events.len(), 5);
        assert_eq!(trace.events_for(id).len(), 4);
        let summary = validate_chrome_trace(&trace.to_chrome_json()).unwrap();
        assert_eq!(summary.events, 5);
        assert_eq!(summary.max_depth, 2);
        assert_eq!(summary.lanes, 1);
        for line in trace.events.iter().map(TraceEvent::to_ndjson) {
            crate::json::parse(&line).expect("NDJSON line parses");
        }
    }

    #[test]
    fn unbalanced_and_misnested_traces_are_rejected() {
        let open = r#"{"traceEvents":[{"name":"a","ph":"B","ts":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(open).is_err());
        let crossed = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"tid":1},
            {"name":"b","ph":"B","ts":2,"tid":1},
            {"name":"a","ph":"E","ts":3,"tid":1},
            {"name":"b","ph":"E","ts":4,"tid":1}]}"#;
        assert!(validate_chrome_trace(crossed).is_err());
        let backwards = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":5,"tid":1},
            {"name":"a","ph":"E","ts":3,"tid":1}]}"#;
        assert!(validate_chrome_trace(backwards).is_err());
        // Separate lanes nest independently.
        let lanes = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"tid":1},
            {"name":"b","ph":"B","ts":2,"tid":2},
            {"name":"b","ph":"E","ts":3,"tid":2},
            {"name":"a","ph":"E","ts":4,"tid":1}]}"#;
        let summary = validate_chrome_trace(lanes).unwrap();
        assert_eq!(summary.lanes, 2);
        assert_eq!(summary.max_depth, 1);
    }

    #[test]
    fn buffer_capacity_bounds_growth() {
        let r = Recorder::new();
        assert!(r.enable_tracing(4));
        for _ in 0..10 {
            r.trace_instant("tick");
        }
        let trace = r.take_trace();
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.dropped, 6);
    }

    #[test]
    fn tracing_cannot_be_enabled_on_the_shared_disabled_recorder() {
        let r = Recorder::disabled();
        assert!(!r.enable_tracing(16));
        assert!(!r.is_tracing());
        r.trace_instant("nope");
        let _guard = r.trace_span("nope");
        assert!(r.take_trace().events.is_empty());
    }
}
