//! The stable metric-name schema.
//!
//! Every instrumented layer records under these dotted names; DESIGN.md
//! §"Observability" documents the semantics and
//! `schema/metrics.schema.json` pins the subset a `pgr compress
//! --metrics json` run must emit (CI validates it, so renaming a metric
//! is a deliberate, reviewed act — not silent drift).
//!
//! One family is dynamic: per-opcode VM dispatch counters are
//! `vm.dispatch.<OPCODE>` (e.g. `vm.dispatch.ADDU`), built with
//! [`vm_dispatch`].

/// Trainer: programs parsed into the forest.
pub const TRAIN_PROGRAMS: &str = "train.programs";
/// Trainer: straight-line segments added to the forest.
pub const TRAIN_SEGMENTS: &str = "train.segments";
/// Trainer: tokens across all training segments.
pub const TRAIN_TOKENS: &str = "train.tokens";
/// Expander: greedy-loop iterations (heap pops examined).
pub const TRAIN_INLINE_ITERATIONS: &str = "train.inline_iterations";
/// Expander: edge contractions performed.
pub const TRAIN_CONTRACTIONS: &str = "train.contractions";
/// Expander: rules created by inlining.
pub const TRAIN_RULES_ADDED: &str = "train.rules_added";
/// Expander: inlines that reused an identical live rule.
pub const TRAIN_RULES_REUSED: &str = "train.rules_reused";
/// Expander: subsumed rules removed.
pub const TRAIN_RULES_REMOVED: &str = "train.rules_removed";
/// Expander: profitable edges skipped because their non-terminal hit the
/// per-NT rule budget (§4.1 saturation).
pub const TRAIN_SATURATED_SKIPS: &str = "train.saturated_skips";
/// Expander gauge: largest rules-per-non-terminal after expansion.
pub const TRAIN_RULES_PER_NT_PEAK: &str = "train.rules_per_nt_peak";

/// Earley: segments parsed (one per `parse` call).
pub const EARLEY_SEGMENTS_PARSED: &str = "earley.segments_parsed";
/// Earley: input tokens across all parses.
pub const EARLEY_TOKENS: &str = "earley.tokens";
/// Earley: items added by prediction.
pub const EARLEY_ITEMS_PREDICTED: &str = "earley.items_predicted";
/// Earley: items advanced over a terminal.
pub const EARLEY_ITEMS_SCANNED: &str = "earley.items_scanned";
/// Earley: completion events processed (including cost improvements).
pub const EARLEY_ITEMS_COMPLETED: &str = "earley.items_completed";
/// Earley: parses that failed with `NoParse`.
pub const EARLEY_NO_PARSE: &str = "earley.no_parse";
/// Earley: parses abandoned because they hit the configured work budget
/// (`EarleyBudget`); a normal degraded outcome, not an input error.
pub const EARLEY_BUDGET_EXCEEDED: &str = "earley.budget.exceeded";
/// Earley: parses abandoned because the request's `CancelToken` fired
/// (deadline passed or the owner cancelled); a degraded outcome like a
/// budget trip, not an input error.
pub const EARLEY_CANCELLED: &str = "earley.cancelled";
/// Earley gauge: chart size high-water mark (states in the fullest
/// column of any parse).
pub const EARLEY_CHART_STATES_PEAK: &str = "earley.chart_states_peak";
/// Earley: parses served by an already-warm [`ChartArena`] (scratch
/// reused instead of allocated).
pub const EARLEY_ARENA_REUSE: &str = "earley.arena.reuse";
/// Earley gauge: resident bytes of the precomputed flattened tables
/// (dense rules + prediction index), per parser.
pub const EARLEY_TABLE_BYTES: &str = "earley.table.bytes";
/// Earley gauge: chart-column high-water mark (longest segment + 1
/// across arena lifetimes).
pub const EARLEY_CHART_COLUMNS_PEAK: &str = "earley.chart.columns_peak";

/// Engine: `Compressor::compress` calls.
pub const COMPRESS_CALLS: &str = "compress.calls";
/// Engine: segments encoded (cache hits included).
pub const COMPRESS_SEGMENTS: &str = "compress.segments";
/// Engine: canonical input bytes.
pub const COMPRESS_ORIGINAL_BYTES: &str = "compress.original_bytes";
/// Engine: compressed output bytes.
pub const COMPRESS_COMPRESSED_BYTES: &str = "compress.compressed_bytes";
/// Engine: segments that failed to parse (or blew the Earley budget)
/// and were emitted as verbatim escapes instead.
pub const COMPRESS_FALLBACK_SEGMENTS: &str = "compress.fallback.segments";
/// Engine: derivation-cache poison recoveries (a worker panicked while
/// holding the cache lock; the cache was cleared and compression went
/// on).
pub const COMPRESS_CACHE_POISONED: &str = "compress.cache.poisoned";
/// Engine span: canonicalization phase.
pub const SPAN_COMPRESS_CANONICALIZE: &str = "compress.canonicalize";
/// Engine span: tokenize phase (summed across workers).
pub const SPAN_COMPRESS_TOKENIZE: &str = "compress.tokenize";
/// Engine span: Earley parse phase (summed across workers).
pub const SPAN_COMPRESS_PARSE: &str = "compress.parse";
/// Engine span: stream assembly and label rewriting.
pub const SPAN_COMPRESS_EMIT: &str = "compress.emit";

/// Decompressor: programs expanded back to original bytecode.
pub const DECOMPRESS_CALLS: &str = "decompress.calls";
/// Decompressor: original bytecode bytes reproduced.
pub const DECOMPRESS_BYTES: &str = "decompress.bytes";
/// Decompressor span: whole derivation-expansion pass.
pub const SPAN_DECOMPRESS: &str = "decompress";

/// Segment cache: answered from the memo.
pub const CACHE_HITS: &str = "cache.hits";
/// Segment cache: parsed fresh.
pub const CACHE_MISSES: &str = "cache.misses";
/// Segment cache gauge: resident entries.
pub const CACHE_ENTRIES: &str = "cache.entries";
/// Segment cache gauge: configured capacity.
pub const CACHE_CAPACITY: &str = "cache.capacity";

/// Validator: procedures checked.
pub const BYTECODE_VALIDATE_PROCS: &str = "bytecode.validate.procs";
/// Validator: instructions visited by the stack-discipline scan.
pub const BYTECODE_VALIDATE_INSNS: &str = "bytecode.validate.insns";
/// Rewrite pass: instructions visited.
pub const BYTECODE_REWRITE_VISITED: &str = "bytecode.rewrite.visited";
/// Rewrite pass: instructions removed.
pub const BYTECODE_REWRITE_REMOVED: &str = "bytecode.rewrite.removed";
/// Rewrite pass: instructions replaced.
pub const BYTECODE_REWRITE_REPLACED: &str = "bytecode.rewrite.replaced";
/// Rewrite pass: label-table entries re-pointed at moved markers.
pub const BYTECODE_REWRITE_LABEL_FIXUPS: &str = "bytecode.rewrite.label_fixups";

/// VM: executed operator/derivation steps (equals `RunResult::steps`).
pub const VM_STEPS: &str = "vm.steps";
/// VM: bytecoded procedure calls.
pub const VM_CALLS: &str = "vm.calls";
/// VM: rules selected during `interp_nt` derivation walks.
pub const VM_RULES_WALKED: &str = "vm.rules_walked";
/// VM gauge: procedure-call depth high-water mark.
pub const VM_CALL_DEPTH_PEAK: &str = "vm.call_depth_peak";
/// VM gauge: `interp_nt` rule-walk depth high-water mark.
pub const VM_WALK_DEPTH_PEAK: &str = "vm.walk_depth_peak";
/// VM gauge: operand-stack depth high-water mark.
pub const VM_OPERAND_STACK_PEAK: &str = "vm.operand_stack_peak";
/// VM: decoded segments replayed from the `interp_nt` segment cache.
pub const VM_SEG_CACHE_HITS: &str = "vm.segment_cache.hits";
/// VM: segment starts walked fresh (no cached decode, or not enough
/// fuel for an exact replay).
pub const VM_SEG_CACHE_MISSES: &str = "vm.segment_cache.misses";
/// VM gauge: resident bytes of cached segment decodes.
pub const VM_SEG_CACHE_BYTES: &str = "vm.segment_cache.bytes";
/// VM gauge: resident segment-cache entries (negative entries included).
pub const VM_SEG_CACHE_ENTRIES: &str = "vm.segment_cache.entries";
/// VM gauge: resident bytes of the precompiled rule-program snapshot.
pub const VM_RULEPROG_BYTES: &str = "vm.ruleprog.bytes";
/// VM gauge: micro-ops in the precompiled rule-program snapshot.
pub const VM_RULEPROG_MICRO_OPS: &str = "vm.ruleprog.micro_ops";
/// VM: verbatim-escape segments executed directly (raw bytecode embedded
/// by the compressor's graceful-degradation fallback).
pub const VM_VERBATIM_SEGMENTS: &str = "vm.verbatim.segments";
/// VM: hot segments compiled to tier-2 superinstruction programs.
pub const VM_TIER2_COMPILED: &str = "vm.tier2.compiled";
/// VM: superinstructions emitted across all tier-2 compilations.
pub const VM_TIER2_FUSED_OPS: &str = "vm.tier2.fused_ops";
/// VM gauge: resident bytes of compiled tier-2 programs.
pub const VM_TIER2_BYTES: &str = "vm.tier2.bytes";
/// VM: segment replays served from a tier-2 program (fused or
/// deoptimized).
pub const VM_TIER2_HITS: &str = "vm.tier2.hits";
/// VM: tiered replays that fell back to the per-step tier-1 loop
/// (telemetry or tracing active).
pub const VM_TIER2_DEOPTS: &str = "vm.tier2.deopts";
/// Prefix of the per-opcode dispatch counter family.
pub const VM_DISPATCH_PREFIX: &str = "vm.dispatch.";

/// Serve: connections accepted by the request server.
pub const SERVE_CONNECTIONS: &str = "serve.connections";
/// Serve: requests handled, across all operations and outcomes.
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Serve: requests answered with an error response (bad JSON, unknown
/// grammar, VM faults); transport-level drops are not counted.
pub const SERVE_ERRORS: &str = "serve.errors";
/// Serve: requests whose declared Earley budget exceeded the server's
/// ceiling and was clamped down before admission.
pub const SERVE_BUDGET_CLAMPED: &str = "serve.budget.clamped";
/// Serve gauge: grammars resident in the server's engine map (each holds
/// one shared derivation cache).
pub const SERVE_GRAMMARS_LOADED: &str = "serve.grammars.loaded";
/// Serve histogram: end-to-end latency of `compress` requests, in
/// microseconds.
pub const SERVE_REQUEST_COMPRESS_MICROS: &str = "serve.request.compress.micros";
/// Serve histogram: end-to-end latency of `decompress` requests, in
/// microseconds.
pub const SERVE_REQUEST_DECOMPRESS_MICROS: &str = "serve.request.decompress.micros";
/// Serve histogram: end-to-end latency of `run` requests, in
/// microseconds.
pub const SERVE_REQUEST_RUN_MICROS: &str = "serve.request.run.micros";
/// Serve histogram: end-to-end latency of `stats` requests, in
/// microseconds.
pub const SERVE_REQUEST_STATS_MICROS: &str = "serve.request.stats.micros";
/// Serve: `compress` requests answered with an error response.
pub const SERVE_REQUEST_COMPRESS_ERRORS: &str = "serve.request.compress.errors";
/// Serve: `decompress` requests answered with an error response.
pub const SERVE_REQUEST_DECOMPRESS_ERRORS: &str = "serve.request.decompress.errors";
/// Serve: `run` requests answered with an error response.
pub const SERVE_REQUEST_RUN_ERRORS: &str = "serve.request.run.errors";
/// Serve: `stats` requests answered with an error response.
pub const SERVE_REQUEST_STATS_ERRORS: &str = "serve.request.stats.errors";
/// Serve: requests over the `--slow-ms` threshold whose span tree was
/// dumped to the slow-trace NDJSON log.
pub const SERVE_SLOW_REQUESTS: &str = "serve.slow.requests";
/// Serve: requests (or connection attempts) refused by admission control
/// — the pending queue or connection table was full — and answered with
/// an in-band `overloaded` error instead of queueing unboundedly.
pub const SERVE_REJECTED_OVERLOAD: &str = "serve.rejected.overload";
/// Serve gauge: pending-request queue depth high-water mark (requests
/// accepted but not yet dispatched to a worker).
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue.depth";
/// Serve histogram: requests coalesced per engine dispatch — every
/// same-grammar compress batch observes its size here (1 = unbatched).
pub const SERVE_BATCH_SIZE: &str = "serve.batch.size";
/// Serve histogram: how long a batch's oldest request waited between
/// arrival and engine dispatch, in microseconds.
pub const SERVE_BATCH_WAIT_MICROS: &str = "serve.batch.wait_micros";
/// Serve: engines evicted from the sharded engine map by the
/// `--max-engines` LRU bound (the grammar reloads on next use).
pub const SERVE_ENGINES_EVICTED: &str = "serve.engines.evicted";
/// Serve: requests that ran past their deadline and were answered with
/// an in-band `deadline_exceeded` error by the worker (cooperative
/// cancellation fired inside the engine or VM).
pub const SERVE_DEADLINE_EXCEEDED: &str = "serve.deadline.exceeded";
/// Serve: requests whose worker missed the deadline by the watchdog's
/// grace factor, force-expired by the reactor (the client got the
/// `deadline_exceeded` answer; the late worker result was discarded).
pub const SERVE_DEADLINE_FORCE_EXPIRED: &str = "serve.deadline.force_expired";
/// Serve: connections evicted by `--idle-timeout-ms` after sitting
/// silent with no in-flight work.
pub const SERVE_CONN_IDLE_CLOSED: &str = "serve.conn.idle_closed";
/// Serve: connections that exceeded `--max-line-bytes` on a single
/// unterminated request line — answered in-band then closed.
pub const SERVE_LINE_OVERFLOW: &str = "serve.line.overflow";
/// Prefix of the per-operation serve request metric family
/// (`serve.request.<op>.micros` / `serve.request.<op>.errors`).
pub const SERVE_REQUEST_PREFIX: &str = "serve.request.";

/// The per-opcode dispatch counter name for `opcode_name`
/// (`vm.dispatch.ADDU`, …).
pub fn vm_dispatch(opcode_name: &str) -> String {
    format!("{VM_DISPATCH_PREFIX}{opcode_name}")
}

/// The latency-histogram name for serve operation `op`
/// (`serve.request.compress.micros`, …).
pub fn serve_request_micros(op: &str) -> String {
    format!("{SERVE_REQUEST_PREFIX}{op}.micros")
}

/// The error-counter name for serve operation `op`
/// (`serve.request.compress.errors`, …).
pub fn serve_request_errors(op: &str) -> String {
    format!("{SERVE_REQUEST_PREFIX}{op}.errors")
}
