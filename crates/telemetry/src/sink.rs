//! Where metric reports go: a tiny sink abstraction with human-table and
//! JSON implementations.

use crate::metrics::Metrics;
use std::io::{self, Write};

/// A destination for one [`Metrics`] report.
///
/// Sinks are deliberately dumb — rendering lives on [`Metrics`] itself
/// (`to_json`, `render_table`), so a custom sink (a log shipper, a CI
/// artifact writer) only decides *where* bytes go.
pub trait Sink {
    /// Emit one report.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying writer.
    fn emit(&mut self, metrics: &Metrics) -> io::Result<()>;
}

/// Render as an aligned, human-readable table.
pub struct TableSink<W: Write>(pub W);

impl<W: Write> Sink for TableSink<W> {
    fn emit(&mut self, metrics: &Metrics) -> io::Result<()> {
        self.0.write_all(metrics.render_table().as_bytes())
    }
}

/// Render as the stable `pgr-metrics/2` JSON document.
pub struct JsonSink<W: Write>(pub W);

impl<W: Write> Sink for JsonSink<W> {
    fn emit(&mut self, metrics: &Metrics) -> io::Result<()> {
        self.0.write_all(metrics.to_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sinks_write_something() {
        let mut m = Metrics::new();
        m.add("x", 1);
        let mut table = Vec::new();
        TableSink(&mut table).emit(&m).unwrap();
        assert!(String::from_utf8(table).unwrap().contains('x'));
        let mut json = Vec::new();
        JsonSink(&mut json).emit(&m).unwrap();
        crate::json::parse(std::str::from_utf8(&json).unwrap()).unwrap();
    }
}
