//! The disabled-recorder fast path must stay zero-cost after the
//! histogram/tracing upgrades: one relaxed atomic load per flush site,
//! no allocations (counted by a wrapping global allocator), and no
//! clock reads (a `Stopwatch::start_if(false)` never starts).

use pgr_telemetry::{Recorder, Stopwatch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: defers entirely to the system allocator; only a counter is
// added on the allocation path.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING: Counting = Counting;

#[test]
fn disabled_recorder_fast_path_never_allocates_or_reads_the_clock() {
    let r = Recorder::disabled();
    assert!(!r.is_enabled());
    assert!(!r.is_tracing());
    // A disabled handle refuses to start tracing — the fast path must
    // stay fast even if a caller tries.
    assert!(!r.enable_tracing(1024));

    // Warm up once so lazily-initialized runtime state (if any) is paid
    // for outside the measured window.
    r.add("warm.up", 1);
    r.observe("warm.up.micros", 1);
    drop(r.span("warm.up.span"));
    drop(r.trace_span("warm.up.trace"));

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        r.add("fast.counter", i);
        r.observe("fast.hist", i);
        r.gauge_max("fast.gauge", i);
        r.trace_begin("fast.begin");
        r.trace_end("fast.begin");
        drop(r.span("fast.span"));
        drop(r.trace_span("fast.trace"));
        let sw = Stopwatch::start_if(r.is_enabled());
        assert!(
            !sw.is_running(),
            "a disabled stopwatch must never touch the clock"
        );
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "the disabled telemetry fast path allocated"
    );
}
