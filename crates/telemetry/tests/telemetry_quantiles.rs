//! Property tests for the log-bucketed histogram: quantile estimates
//! must land inside the bucket the exact quantile falls in, for
//! arbitrary inputs and arbitrary merge splits.

use pgr_telemetry::Hist;
use proptest::prelude::*;

/// The exact q-quantile by sorting: the value at ceil(q * n) rank
/// (1-based), the same rank convention `Hist::quantile` estimates.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Both bounds of the log2 bucket holding `v` — the guarantee is that
/// the estimate lands in the same bucket (or exactly clamps to observed
/// min/max).
fn bucket_bounds(v: u64) -> (u64, u64) {
    if v == 0 {
        return (0, 0);
    }
    let b = 64 - v.leading_zeros();
    if b >= 64 {
        return (1 << 63, u64::MAX);
    }
    (1u64 << (b - 1), (1u64 << b) - 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantile_estimates_stay_within_one_bucket_of_exact(
        values in prop::collection::vec(0u64..=1_000_000_000, 1..300),
    ) {
        const QS: [f64; 8] = [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0];
        let mut h = Hist::default();
        for &v in &values {
            h.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();

        for q in QS {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q);
            let (lo, hi) = bucket_bounds(exact);
            // Clamping to observed min/max can pull the estimate out of
            // the bucket — but only toward the true order statistics.
            let lo = lo.min(*sorted.last().unwrap()).max(sorted[0].min(lo));
            prop_assert!(
                (lo <= est && est <= hi) || est == sorted[0] || est == *sorted.last().unwrap(),
                "q={q}: estimate {est} not in bucket [{lo},{hi}] of exact {exact}"
            );
        }
    }

    #[test]
    fn merged_histograms_agree_with_one_big_histogram(
        a in prop::collection::vec(0u64..=1_000_000, 0..100),
        b in prop::collection::vec(0u64..=1_000_000, 0..100),
    ) {
        let mut ha = Hist::default();
        let mut hb = Hist::default();
        let mut hall = Hist::default();
        for &v in &a {
            ha.observe(v);
            hall.observe(v);
        }
        for &v in &b {
            hb.observe(v);
            hall.observe(v);
        }
        let merged = ha.merge(hb);
        prop_assert_eq!(merged, hall);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in prop::collection::vec(0u64..=u64::MAX / 2, 1..200),
    ) {
        let mut h = Hist::default();
        for &v in &values {
            h.observe(v);
        }
        let (p50, p90, p95, p99) = (h.p50(), h.p90(), h.p95(), h.p99());
        prop_assert!(p50 <= p90 && p90 <= p95 && p95 <= p99);
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        prop_assert!(lo <= p50 && p99 <= hi);
    }
}

#[test]
fn empty_histogram_quantiles_are_zero() {
    let h = Hist::default();
    assert_eq!(h.p50(), 0);
    assert_eq!(h.p99(), 0);
    assert_eq!(h.min_or_zero(), 0);
}
