//! The end-to-end pipeline facade: train → compress → decompress.

use crate::canonical::{canonicalize_program, CanonError};
use crate::compress::{
    decompress_program, CompressError, CompressedProgram, CompressionStats, DecompressError,
};
use crate::engine::{Compressor, CompressorConfig};
use crate::expander::{expand_with, ExpanderConfig, ExpansionStats};
use pgr_bytecode::{validate_program_with, Program, ValidateError};
use pgr_grammar::encode::grammar_size;
use pgr_grammar::forest::ForestParseError;
use pgr_grammar::initial::{tokenize_segment, TokenizeError};
use pgr_grammar::{Forest, Grammar, InitialGrammar, Nt};
use pgr_telemetry::{names, Metrics, Recorder};
use std::fmt;

/// Training configuration.
#[derive(Debug, Clone, Default)]
pub struct TrainConfig {
    /// Expander knobs (rule budget, frequency threshold, …).
    pub expander: ExpanderConfig,
    /// Telemetry destination for `train.*` counters and the
    /// `train`/`train.ingest`/`train.expand` spans. Defaults to the
    /// shared disabled recorder (no overhead).
    pub recorder: Recorder,
}

/// An error while training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// A training program failed validation.
    Validate(ValidateError),
    /// A training program failed canonicalization.
    Canon(CanonError),
    /// A training segment failed to tokenize.
    Tokenize(TokenizeError),
    /// A training segment is not well-formed postfix code.
    Parse(ForestParseError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Validate(e) => write!(f, "{e}"),
            TrainError::Canon(e) => write!(f, "{e}"),
            TrainError::Tokenize(e) => write!(f, "{e}"),
            TrainError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Validate(e) => Some(e),
            TrainError::Canon(e) => Some(e),
            TrainError::Tokenize(e) => Some(e),
            TrainError::Parse(e) => Some(e),
        }
    }
}

/// The product of training: the expanded grammar and everything needed to
/// compress, decompress, and generate interpreters.
#[derive(Debug, Clone)]
pub struct Trained {
    initial: InitialGrammar,
    expanded: Grammar,
    /// What the expansion run did.
    pub stats: ExpansionStats,
}

impl Trained {
    /// The expanded (ambiguous) grammar.
    pub fn expanded(&self) -> &Grammar {
        &self.expanded
    }

    /// The initial grammar and its non-terminal handles. Its rule ids are
    /// valid in [`Trained::expanded`] too (expansion only adds rules).
    pub fn initial(&self) -> &InitialGrammar {
        &self.initial
    }

    /// The start non-terminal.
    pub fn start(&self) -> Nt {
        self.initial.nt_start
    }

    /// Serialized size of the expanded grammar in bytes (the table the
    /// compressed-bytecode interpreter carries, §6).
    pub fn grammar_size(&self) -> usize {
        grammar_size(&self.expanded)
    }

    /// Build a reusable compression engine over the expanded grammar with
    /// default [`CompressorConfig`]. Prefer this (and keep the engine
    /// around) when compressing more than one program: the parser tables
    /// are built once and the derivation cache warms across calls.
    pub fn compressor(&self) -> Compressor<'_> {
        Compressor::new(&self.expanded, self.start())
    }

    /// Build a reusable compression engine with explicit configuration
    /// (thread count, cache capacity, timing collection).
    pub fn compressor_with(&self, config: CompressorConfig) -> Compressor<'_> {
        Compressor::with_config(&self.expanded, self.start(), config)
    }

    /// Build a reusable compression engine that reports `compress.*`,
    /// `earley.*`, and `cache.*` metrics into `recorder`.
    pub fn compressor_with_recorder(
        &self,
        config: CompressorConfig,
        recorder: Recorder,
    ) -> Compressor<'_> {
        Compressor::with_recorder(&self.expanded, self.start(), config, recorder)
    }

    /// Compress a program; returns the compressed image and size stats.
    ///
    /// This is a convenience wrapper that builds a single-use
    /// [`Compressor`]; batch callers should build one via
    /// [`Trained::compressor`] and reuse it.
    ///
    /// # Errors
    ///
    /// See [`CompressError`].
    pub fn compress(
        &self,
        program: &Program,
    ) -> Result<(CompressedProgram, CompressionStats), CompressError> {
        self.compressor().compress(program)
    }

    /// Decompress a compressed program back to (canonical) bytecode.
    ///
    /// # Errors
    ///
    /// See [`DecompressError`].
    pub fn decompress(&self, compressed: &CompressedProgram) -> Result<Program, DecompressError> {
        decompress_program(&self.expanded, self.start(), compressed)
    }
}

/// Train an expanded grammar from sample programs (paper §2: the corpus
/// "is assumed to represent statistically the populations of the programs
/// to be coded in the new bytecode").
///
/// # Errors
///
/// Fails if any training program is invalid; see [`TrainError`].
pub fn train(programs: &[&Program], config: &TrainConfig) -> Result<Trained, TrainError> {
    let recorder = &config.recorder;
    let _train_span = recorder.span("train");
    let initial = InitialGrammar::build();
    let mut expanded = initial.grammar.clone();
    let mut forest = Forest::new();

    let mut segments = 0u64;
    let mut tokens_total = 0u64;
    {
        let _ingest_span = recorder.span("ingest");
        for &program in programs {
            validate_program_with(program, recorder).map_err(TrainError::Validate)?;
            let canon = canonicalize_program(program).map_err(TrainError::Canon)?;
            for proc in &canon.procs {
                for range in proc.segments().expect("canonical code decodes") {
                    let tokens =
                        tokenize_segment(&proc.code[range]).map_err(TrainError::Tokenize)?;
                    segments += 1;
                    tokens_total += tokens.len() as u64;
                    forest
                        .add_segment(&initial, &tokens)
                        .map_err(TrainError::Parse)?;
                }
            }
        }
    }

    let stats = {
        let _expand_span = recorder.span("expand");
        // The trainer always reserves the start non-terminal's last
        // one-byte rule index for the verbatim-escape marker, so every
        // trained grammar supports graceful degradation on unparseable
        // segments (at worst one forgone inlined rule).
        let mut expander = config.expander.clone();
        expander.escape_reserve = Some(initial.nt_start);
        expand_with(&mut expanded, &mut forest, &expander, recorder)
    };
    if recorder.is_enabled() {
        let mut batch = Metrics::new();
        batch.add(names::TRAIN_PROGRAMS, programs.len() as u64);
        batch.add(names::TRAIN_SEGMENTS, segments);
        batch.add(names::TRAIN_TOKENS, tokens_total);
        recorder.record(batch);
    }
    Ok(Trained {
        initial,
        expanded,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgr_bytecode::asm::assemble;
    use pgr_bytecode::Opcode;

    /// A training program with strong regularities: many `x = x + 1`
    /// statements on locals, spread over procedures of varying length so
    /// intermediate inlined rules stay in use (a corpus of identical
    /// giant blocks would subsume them all into one monster rule).
    fn training_program() -> Program {
        let mut src = String::new();
        for p in 0..20usize {
            src.push_str(&format!("proc f{p} frame=64 args=0\n"));
            for i in 0..(1 + (p * 3) % 7) {
                let off = ((i * 4 + p) % 8) * 4;
                src.push_str(&format!(
                    "\tADDRLP {off}\n\tINDIRU\n\tLIT1 1\n\tADDU\n\tADDRLP {off}\n\tASGNU\n"
                ));
            }
            // Odd procedures get a counting loop, so the corpus also has
            // segments that do not end in RETV and branchy statements.
            if p % 2 == 1 {
                src.push_str("\tlabel 0\n");
                let off = (p % 8) * 4;
                src.push_str(&format!(
                    "\tADDRLP {off}\n\tINDIRU\n\tLIT1 1\n\tADDU\n\tADDRLP {off}\n\tASGNU\n"
                ));
                src.push_str(&format!(
                    "\tADDRLP {off}\n\tINDIRU\n\tLIT1 {}\n\tLTU\n\tBrTrue 0\n",
                    40 + p
                ));
            }
            src.push_str("\tRETV\nendproc\n");
        }
        src.push_str("entry f0\n");
        assemble(&src).unwrap()
    }

    /// A differently-shaped test program drawn from the same "statistics".
    fn test_program() -> Program {
        let mut src = String::from("proc f frame=32 args=4\n");
        for i in 0..6 {
            let off = (i % 2) * 4 + 8;
            src.push_str(&format!(
                "\tADDRLP {off}\n\tINDIRU\n\tLIT1 1\n\tADDU\n\tADDRLP {off}\n\tASGNU\n"
            ));
        }
        src.push_str("\tlabel 0\n\tLIT1 3\n\tPOPU\n\tBrTrue 0\n\tRETV\nendproc\nentry f\n");
        // BrTrue pops; make it well-formed: LIT1 3 BrTrue 0 — rewrite:
        let src = src.replace("\tLIT1 3\n\tPOPU\n\tBrTrue 0\n", "\tLIT1 3\n\tBrTrue 0\n");
        assemble(&src).unwrap()
    }

    #[test]
    fn training_then_compression_shrinks_similar_programs() {
        let train_prog = training_program();
        let trained = train(&[&train_prog], &TrainConfig::default()).unwrap();
        assert!(trained.stats.rules_added > 0);

        let test = test_program();
        let (cp, stats) = trained.compress(&test).unwrap();
        assert!(
            stats.compressed_code < stats.original_code,
            "expected compression, got {} -> {}",
            stats.original_code,
            stats.compressed_code
        );
        let back = trained.decompress(&cp).unwrap();
        assert_eq!(back, canonicalize_program(&test).unwrap());
    }

    #[test]
    fn training_program_compresses_best_on_itself() {
        let train_prog = training_program();
        let trained = train(&[&train_prog], &TrainConfig::default()).unwrap();
        let (_, stats) = trained.compress(&train_prog).unwrap();
        // The greedy forest shrink bounds the self-compression size from
        // above: the Earley encoder finds an optimal derivation, which
        // can only match or beat the contracted training forest.
        assert!(stats.compressed_code <= trained.stats.derivation_after);
        assert!(stats.ratio() < 0.5);
    }

    #[test]
    fn grammar_size_grows_with_training() {
        let train_prog = training_program();
        let trained = train(&[&train_prog], &TrainConfig::default()).unwrap();
        let untrained = train(&[], &TrainConfig::default()).unwrap();
        assert!(trained.grammar_size() > untrained.grammar_size());
        assert_eq!(untrained.stats.rules_added, 0);
    }

    #[test]
    fn training_reports_metrics_and_spans() {
        let train_prog = training_program();
        let recorder = Recorder::new();
        let config = TrainConfig {
            recorder: recorder.clone(),
            ..TrainConfig::default()
        };
        let trained = train(&[&train_prog], &config).unwrap();

        let m = recorder.snapshot();
        assert_eq!(m.counter(names::TRAIN_PROGRAMS), 1);
        assert!(m.counter(names::TRAIN_SEGMENTS) > 0);
        assert!(m.counter(names::TRAIN_TOKENS) > 0);
        assert_eq!(
            m.counter(names::TRAIN_RULES_ADDED),
            trained.stats.rules_added as u64
        );
        assert_eq!(
            m.counter(names::TRAIN_CONTRACTIONS),
            trained.stats.contractions as u64
        );
        assert!(m.counter(names::TRAIN_INLINE_ITERATIONS) > 0);
        assert!(m.gauge(names::TRAIN_RULES_PER_NT_PEAK).unwrap_or(0) > 0);
        assert!(m.counter(names::BYTECODE_VALIDATE_PROCS) > 0);
        // The span hierarchy nests ingest and expand under train.
        for span in ["train", "train.ingest", "train.expand"] {
            assert!(m.span_stat(span).is_some(), "missing span {span}");
        }
    }

    #[test]
    fn invalid_training_input_is_rejected() {
        let mut bad = training_program();
        bad.procs[0].code = vec![Opcode::ADDU as u8];
        let err = train(&[&bad], &TrainConfig::default()).unwrap_err();
        assert!(matches!(err, TrainError::Validate(_)));
    }

    #[test]
    fn branchy_programs_roundtrip() {
        let src = "proc main frame=4 args=0\n\
                   \tLIT1 1\n\tBrTrue 1\n\
                   \tlabel 0\n\
                   \tADDRLP 0\n\tINDIRU\n\tLIT1 1\n\tADDU\n\tADDRLP 0\n\tASGNU\n\
                   \tLIT1 1\n\tBrTrue 0\n\
                   \tlabel 1\n\
                   \tRETV\nendproc\nentry main\n";
        let prog = assemble(src).unwrap();
        let train_prog = training_program();
        let trained = train(&[&train_prog], &TrainConfig::default()).unwrap();
        let (cp, _) = trained.compress(&prog).unwrap();
        assert_eq!(cp.program.procs[0].labels.len(), 2);
        let back = trained.decompress(&cp).unwrap();
        assert_eq!(back, canonicalize_program(&prog).unwrap());
    }
}
