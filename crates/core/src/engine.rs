//! The reusable compression engine.
//!
//! [`Compressor`] owns everything that is expensive to build and cheap to
//! share: the [`ShortestParser`] (whose FIRST-filtered prediction tables
//! cost a grammar walk), the rule-index map used to serialize derivations,
//! and a bounded memo cache mapping tokenized segments to their derivation
//! bytes. Construct it once per trained grammar and reuse it across many
//! programs — the paper's pipeline compresses whole corpora under one
//! grammar, and identical straight-line segments (prologues, `x = x + 1`
//! statements, epilogues) recur heavily across procedures.
//!
//! Within one [`Compressor::compress`] call the per-segment Earley parses
//! are independent, so they fan out across a small worker pool
//! ([`CompressorConfig::threads`]); results are reassembled in segment
//! order, which makes the output **byte-identical for every thread count**
//! (the integration tests assert this). Statistics are computed per
//! segment and combined with [`CompressionStats::merge`] — a commutative
//! monoid fold — instead of threading a `&mut` accumulator through the
//! pipeline.
//!
//! Two hot-path mechanics keep the fan-out cheap. Each worker owns one
//! [`ChartArena`] for its whole stint, so Earley scratch is allocated
//! once per worker and merely cleared between segments
//! ([`ShortestParser::parse_into`]). And segments are dispatched in
//! contiguous *batches* of roughly [`CompressorConfig::batch_bytes`]
//! input bytes: bytecode corpora are dominated by 3–15-byte statements,
//! and batching amortizes the per-job bookkeeping over many of them
//! while still spreading long procedures across the pool (batches are
//! strided, results are keyed by job index, so the output bytes never
//! depend on either knob).
//!
//! The worker pool is scoped `std::thread` fan-out rather than a rayon
//! dependency: the build environment vendors no external crates, and the
//! strided batch split below gives the same determinism guarantees.

use crate::canonical::canonicalize_program;
use crate::compress::{decompress_program, CompressError, CompressedProgram, CompressionStats};
use pgr_bytecode::{escape, instrs, Opcode, Procedure, Program};
use pgr_earley::{ChartArena, EarleyBudget, NoParse, ShortestParser};
use pgr_grammar::initial::tokenize_segment;
use pgr_grammar::{Grammar, Nt, Terminal};
use pgr_telemetry::faults::{self, FaultPoint};
use pgr_telemetry::{names, trace, CancelToken, Metrics, Recorder, Stopwatch};
use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Wall-clock cost of each compression phase, surfaced on
/// [`CompressionStats`] when [`CompressorConfig::collect_timings`] is set
/// or the engine carries an enabled [`Recorder`] (all zero otherwise, so
/// default-config stats stay comparable across runs). This struct is the
/// compatibility view of the `compress.*` timing spans the recorder
/// collects; the clock behind both is [`Stopwatch`], which never reads
/// the monotonic clock unless something is observing.
///
/// `tokenize` and `parse` are summed across worker threads, so with
/// `threads > 1` they measure aggregate CPU time, not elapsed time;
/// `canonicalize` and `emit` run on the calling thread and are elapsed
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimings {
    /// Canonicalization of the input program.
    pub canonicalize: Duration,
    /// Byte-stream → terminal-token conversion, per segment.
    pub tokenize: Duration,
    /// Shortest-derivation Earley parsing (the hot phase).
    pub parse: Duration,
    /// Stream assembly and label-table rewriting.
    pub emit: Duration,
}

impl PhaseTimings {
    /// Componentwise sum (the merge used by the stats monoid).
    pub fn merge(self, other: PhaseTimings) -> PhaseTimings {
        PhaseTimings {
            canonicalize: self.canonicalize + other.canonicalize,
            tokenize: self.tokenize + other.tokenize,
            parse: self.parse + other.parse,
            emit: self.emit + other.emit,
        }
    }
}

/// Tuning knobs for [`Compressor`]. Acts as its builder:
///
/// ```
/// use pgr_core::CompressorConfig;
/// let config = CompressorConfig::default()
///     .threads(2)
///     .segment_cache_capacity(512)
///     .collect_timings(true);
/// assert_eq!(config.threads, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressorConfig {
    /// Worker threads for segment encoding. `0` means one per available
    /// CPU; `1` disables fan-out entirely (no threads are spawned).
    pub threads: usize,
    /// Maximum number of tokenized segments memoized in the derivation
    /// cache. `0` disables the cache.
    pub segment_cache_capacity: usize,
    /// Approximate input bytes per dispatch batch: contiguous segments
    /// are grouped until their byte lengths reach this, and workers claim
    /// whole batches. `0` dispatches per segment. Never affects output
    /// bytes, only scheduling granularity.
    pub batch_bytes: usize,
    /// Whether to measure per-phase wall-clock time into
    /// [`CompressionStats::timings`].
    pub collect_timings: bool,
    /// Work budget for each per-segment Earley parse. Unlimited by
    /// default; a limited budget turns a pathological chart into a clean
    /// [`NoParse::BudgetExceeded`], which `fallback` then degrades
    /// through.
    pub earley_budget: EarleyBudget,
    /// Degrade gracefully on per-segment parse failures (no derivation,
    /// or budget exceeded) by emitting the segment as a verbatim escape
    /// (`pgr_bytecode::escape`) instead of failing the whole program.
    /// On by default; disable for strict, fail-fast behavior
    /// (`pgr compress --no-fallback`).
    pub fallback: bool,
}

impl Default for CompressorConfig {
    fn default() -> CompressorConfig {
        CompressorConfig {
            threads: 0,
            segment_cache_capacity: 4096,
            batch_bytes: 1024,
            collect_timings: false,
            earley_budget: EarleyBudget::UNLIMITED,
            fallback: true,
        }
    }
}

/// Staged construction of a [`CompressorConfig`].
///
/// The builder exists so embedders that assemble a config from many
/// sources (CLI flags, service admission policy, per-tenant overrides)
/// have one place to do it, and so future knobs can grow validation
/// without breaking the chainable-field style:
///
/// ```
/// use pgr_core::{CompressorConfig, EarleyBudget};
/// let config = CompressorConfig::builder()
///     .threads(2)
///     .batch_bytes(512)
///     .earley_budget(EarleyBudget::UNLIMITED.max_items(10_000))
///     .build();
/// assert_eq!(config.threads, 2);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CompressorConfigBuilder {
    config: CompressorConfig,
}

impl CompressorConfigBuilder {
    /// Set the worker-thread count (`0` = one per available CPU).
    pub fn threads(mut self, threads: usize) -> CompressorConfigBuilder {
        self.config.threads = threads;
        self
    }

    /// Set the segment-cache capacity (`0` disables caching).
    pub fn segment_cache_capacity(mut self, capacity: usize) -> CompressorConfigBuilder {
        self.config.segment_cache_capacity = capacity;
        self
    }

    /// Set the dispatch-batch size in input bytes (`0` = per segment).
    pub fn batch_bytes(mut self, bytes: usize) -> CompressorConfigBuilder {
        self.config.batch_bytes = bytes;
        self
    }

    /// Enable or disable per-phase timing collection.
    pub fn collect_timings(mut self, collect: bool) -> CompressorConfigBuilder {
        self.config.collect_timings = collect;
        self
    }

    /// Set the per-segment Earley work budget.
    pub fn earley_budget(mut self, budget: EarleyBudget) -> CompressorConfigBuilder {
        self.config.earley_budget = budget;
        self
    }

    /// Enable or disable verbatim-escape fallback on parse failures.
    pub fn fallback(mut self, fallback: bool) -> CompressorConfigBuilder {
        self.config.fallback = fallback;
        self
    }

    /// Finish, yielding the configured [`CompressorConfig`].
    pub fn build(self) -> CompressorConfig {
        self.config
    }
}

impl CompressorConfig {
    /// Start building a config from the defaults.
    pub fn builder() -> CompressorConfigBuilder {
        CompressorConfigBuilder::default()
    }

    /// Set the worker-thread count (`0` = one per available CPU).
    pub fn threads(mut self, threads: usize) -> CompressorConfig {
        self.threads = threads;
        self
    }

    /// Set the segment-cache capacity (`0` disables caching).
    pub fn segment_cache_capacity(mut self, capacity: usize) -> CompressorConfig {
        self.segment_cache_capacity = capacity;
        self
    }

    /// Set the dispatch-batch size in input bytes (`0` = per segment).
    pub fn batch_bytes(mut self, bytes: usize) -> CompressorConfig {
        self.batch_bytes = bytes;
        self
    }

    /// Enable or disable per-phase timing collection.
    pub fn collect_timings(mut self, collect: bool) -> CompressorConfig {
        self.collect_timings = collect;
        self
    }

    /// Set the per-segment Earley work budget.
    pub fn earley_budget(mut self, budget: EarleyBudget) -> CompressorConfig {
        self.earley_budget = budget;
        self
    }

    /// Enable or disable verbatim-escape fallback on parse failures.
    pub fn fallback(mut self, fallback: bool) -> CompressorConfig {
        self.fallback = fallback;
        self
    }
}

/// Observability counters for the segment memo cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Segments answered from the cache.
    pub hits: u64,
    /// Segments that had to be parsed.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Configured capacity (0 = cache disabled).
    pub capacity: usize,
}

/// Bounded FIFO memo: tokenized segment → derivation bytes.
///
/// FIFO (rather than LRU) keeps eviction O(1) without timestamp
/// bookkeeping; segment popularity in bytecode corpora is heavy-tailed
/// enough that the distinction is immaterial at the default capacity.
struct SegmentCache {
    map: HashMap<Vec<Terminal>, Vec<u8>>,
    order: VecDeque<Vec<Terminal>>,
    capacity: usize,
}

impl SegmentCache {
    fn new(capacity: usize) -> SegmentCache {
        SegmentCache {
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            order: VecDeque::new(),
            capacity,
        }
    }

    fn get(&self, tokens: &[Terminal]) -> Option<Vec<u8>> {
        self.map.get(tokens).cloned()
    }

    fn insert(&mut self, tokens: Vec<Terminal>, bytes: Vec<u8>) {
        if self.map.contains_key(&tokens) {
            return; // racing miss on another thread got here first
        }
        while self.map.len() >= self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.map.remove(&oldest);
        }
        self.order.push_back(tokens.clone());
        self.map.insert(tokens, bytes);
    }
}

/// One request of a cancellable batch dispatch
/// ([`Compressor::compress_batch_cancellable`]): a program, its work
/// quota, and the cancellation token its owner can fire.
pub struct BatchEntry<'p> {
    /// The program to compress.
    pub program: &'p Program,
    /// This entry's Earley work quota.
    pub budget: EarleyBudget,
    /// This entry's cancellation handle; [`CancelToken::never`] when the
    /// caller has no deadline.
    pub cancel: CancelToken,
}

/// One unit of parallel work: a straight-line segment of one procedure
/// of one batch entry. `entry` indexes the program the segment belongs
/// to, so a single fan-out can serve many programs at once
/// ([`Compressor::compress_batch`]).
struct Job {
    entry: usize,
    proc: usize,
    range: Range<usize>,
}

/// How a procedure's compressed stream is assembled: segments and label
/// markers in code order.
enum Event {
    /// Append the derivation bytes of this job.
    Segment(usize),
    /// A `LABELV` at this original offset: record the current output
    /// length as its compressed offset.
    Label(usize),
}

/// One batch entry's plan: its canonical program, the per-procedure
/// assembly scripts (whose [`Event::Segment`] indices address the
/// *global* job list), and the contiguous global job range the entry
/// owns.
struct EntryPlan {
    canon: Program,
    scripts: Vec<Vec<Event>>,
    canonicalize_time: Duration,
    job_range: Range<usize>,
}

/// Plan one canonical program: push one job per non-empty straight-line
/// segment onto the shared job list (tagged with `entry`) and return the
/// per-procedure assembly scripts.
fn plan_jobs(canon: &Program, entry: usize, jobs: &mut Vec<Job>) -> Vec<Vec<Event>> {
    let mut scripts: Vec<Vec<Event>> = Vec::with_capacity(canon.procs.len());
    for (pi, proc) in canon.procs.iter().enumerate() {
        let mut script = Vec::new();
        let mut seg_start = 0usize;
        for insn in instrs(&proc.code) {
            let insn = insn.expect("canonical code decodes");
            if insn.opcode == Opcode::LABELV {
                if insn.offset > seg_start {
                    script.push(Event::Segment(jobs.len()));
                    jobs.push(Job {
                        entry,
                        proc: pi,
                        range: seg_start..insn.offset,
                    });
                }
                script.push(Event::Label(insn.offset));
                seg_start = insn.offset + 1;
            }
        }
        if proc.code.len() > seg_start {
            script.push(Event::Segment(jobs.len()));
            jobs.push(Job {
                entry,
                proc: pi,
                range: seg_start..proc.code.len(),
            });
        }
        scripts.push(script);
    }
    scripts
}

/// The product of one encoded segment.
struct EncodedSegment {
    bytes: Vec<u8>,
    /// Whether the segment was emitted as a verbatim escape rather than
    /// a derivation (parse failure + fallback).
    fallback: bool,
    tokenize: Duration,
    parse: Duration,
}

/// A reusable compression engine over one expanded grammar.
///
/// See the [module docs](self) for the design; see
/// [`Trained::compressor`](crate::pipeline::Trained::compressor) for the
/// usual way to obtain one.
pub struct Compressor<'g> {
    grammar: &'g Grammar,
    start: Nt,
    parser: ShortestParser<'g>,
    index_map: Vec<usize>,
    threads: usize,
    batch_bytes: usize,
    collect_timings: bool,
    earley_budget: EarleyBudget,
    fallback: bool,
    /// Whether the grammar left rule index `0xFF` of the start
    /// non-terminal unassigned, making the verbatim marker unambiguous.
    verbatim_ok: bool,
    recorder: Recorder,
    cache: Option<Mutex<SegmentCache>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_poisoned: AtomicU64,
}

impl<'g> Compressor<'g> {
    /// Build an engine with the default [`CompressorConfig`].
    pub fn new(grammar: &'g Grammar, start: Nt) -> Compressor<'g> {
        Compressor::with_config(grammar, start, CompressorConfig::default())
    }

    /// Build an engine with explicit configuration.
    pub fn with_config(
        grammar: &'g Grammar,
        start: Nt,
        config: CompressorConfig,
    ) -> Compressor<'g> {
        Compressor::with_recorder(grammar, start, config, Recorder::disabled())
    }

    /// Build an engine that reports `compress.*` counters and spans,
    /// `cache.*` counters, and (via the embedded parser) `earley.*`
    /// metrics into `recorder`.
    pub fn with_recorder(
        grammar: &'g Grammar,
        start: Nt,
        config: CompressorConfig,
        recorder: Recorder,
    ) -> Compressor<'g> {
        let threads = match config.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        };
        Compressor {
            grammar,
            start,
            parser: ShortestParser::with_recorder(grammar, recorder.clone()),
            index_map: grammar.rule_index_map(),
            threads,
            batch_bytes: config.batch_bytes,
            collect_timings: config.collect_timings,
            earley_budget: config.earley_budget,
            fallback: config.fallback,
            verbatim_ok: grammar.rules_of(start).len() <= usize::from(escape::VERBATIM_MARKER),
            recorder,
            cache: (config.segment_cache_capacity > 0)
                .then(|| Mutex::new(SegmentCache::new(config.segment_cache_capacity))),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_poisoned: AtomicU64::new(0),
        }
    }

    /// Lock the segment cache, recovering from poisoning: a worker that
    /// panicked while holding the lock may have left a half-applied
    /// insert, so the recovered cache is cleared (correctness never
    /// depends on its contents) and `compress.cache.poisoned` counts the
    /// event. `Mutex::clear_poison` makes the recovery one-shot instead
    /// of firing on every subsequent lock.
    fn lock_cache<'a>(&self, cache: &'a Mutex<SegmentCache>) -> MutexGuard<'a, SegmentCache> {
        match cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                cache.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.map.clear();
                guard.order.clear();
                self.cache_poisoned.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    /// The telemetry handle this engine reports into (the shared disabled
    /// recorder unless built via [`Compressor::with_recorder`]).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Whether any phase timing is being observed — by
    /// [`CompressorConfig::collect_timings`] or by an enabled recorder.
    /// All `Instant::now` reads in the engine gate on this, so the
    /// default configuration never touches the clock.
    fn timings_on(&self) -> bool {
        self.collect_timings || self.recorder.is_enabled()
    }

    /// The grammar this engine encodes against.
    pub fn grammar(&self) -> &'g Grammar {
        self.grammar
    }

    /// The start non-terminal.
    pub fn start(&self) -> Nt {
        self.start
    }

    /// The resolved worker-thread count (never 0).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cache hit/miss/occupancy counters, accumulated over the engine's
    /// lifetime.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.cache_misses.load(Ordering::Relaxed),
            entries: self
                .cache
                .as_ref()
                .map(|c| self.lock_cache(c).map.len())
                .unwrap_or(0),
            capacity: self
                .cache
                .as_ref()
                .map(|c| self.lock_cache(c).capacity)
                .unwrap_or(0),
        }
    }

    /// How many times the segment cache recovered from lock poisoning
    /// (see `compress.cache.poisoned`).
    pub fn cache_poisonings(&self) -> u64 {
        self.cache_poisoned.load(Ordering::Relaxed)
    }

    /// Compress a program under the engine's grammar.
    ///
    /// The program is canonicalized first (see [`crate::canonical`]); the
    /// returned stats measure against the canonical form. Output is
    /// byte-identical for every `threads` setting.
    ///
    /// # Errors
    ///
    /// See [`CompressError`].
    pub fn compress(
        &self,
        program: &Program,
    ) -> Result<(CompressedProgram, CompressionStats), CompressError> {
        self.compress_budgeted(program, self.earley_budget)
    }

    /// Compress a program under a caller-supplied per-call
    /// [`EarleyBudget`], overriding the engine's configured budget.
    ///
    /// This is the multi-tenant entry point: a long-lived engine (one per
    /// loaded grammar, with a shared derivation cache) can serve requests
    /// with different work quotas — admission control picks the budget,
    /// and a request that blows it degrades to verbatim escapes (or a
    /// structured `NoParse::BudgetExceeded` with fallback off) without
    /// affecting any other request. The derivation cache stays shared and
    /// sound across budgets: only successful parses are cached, and a
    /// successful shortest-derivation parse is budget-invariant.
    ///
    /// # Errors
    ///
    /// See [`CompressError`].
    pub fn compress_budgeted(
        &self,
        program: &Program,
        budget: EarleyBudget,
    ) -> Result<(CompressedProgram, CompressionStats), CompressError> {
        self.compress_batch(&[(program, budget)])
            .pop()
            .expect("one entry in, one result out")
    }

    /// Compress a program under a per-call budget *and* a cancellation
    /// token: the serving path's entry point, where a request deadline
    /// must be able to stop an in-flight compression at the next segment
    /// or chart-column boundary.
    ///
    /// # Errors
    ///
    /// See [`CompressError`]; a fired token yields
    /// [`CompressError::Cancelled`].
    pub fn compress_cancellable(
        &self,
        program: &Program,
        budget: EarleyBudget,
        cancel: CancelToken,
    ) -> Result<(CompressedProgram, CompressionStats), CompressError> {
        self.compress_batch_cancellable(&[BatchEntry {
            program,
            budget,
            cancel,
        }])
        .pop()
        .expect("one entry in, one result out")
    }

    /// Compress several programs in one engine dispatch.
    ///
    /// All entries' segments are planned up front and fanned out across
    /// the worker pool as a *single* job list, so a batch of concurrent
    /// requests shares one parallel stride and one derivation-cache epoch
    /// instead of paying per-call dispatch overhead. Entries are
    /// independent: each gets its own `Result`, in input order, and a
    /// failing entry never affects its neighbours.
    ///
    /// Output is byte-identical to calling
    /// [`Compressor::compress_budgeted`] once per entry: segment encoding
    /// is deterministic given the grammar and budget, and the shared
    /// cache only ever holds successful (budget-invariant) parses.
    pub fn compress_batch(
        &self,
        entries: &[(&Program, EarleyBudget)],
    ) -> Vec<Result<(CompressedProgram, CompressionStats), CompressError>> {
        let never = CancelToken::never();
        let entries: Vec<BatchEntry<'_>> = entries
            .iter()
            .map(|&(program, budget)| BatchEntry {
                program,
                budget,
                cancel: never.clone(),
            })
            .collect();
        self.compress_batch_cancellable(&entries)
    }

    /// Like [`Compressor::compress_batch`], but each entry carries its
    /// own [`CancelToken`] — requests batched together can have
    /// different deadlines, and one entry's cancellation never affects
    /// its neighbours (they share the dispatch, not the token).
    ///
    /// Tokens are polled at segment boundaries and (inside the parser)
    /// at chart-column boundaries; a fired token yields
    /// [`CompressError::Cancelled`] for that entry. Cancellation never
    /// degrades to verbatim fallback: the owner asked for the work to
    /// stop.
    pub fn compress_batch_cancellable(
        &self,
        entries: &[BatchEntry<'_>],
    ) -> Vec<Result<(CompressedProgram, CompressionStats), CompressError>> {
        let timed = self.timings_on();

        let cache_hits_before = self.cache_hits.load(Ordering::Relaxed);
        let cache_misses_before = self.cache_misses.load(Ordering::Relaxed);
        let cache_poisoned_before = self.cache_poisoned.load(Ordering::Relaxed);

        // Plan: per entry, one job per non-empty straight-line segment,
        // plus the assembly script (segments and labels in code order)
        // per procedure. Jobs land in one flat list — each entry's jobs
        // are contiguous at `job_range` — so a single fan-out covers the
        // whole batch.
        let mut jobs: Vec<Job> = Vec::new();
        let mut plans: Vec<Result<EntryPlan, CompressError>> = Vec::with_capacity(entries.len());
        for (entry, request) in entries.iter().enumerate() {
            // A request whose deadline already passed while queued never
            // reaches canonicalization — the cheapest cancellation point.
            if request.cancel.is_cancelled() {
                plans.push(Err(CompressError::Cancelled {
                    elapsed_ms: request.cancel.elapsed_ms(),
                }));
                continue;
            }
            let trace_canon = self.recorder.trace_span(names::SPAN_COMPRESS_CANONICALIZE);
            let sw = Stopwatch::start_if(timed);
            let canon = match canonicalize_program(request.program) {
                Ok(canon) => canon,
                Err(error) => {
                    plans.push(Err(error.into()));
                    continue;
                }
            };
            let canonicalize_time = sw.elapsed();
            drop(trace_canon);

            let job_start = jobs.len();
            let scripts = plan_jobs(&canon, entry, &mut jobs);
            plans.push(Ok(EntryPlan {
                canon,
                scripts,
                canonicalize_time,
                job_range: job_start..jobs.len(),
            }));
        }
        let budgets: Vec<EarleyBudget> = entries.iter().map(|e| e.budget).collect();
        let cancels: Vec<&CancelToken> = entries.iter().map(|e| &e.cancel).collect();

        // Encode: fan every entry's segments out across the worker pool
        // in one stride.
        let trace_encode = self.recorder.trace_span("compress.encode");
        let results = self.run_jobs(&plans, &jobs, &budgets, &cancels);
        let mut results: Vec<Option<Result<EncodedSegment, CompressError>>> =
            results.into_iter().map(Some).collect();
        drop(trace_encode);

        // Emit: per entry, reassemble procedures in order, rewriting
        // label tables to compressed-stream offsets (§3).
        let mut out: Vec<Result<(CompressedProgram, CompressionStats), CompressError>> =
            Vec::with_capacity(entries.len());
        for plan in plans {
            let plan = match plan {
                Ok(plan) => plan,
                Err(error) => {
                    out.push(Err(error));
                    continue;
                }
            };
            let base = plan.job_range.start;
            let mut encoded: Vec<EncodedSegment> = Vec::with_capacity(plan.job_range.len());
            let mut failed = None;
            for i in plan.job_range.clone() {
                // First failure in job (= code) order wins, matching the
                // single-call path.
                match results[i].take().expect("every job ran once") {
                    Ok(segment) => encoded.push(segment),
                    Err(error) => {
                        failed = Some(error);
                        break;
                    }
                }
            }
            if let Some(error) = failed {
                out.push(Err(error));
                continue;
            }
            out.push(Ok(self.emit_entry(plan, base, &encoded, timed)));
        }

        if self.recorder.is_enabled() {
            // Cache and poisoning deltas are measured over the whole
            // batch (workers interleave entries, so per-entry attribution
            // is meaningless); totals match serial dispatch. Pinned by
            // the metrics schema: always emitted, zero or not.
            let mut batch = Metrics::new();
            batch.add(
                names::CACHE_HITS,
                self.cache_hits.load(Ordering::Relaxed) - cache_hits_before,
            );
            batch.add(
                names::CACHE_MISSES,
                self.cache_misses.load(Ordering::Relaxed) - cache_misses_before,
            );
            batch.add(
                names::COMPRESS_CACHE_POISONED,
                self.cache_poisoned.load(Ordering::Relaxed) - cache_poisoned_before,
            );
            let cache = self.cache_stats();
            batch.gauge_max(names::CACHE_ENTRIES, cache.entries as u64);
            batch.gauge_max(names::CACHE_CAPACITY, cache.capacity as u64);
            self.recorder.record(batch);
        }

        out
    }

    /// Reassemble one planned entry from its encoded segments and record
    /// its per-entry telemetry. `base` is the entry's first global job
    /// index (scripts address jobs globally).
    fn emit_entry(
        &self,
        plan: EntryPlan,
        base: usize,
        encoded: &[EncodedSegment],
        timed: bool,
    ) -> (CompressedProgram, CompressionStats) {
        let trace_emit = self.recorder.trace_span(names::SPAN_COMPRESS_EMIT);
        let sw = Stopwatch::start_if(timed);
        let canon = plan.canon;
        let mut stats = CompressionStats::default();
        let mut out = canon.clone();
        for (pi, proc) in canon.procs.iter().enumerate() {
            let mut code = Vec::new();
            let mut label_map: Vec<(usize, u32)> = Vec::new();
            let mut proc_stats = CompressionStats {
                original_code: proc.code.len(),
                ..CompressionStats::default()
            };
            for event in &plan.scripts[pi] {
                match *event {
                    Event::Segment(job) => {
                        let seg = &encoded[job - base];
                        code.extend_from_slice(&seg.bytes);
                        proc_stats = proc_stats.merge(CompressionStats {
                            segments: 1,
                            fallback_segments: usize::from(seg.fallback),
                            timings: PhaseTimings {
                                tokenize: seg.tokenize,
                                parse: seg.parse,
                                ..PhaseTimings::default()
                            },
                            ..CompressionStats::default()
                        });
                    }
                    Event::Label(offset) => label_map.push((offset, code.len() as u32)),
                }
            }
            let labels = proc
                .labels
                .iter()
                .map(|&old| {
                    label_map
                        .iter()
                        .find(|&&(o, _)| o == old as usize)
                        .map(|&(_, n)| n)
                        .expect("canonical labels point at markers")
                })
                .collect();
            proc_stats.compressed_code = code.len();
            stats = stats.merge(proc_stats);
            out.procs[pi] = Procedure {
                name: proc.name.clone(),
                frame_size: proc.frame_size,
                arg_size: proc.arg_size,
                code,
                labels,
                needs_trampoline: proc.needs_trampoline,
            };
        }
        stats.timings.canonicalize = plan.canonicalize_time;
        stats.timings.emit = sw.elapsed();
        drop(trace_emit);

        if self.recorder.is_enabled() {
            let mut batch = Metrics::new();
            batch.add(names::COMPRESS_CALLS, 1);
            batch.add(names::COMPRESS_SEGMENTS, stats.segments as u64);
            batch.add(names::COMPRESS_ORIGINAL_BYTES, stats.original_code as u64);
            batch.add(
                names::COMPRESS_COMPRESSED_BYTES,
                stats.compressed_code as u64,
            );
            // Pinned by the metrics schema: always emitted, zero or not,
            // so schema validation sees the keys on every compress run.
            batch.add(
                names::COMPRESS_FALLBACK_SEGMENTS,
                stats.fallback_segments as u64,
            );
            // The worker phases are measured per segment on worker
            // threads and summed, so they land here as direct span
            // records rather than thread-local span guards.
            batch.record_span(
                names::SPAN_COMPRESS_CANONICALIZE,
                stats.timings.canonicalize,
            );
            batch.record_span(names::SPAN_COMPRESS_TOKENIZE, stats.timings.tokenize);
            batch.record_span(names::SPAN_COMPRESS_PARSE, stats.timings.parse);
            batch.record_span(names::SPAN_COMPRESS_EMIT, stats.timings.emit);
            self.recorder.record(batch);
        }

        (CompressedProgram { program: out }, stats)
    }

    /// Decompress a program compressed under this engine's grammar (the
    /// exact inverse of [`Compressor::compress`] on canonical inputs).
    ///
    /// # Errors
    ///
    /// See [`crate::compress::DecompressError`].
    pub fn decompress(
        &self,
        compressed: &CompressedProgram,
    ) -> Result<Program, crate::compress::DecompressError> {
        decompress_program(self.grammar, self.start, compressed)
    }

    /// Run all jobs, preserving job-index order in the result.
    ///
    /// Jobs are grouped into contiguous batches of roughly
    /// [`CompressorConfig::batch_bytes`] input bytes; each worker claims
    /// batches in a stride (worker `w` takes batches `w`, `w + T`, …, so
    /// long procedures still spread across the pool) and reuses one
    /// [`ChartArena`] for everything it encodes.
    fn run_jobs(
        &self,
        plans: &[Result<EntryPlan, CompressError>],
        jobs: &[Job],
        budgets: &[EarleyBudget],
        cancels: &[&CancelToken],
    ) -> Vec<Result<EncodedSegment, CompressError>> {
        let proc_of = |job: &Job| -> &Procedure {
            let plan = plans[job.entry]
                .as_ref()
                .expect("jobs exist only for planned entries");
            &plan.canon.procs[job.proc]
        };
        let threads = self.threads.min(jobs.len()).max(1);
        if threads == 1 {
            let mut arena = ChartArena::new();
            return jobs
                .iter()
                .map(|job| {
                    self.encode_segment_isolated(
                        &mut arena,
                        proc_of(job),
                        job.range.clone(),
                        budgets[job.entry],
                        cancels[job.entry],
                    )
                })
                .collect();
        }
        let batches = plan_batches(jobs, self.batch_bytes);
        // Thread-locals don't cross `thread::scope`: capture the calling
        // thread's trace attribution and re-install it in each worker, so
        // worker-lane events still carry the request's trace id.
        let trace_ctx = trace::current();
        let mut slots: Vec<Option<Result<EncodedSegment, CompressError>>> =
            (0..jobs.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let batches = &batches;
            let proc_of = &proc_of;
            let workers: Vec<_> = (0..threads)
                .map(|w| {
                    scope.spawn(move || {
                        let _trace = trace::scope_raw(trace_ctx);
                        let mut arena = ChartArena::new();
                        let mut done = Vec::new();
                        let mut b = w;
                        while b < batches.len() {
                            for i in batches[b].clone() {
                                let job = &jobs[i];
                                done.push((
                                    i,
                                    self.encode_segment_isolated(
                                        &mut arena,
                                        proc_of(job),
                                        job.range.clone(),
                                        budgets[job.entry],
                                        cancels[job.entry],
                                    ),
                                ));
                            }
                            b += threads;
                        }
                        done
                    })
                })
                .collect();
            for worker in workers {
                for (i, result) in worker.join().expect("encoder worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every job ran"))
            .collect()
    }

    /// Isolate one segment's encoding behind `catch_unwind`: a panic
    /// (a parser bug, or the injected cache-lock fault in the test
    /// harness) surfaces as a structured [`CompressError::WorkerPanic`]
    /// for that segment while every other segment — including the rest
    /// of this worker's batch stride — still encodes normally.
    fn encode_segment_isolated(
        &self,
        arena: &mut ChartArena,
        proc: &Procedure,
        range: Range<usize>,
        budget: EarleyBudget,
        cancel: &CancelToken,
    ) -> Result<EncodedSegment, CompressError> {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            self.encode_segment(arena, proc, range.clone(), budget, cancel)
        }));
        attempt.unwrap_or_else(|payload| {
            Err(CompressError::WorkerPanic {
                proc: proc.name.clone(),
                segment_offset: range.start,
                message: panic_message(payload.as_ref()),
            })
        })
    }

    /// The graceful-degradation path: encode `raw` as a verbatim escape,
    /// or propagate `err` when fallback is disabled, the grammar kept no
    /// escape index, or the segment exceeds the escape's length field.
    fn fall_back(&self, raw: &[u8], err: CompressError) -> Result<Vec<u8>, CompressError> {
        if !self.fallback || !self.verbatim_ok {
            return Err(err);
        }
        escape::encode_verbatim(raw).ok_or(err)
    }

    /// Tokenize and encode one segment, consulting the memo cache.
    fn encode_segment(
        &self,
        arena: &mut ChartArena,
        proc: &Procedure,
        range: Range<usize>,
        budget: EarleyBudget,
        cancel: &CancelToken,
    ) -> Result<EncodedSegment, CompressError> {
        // The segment boundary is the coarse cancellation point: a fired
        // deadline stops this entry before the next tokenize/parse,
        // while other entries in the same dispatch keep encoding.
        if cancel.is_cancelled() {
            return Err(CompressError::Cancelled {
                elapsed_ms: cancel.elapsed_ms(),
            });
        }
        // One enabled check per segment; workers never read the clock
        // unless someone is observing.
        let timed = self.timings_on();
        let raw = &proc.code[range.clone()];
        let _trace_seg = self.recorder.trace_span("compress.segment");

        let trace_tok = self.recorder.trace_span(names::SPAN_COMPRESS_TOKENIZE);
        let sw = Stopwatch::start_if(timed);
        let tokens = match tokenize_segment(raw) {
            Ok(tokens) => tokens,
            Err(error) => {
                let err = CompressError::Tokenize {
                    proc: proc.name.clone(),
                    error,
                };
                let bytes = self.fall_back(raw, err)?;
                return Ok(EncodedSegment {
                    bytes,
                    fallback: true,
                    tokenize: sw.elapsed(),
                    parse: Duration::default(),
                });
            }
        };
        let tokenize = sw.elapsed();
        drop(trace_tok);

        if let Some(cache) = &self.cache {
            if let Some(bytes) = self.lock_cache(cache).get(&tokens) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(EncodedSegment {
                    bytes,
                    fallback: false,
                    tokenize,
                    parse: Duration::default(),
                });
            }
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }

        let trace_parse = self.recorder.trace_span(names::SPAN_COMPRESS_PARSE);
        let sw = Stopwatch::start_if(timed);
        let parsed = if faults::fire(FaultPoint::Parse) {
            Err(NoParse::NoDerivation { furthest: 0 })
        } else {
            self.parser
                .parse_into_cancellable(arena, self.start, &tokens, &budget, Some(cancel))
        };
        let derivation = match parsed {
            Ok(derivation) => derivation,
            Err(NoParse::Cancelled { elapsed_ms }) => {
                // Cancellation never degrades to the verbatim escape:
                // the owner asked for the work to stop, and encoding the
                // escape would still burn time on a dead request.
                return Err(CompressError::Cancelled { elapsed_ms });
            }
            Err(error) => {
                let err = CompressError::NoParse {
                    proc: proc.name.clone(),
                    segment_offset: range.start,
                    error,
                };
                // Fallback segments are never cached: the cache must
                // hold only derivation bytes, so cache-on and cache-off
                // runs report identical fallback counts.
                let bytes = self.fall_back(raw, err)?;
                return Ok(EncodedSegment {
                    bytes,
                    fallback: true,
                    tokenize,
                    parse: sw.elapsed(),
                });
            }
        };
        let bytes = derivation.to_bytes(&self.index_map);
        let parse = sw.elapsed();
        drop(trace_parse);

        if let Some(cache) = &self.cache {
            let mut guard = self.lock_cache(cache);
            if faults::fire(FaultPoint::CacheLock) {
                // Deliberately panic *while holding the lock*: this is
                // the poisoning scenario the recovery path exists for.
                panic!("injected cache-lock fault");
            }
            guard.insert(tokens, bytes.clone());
        }
        Ok(EncodedSegment {
            bytes,
            fallback: false,
            tokenize,
            parse,
        })
    }
}

/// Best-effort extraction of a panic payload's message (panics carry
/// `&str` or `String` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Group contiguous jobs into dispatch batches of roughly `batch_bytes`
/// input bytes, returned as ranges of job indices. `0` yields one batch
/// per job (the pre-batching dispatch granularity).
fn plan_batches(jobs: &[Job], batch_bytes: usize) -> Vec<Range<usize>> {
    let mut batches = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, job) in jobs.iter().enumerate() {
        acc += job.range.len();
        if acc >= batch_bytes.max(1) {
            batches.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < jobs.len() {
        batches.push(start..jobs.len());
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::decompress_program;
    use pgr_bytecode::asm::assemble;
    use pgr_grammar::InitialGrammar;

    const SAMPLE: &str = r#"
proc f frame=8 args=0
    ADDRLP 0
    INDIRU
    LIT1 1
    ADDU
    ADDRLP 0
    ASGNU
    label 0
    ADDRLP 0
    INDIRU
    LIT1 1
    ADDU
    ADDRLP 0
    ASGNU
    LIT1 1
    BrTrue 0
    RETV
endproc
entry f
"#;

    fn engines() -> (InitialGrammar, Vec<CompressorConfig>) {
        let ig = InitialGrammar::build();
        let configs = vec![
            CompressorConfig::default().threads(1),
            CompressorConfig::default().threads(2),
            CompressorConfig::default().threads(7),
            CompressorConfig::default()
                .threads(1)
                .segment_cache_capacity(0),
            CompressorConfig::default()
                .threads(3)
                .segment_cache_capacity(1),
            CompressorConfig::default().threads(4).batch_bytes(0),
            CompressorConfig::default().threads(4).batch_bytes(3),
            CompressorConfig::default().threads(2).batch_bytes(1 << 20),
        ];
        (ig, configs)
    }

    #[test]
    fn batches_cover_all_jobs_exactly_once() {
        let jobs: Vec<Job> = [0..5, 5..9, 9..10, 10..40, 40..41]
            .into_iter()
            .map(|range| Job {
                entry: 0,
                proc: 0,
                range,
            })
            .collect();
        for batch_bytes in [0, 1, 4, 9, 17, 1 << 20] {
            let batches = plan_batches(&jobs, batch_bytes);
            let flattened: Vec<usize> = batches.iter().cloned().flatten().collect();
            assert_eq!(
                flattened,
                (0..jobs.len()).collect::<Vec<_>>(),
                "batch_bytes={batch_bytes}"
            );
        }
        // Per-job granularity when batching is off.
        assert_eq!(plan_batches(&jobs, 0).len(), jobs.len());
        // One batch swallows everything when the budget is huge.
        assert_eq!(plan_batches(&jobs, 1 << 20).len(), 1);
        assert!(plan_batches(&[], 64).is_empty());
    }

    #[test]
    fn every_configuration_agrees_bytewise() {
        let (ig, configs) = engines();
        let prog = assemble(SAMPLE).unwrap();
        let reference = Compressor::with_config(
            &ig.grammar,
            ig.nt_start,
            CompressorConfig::default()
                .threads(1)
                .segment_cache_capacity(0),
        )
        .compress(&prog)
        .unwrap();
        for config in configs {
            let engine = Compressor::with_config(&ig.grammar, ig.nt_start, config);
            let got = engine.compress(&prog).unwrap();
            assert_eq!(got.0, reference.0, "config {config:?}");
            assert_eq!(got.1, reference.1, "config {config:?}");
        }
    }

    #[test]
    fn engine_reuse_roundtrips_many_programs() {
        let ig = InitialGrammar::build();
        let engine = Compressor::new(&ig.grammar, ig.nt_start);
        for body in ["RETV", "LIT1 3\n\tPOPU\n\tRETV", "label 0\n\tJUMPV 0"] {
            let src = format!("proc f frame=0 args=0\n\t{body}\nendproc\n");
            let prog = assemble(&src).unwrap();
            let (cp, _) = engine.compress(&prog).unwrap();
            let back = decompress_program(&ig.grammar, ig.nt_start, &cp).unwrap();
            assert_eq!(back, canonicalize_program(&prog).unwrap());
        }
    }

    #[test]
    fn repeated_segments_hit_the_cache() {
        let ig = InitialGrammar::build();
        let engine = Compressor::with_config(
            &ig.grammar,
            ig.nt_start,
            CompressorConfig::default().threads(1),
        );
        let prog = assemble(SAMPLE).unwrap();
        let (cold, _) = engine.compress(&prog).unwrap();
        let after_cold = engine.cache_stats();
        // The two `x = x + 1` statements differ only by the trailing
        // BrTrue, so at least the second full compression is all hits.
        let (warm, _) = engine.compress(&prog).unwrap();
        let after_warm = engine.cache_stats();
        assert_eq!(cold, warm);
        assert_eq!(after_warm.misses, after_cold.misses, "warm run re-parsed");
        assert!(after_warm.hits > after_cold.hits);
    }

    #[test]
    fn tiny_cache_capacity_still_correct() {
        let ig = InitialGrammar::build();
        let engine = Compressor::with_config(
            &ig.grammar,
            ig.nt_start,
            CompressorConfig::default()
                .threads(2)
                .segment_cache_capacity(1),
        );
        let prog = assemble(SAMPLE).unwrap();
        let (cp, _) = engine.compress(&prog).unwrap();
        let back = decompress_program(&ig.grammar, ig.nt_start, &cp).unwrap();
        assert_eq!(back, canonicalize_program(&prog).unwrap());
        assert!(engine.cache_stats().entries <= 1);
    }

    #[test]
    fn timings_are_collected_only_on_request() {
        let ig = InitialGrammar::build();
        let prog = assemble(SAMPLE).unwrap();
        let silent = Compressor::with_config(
            &ig.grammar,
            ig.nt_start,
            CompressorConfig::default().threads(1),
        );
        let (_, stats) = silent.compress(&prog).unwrap();
        assert_eq!(stats.timings, PhaseTimings::default());

        let timed = Compressor::with_config(
            &ig.grammar,
            ig.nt_start,
            CompressorConfig::default()
                .threads(1)
                .segment_cache_capacity(0)
                .collect_timings(true),
        );
        let (_, stats) = timed.compress(&prog).unwrap();
        assert!(stats.timings.parse > Duration::default());
    }

    #[test]
    fn recorder_collects_compress_cache_and_earley_metrics() {
        let ig = InitialGrammar::build();
        let recorder = Recorder::new();
        let engine = Compressor::with_recorder(
            &ig.grammar,
            ig.nt_start,
            CompressorConfig::default().threads(2),
            recorder.clone(),
        );
        let prog = assemble(SAMPLE).unwrap();
        let (_, stats) = engine.compress(&prog).unwrap();

        let m = recorder.snapshot();
        assert_eq!(m.counter(names::COMPRESS_CALLS), 1);
        assert_eq!(m.counter(names::COMPRESS_SEGMENTS), stats.segments as u64);
        assert_eq!(
            m.counter(names::COMPRESS_ORIGINAL_BYTES),
            stats.original_code as u64
        );
        assert_eq!(
            m.counter(names::CACHE_HITS) + m.counter(names::CACHE_MISSES),
            stats.segments as u64
        );
        assert_eq!(
            m.counter(names::EARLEY_SEGMENTS_PARSED),
            m.counter(names::CACHE_MISSES),
            "every cache miss is exactly one Earley parse"
        );
        // An enabled recorder implies phase timing, surfaced both as
        // spans and on the compatibility stats view.
        assert!(m.span_total(names::SPAN_COMPRESS_PARSE) > Duration::ZERO);
        assert!(stats.timings.parse > Duration::ZERO);
    }

    #[test]
    fn builder_and_chained_config_agree() {
        let budget = pgr_earley::EarleyBudget::default()
            .max_items(123)
            .max_columns(9);
        let built = CompressorConfig::builder()
            .threads(3)
            .segment_cache_capacity(17)
            .batch_bytes(256)
            .collect_timings(true)
            .earley_budget(budget)
            .fallback(false)
            .build();
        let chained = CompressorConfig::default()
            .threads(3)
            .segment_cache_capacity(17)
            .batch_bytes(256)
            .collect_timings(true)
            .earley_budget(budget)
            .fallback(false);
        assert_eq!(built, chained);
        assert_eq!(
            CompressorConfig::builder().build(),
            CompressorConfig::default()
        );
    }

    #[test]
    fn per_call_budgets_share_one_engine_without_interference() {
        let ig = InitialGrammar::build();
        let engine = Compressor::new(&ig.grammar, ig.nt_start);
        let prog = assemble(SAMPLE).unwrap();

        // A starved request degrades to all-verbatim…
        let tiny = pgr_earley::EarleyBudget::default().max_items(1);
        let (cp_tiny, stats_tiny) = engine.compress_budgeted(&prog, tiny).unwrap();
        assert_eq!(stats_tiny.fallback_segments, stats_tiny.segments);
        let back = decompress_program(&ig.grammar, ig.nt_start, &cp_tiny).unwrap();
        assert_eq!(back, canonicalize_program(&prog).unwrap());

        // …while an unlimited request on the same engine (same shared
        // cache) still gets full compression, identical to a fresh
        // engine's output.
        let (cp_full, stats_full) = engine
            .compress_budgeted(&prog, pgr_earley::EarleyBudget::UNLIMITED)
            .unwrap();
        assert_eq!(stats_full.fallback_segments, 0);
        let reference = Compressor::new(&ig.grammar, ig.nt_start)
            .compress(&prog)
            .unwrap();
        assert_eq!(cp_full, reference.0);
    }

    #[test]
    fn errors_match_the_sequential_path() {
        let ig = InitialGrammar::build();
        let mut prog = assemble("proc f frame=0 args=0\n\tRETV\nendproc\n").unwrap();
        prog.procs[0].code = vec![Opcode::ADDU as u8];
        for threads in [1, 4] {
            let engine = Compressor::with_config(
                &ig.grammar,
                ig.nt_start,
                CompressorConfig::default().threads(threads).fallback(false),
            );
            let err = engine.compress(&prog).unwrap_err();
            assert!(matches!(err, CompressError::NoParse { .. }), "{threads}");
        }
    }

    #[test]
    fn unparseable_segments_fall_back_to_verbatim_escapes() {
        let ig = InitialGrammar::build();
        let mut prog = assemble("proc f frame=0 args=0\n\tRETV\nendproc\n").unwrap();
        // A bare binary operator: valid instruction bytes, no derivation.
        prog.procs[0].code = vec![Opcode::ADDU as u8];
        for config in [
            CompressorConfig::default().threads(1),
            CompressorConfig::default().threads(4),
            CompressorConfig::default()
                .threads(1)
                .segment_cache_capacity(0),
        ] {
            let engine = Compressor::with_config(&ig.grammar, ig.nt_start, config);
            let (cp, stats) = engine.compress(&prog).unwrap();
            assert_eq!(stats.fallback_segments, 1, "config {config:?}");
            let back = decompress_program(&ig.grammar, ig.nt_start, &cp).unwrap();
            assert_eq!(back, canonicalize_program(&prog).unwrap());
        }
    }

    #[test]
    fn tiny_budget_degrades_to_fallback_and_roundtrips() {
        let ig = InitialGrammar::build();
        let prog = assemble(SAMPLE).unwrap();
        let budget = pgr_earley::EarleyBudget::default().max_items(1);
        let engine = Compressor::with_config(
            &ig.grammar,
            ig.nt_start,
            CompressorConfig::default().threads(1).earley_budget(budget),
        );
        let (cp, stats) = engine.compress(&prog).unwrap();
        assert_eq!(stats.fallback_segments, stats.segments);
        let back = decompress_program(&ig.grammar, ig.nt_start, &cp).unwrap();
        assert_eq!(back, canonicalize_program(&prog).unwrap());

        // Strict mode surfaces the budget verdict instead.
        let strict = Compressor::with_config(
            &ig.grammar,
            ig.nt_start,
            CompressorConfig::default()
                .threads(1)
                .earley_budget(budget)
                .fallback(false),
        );
        let err = strict.compress(&prog).unwrap_err();
        assert!(matches!(
            err,
            CompressError::NoParse {
                error: NoParse::BudgetExceeded { .. },
                ..
            }
        ));
    }

    #[test]
    fn compress_batch_is_bytewise_identical_to_serial_dispatch() {
        let ig = InitialGrammar::build();
        // Program variants differing only in one literal, plus repeats:
        // the batch mixes fresh parses and memo-cache hits.
        let programs: Vec<Program> = [1, 7, 1, 13, 7]
            .into_iter()
            .map(|lit| assemble(&SAMPLE.replace("LIT1 1", &format!("LIT1 {lit}"))).unwrap())
            .collect();
        let ample = pgr_earley::EarleyBudget::UNLIMITED;
        let fresh = |threads: usize| {
            Compressor::with_config(
                &ig.grammar,
                ig.nt_start,
                CompressorConfig::default().threads(threads),
            )
        };
        let check = |threads: usize, entries: &[(&Program, pgr_earley::EarleyBudget)]| {
            // Fresh engine per dispatch style: both start from the same
            // (empty) cache state, like a serve engine at either end of
            // a batch window.
            let batched = fresh(threads).compress_batch(entries);
            assert_eq!(batched.len(), entries.len());
            let serial_engine = fresh(threads);
            for (i, (got, (program, budget))) in batched.iter().zip(entries).enumerate() {
                let want = serial_engine.compress_budgeted(program, *budget).unwrap();
                let got = got.as_ref().unwrap();
                assert_eq!(got.0, want.0, "entry {i}, threads {threads}");
                assert_eq!(
                    (
                        got.1.compressed_code,
                        got.1.segments,
                        got.1.fallback_segments
                    ),
                    (
                        want.1.compressed_code,
                        want.1.segments,
                        want.1.fallback_segments
                    ),
                    "entry {i}, threads {threads}"
                );
            }
        };

        // Uniform budgets: identical at any thread count (successful
        // parses are budget- and schedule-invariant).
        for threads in [1, 3] {
            let entries: Vec<(&Program, pgr_earley::EarleyBudget)> =
                programs.iter().map(|p| (p, ample)).collect();
            check(threads, &entries);
        }

        // Mixed per-entry budgets, single worker: batch job order equals
        // serial call order, so cache evolution — and therefore which
        // starved segments luck into budget-free cache hits — matches
        // exactly.
        let starved = pgr_earley::EarleyBudget::default().max_items(1);
        let entries: Vec<(&Program, pgr_earley::EarleyBudget)> = programs
            .iter()
            .enumerate()
            .map(|(i, p)| (p, if i % 2 == 0 { ample } else { starved }))
            .collect();
        check(1, &entries);
    }
}
