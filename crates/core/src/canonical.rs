//! Canonical form of uncompressed programs.
//!
//! The compressor restarts the derivation at every `LABELV`. Two
//! degenerate shapes would make exact compress→decompress round-trips
//! ambiguous: `LABELV` markers no label-table entry points at (nothing can
//! branch there, so they only fragment segments) and runs of adjacent
//! `LABELV`s (which all denote the same restart point). Canonicalization
//! drops the former, collapses the latter onto a single marker, and
//! re-points label-table entries accordingly. The transformation never
//! changes behaviour — `LABELV` is a no-op — and `decompress ∘ compress`
//! is the identity on canonical programs.

use pgr_bytecode::{decode, DecodeError, Opcode, Procedure, Program};
use std::fmt;

/// An error canonicalizing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanonError {
    /// A procedure's code does not decode.
    Decode {
        /// Procedure name.
        proc: String,
        /// The underlying decode error.
        error: DecodeError,
    },
    /// A label-table entry does not point at a `LABELV`.
    BadLabel {
        /// Procedure name.
        proc: String,
        /// Which label-table entry.
        label: usize,
    },
}

impl fmt::Display for CanonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanonError::Decode { proc, error } => write!(f, "{proc}: {error}"),
            CanonError::BadLabel { proc, label } => {
                write!(f, "{proc}: label {label} does not point at a LABELV")
            }
        }
    }
}

impl std::error::Error for CanonError {}

/// Canonicalize one procedure. See the module docs.
///
/// # Errors
///
/// Fails if the code does not decode or a label points somewhere other
/// than a `LABELV`.
pub fn canonicalize_procedure(proc: &Procedure) -> Result<Procedure, CanonError> {
    let insns: Vec<_> = decode(&proc.code)
        .collect::<Result<_, _>>()
        .map_err(|error| CanonError::Decode {
            proc: proc.name.clone(),
            error,
        })?;

    let referenced = |offset: usize| proc.labels.iter().any(|&l| l as usize == offset);

    let mut code = Vec::with_capacity(proc.code.len());
    // old LABELV offset -> new offset of the marker that represents it.
    let mut label_map: Vec<(usize, u32)> = Vec::new();
    let mut last_label_at: Option<u32> = None;
    for insn in &insns {
        if insn.opcode == Opcode::LABELV {
            if !referenced(insn.offset) {
                continue; // unreferenced marker: drop
            }
            let new_off = match last_label_at {
                Some(off) => off, // adjacent referenced markers collapse
                None => {
                    let off = code.len() as u32;
                    code.push(Opcode::LABELV as u8);
                    last_label_at = Some(off);
                    off
                }
            };
            label_map.push((insn.offset, new_off));
        } else {
            last_label_at = None;
            insn.encode_into(&mut code);
        }
    }

    let mut labels = Vec::with_capacity(proc.labels.len());
    for (i, &old) in proc.labels.iter().enumerate() {
        let new = label_map
            .iter()
            .find(|(o, _)| *o == old as usize)
            .map(|&(_, n)| n)
            .ok_or_else(|| CanonError::BadLabel {
                proc: proc.name.clone(),
                label: i,
            })?;
        labels.push(new);
    }

    Ok(Procedure {
        name: proc.name.clone(),
        frame_size: proc.frame_size,
        arg_size: proc.arg_size,
        code,
        labels,
        needs_trampoline: proc.needs_trampoline,
    })
}

/// Canonicalize every procedure of a program.
///
/// # Errors
///
/// See [`canonicalize_procedure`].
pub fn canonicalize_program(program: &Program) -> Result<Program, CanonError> {
    let mut out = program.clone();
    out.procs = program
        .procs
        .iter()
        .map(canonicalize_procedure)
        .collect::<Result<_, _>>()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgr_bytecode::asm::assemble;

    #[test]
    fn plain_programs_are_unchanged() {
        let prog =
            assemble("proc f frame=0 args=0\n\tLIT1 1\n\tBrTrue 0\n\tlabel 0\n\tRETV\nendproc\n")
                .unwrap();
        let canon = canonicalize_program(&prog).unwrap();
        assert_eq!(canon, prog);
        // Idempotent.
        assert_eq!(canonicalize_program(&canon).unwrap(), canon);
    }

    #[test]
    fn adjacent_labels_collapse_and_repoint() {
        let prog = assemble(
            "proc f frame=0 args=0\n\tLIT1 1\n\tBrTrue 0\n\tJUMPV 1\n\tlabel 0\n\tlabel 1\n\tRETV\nendproc\n",
        )
        .unwrap();
        let canon = canonicalize_program(&prog).unwrap();
        let p = &canon.procs[0];
        assert_eq!(p.labels.len(), 2);
        assert_eq!(p.labels[0], p.labels[1]);
        let markers = p
            .code
            .iter()
            .filter(|&&b| b == Opcode::LABELV as u8)
            .count();
        assert_eq!(markers, 1);
        assert_eq!(canonicalize_program(&canon).unwrap(), canon);
    }

    #[test]
    fn unreferenced_markers_are_dropped() {
        use pgr_bytecode::{encode, Instruction};
        let mut prog = assemble("proc f frame=0 args=0\n\tRETV\nendproc\n").unwrap();
        // Hand-insert a stray LABELV before the RETV.
        prog.procs[0].code = encode(&[
            Instruction::op(Opcode::LABELV),
            Instruction::op(Opcode::RETV),
        ]);
        let canon = canonicalize_program(&prog).unwrap();
        assert_eq!(canon.procs[0].code, vec![Opcode::RETV as u8]);
    }

    #[test]
    fn bad_label_is_reported() {
        let mut prog = assemble("proc f frame=0 args=0\n\tlabel 0\n\tRETV\nendproc\n").unwrap();
        prog.procs[0].labels[0] = 1; // RETV, not LABELV
        assert!(matches!(
            canonicalize_program(&prog),
            Err(CanonError::BadLabel { label: 0, .. })
        ));
    }

    #[test]
    fn trailing_label_survives() {
        let prog =
            assemble("proc f frame=0 args=0\n\tJUMPV 0\n\tlabel 0\n\tJUMPV 0\nendproc\n").unwrap();
        let canon = canonicalize_program(&prog).unwrap();
        assert_eq!(canon, prog);
    }
}
