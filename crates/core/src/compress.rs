//! The compressor and decompressor.
//!
//! "The compressed bytecode for a program is a specification of a shortest
//! derivation under the expanded grammar" (§2). Each straight-line segment
//! of a procedure is encoded as one derivation of `<start>`, one byte per
//! rule; the per-procedure label table is rewritten so that each entry
//! holds the compressed-stream offset of its segment (§3: the compressor
//! "rewrites the label table to reflect the new position of each label,
//! but the label table indices in the bytecode do not change").
//!
//! Decompression exists for verification (the real consumer of compressed
//! code is the generated interpreter in `pgr-vm`): it expands each
//! derivation back to bytecode and re-inserts the `LABELV` markers, and is
//! an exact inverse of compression on canonical programs.

use crate::canonical::CanonError;
use crate::engine::PhaseTimings;
use pgr_bytecode::{escape, Opcode, Procedure, Program};
use pgr_earley::NoParse;
use pgr_grammar::derivation::DerivationError;
use pgr_grammar::initial::{detokenize, TokenizeError};
use pgr_grammar::{Derivation, Grammar, Nt};
use pgr_telemetry::faults::{self, FaultPoint};
use std::fmt;

/// A compressed program: same packaging as [`Program`] (descriptors,
/// label tables, global table, data), but every procedure's `code` holds
/// derivation bytes and every label offset points into that stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedProgram {
    /// The compressed image.
    pub program: Program,
}

/// Sizes (and, on request, phase timings) measured for one compression
/// run.
///
/// Stats form a commutative monoid under [`CompressionStats::merge`] with
/// `Default` as the identity: the engine computes them per segment and per
/// procedure, then folds, so no `&mut` accumulator threads through the
/// parallel encoding pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompressionStats {
    /// Canonical uncompressed code bytes.
    pub original_code: usize,
    /// Compressed code bytes.
    pub compressed_code: usize,
    /// Number of segments encoded.
    pub segments: usize,
    /// Segments that had no derivation (or blew the Earley budget) and
    /// were emitted as verbatim escapes instead (see
    /// [`CompressorConfig::fallback`](crate::engine::CompressorConfig::fallback)).
    pub fallback_segments: usize,
    /// Per-phase wall-clock cost; all zero unless
    /// [`CompressorConfig::collect_timings`](crate::engine::CompressorConfig::collect_timings)
    /// was set.
    pub timings: PhaseTimings,
}

impl CompressionStats {
    /// Compressed-to-original ratio (1.0 when nothing shrank).
    pub fn ratio(&self) -> f64 {
        if self.original_code == 0 {
            1.0
        } else {
            self.compressed_code as f64 / self.original_code as f64
        }
    }

    /// Combine two measurements (componentwise sum).
    pub fn merge(self, other: CompressionStats) -> CompressionStats {
        CompressionStats {
            original_code: self.original_code + other.original_code,
            compressed_code: self.compressed_code + other.compressed_code,
            segments: self.segments + other.segments,
            fallback_segments: self.fallback_segments + other.fallback_segments,
            timings: self.timings.merge(other.timings),
        }
    }
}

/// An error while compressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// Canonicalization failed (malformed input program).
    Canon(CanonError),
    /// A segment does not tokenize.
    Tokenize {
        /// Procedure name.
        proc: String,
        /// The underlying tokenizer error.
        error: TokenizeError,
    },
    /// A segment is not in the grammar's language (ill-formed postfix
    /// code; run the validator on the input). With fallback enabled the
    /// engine degrades to a verbatim escape instead of reporting this;
    /// see [`CompressorConfig::fallback`](crate::engine::CompressorConfig::fallback).
    NoParse {
        /// Procedure name.
        proc: String,
        /// Byte offset of the offending segment.
        segment_offset: usize,
        /// The parser's report.
        error: NoParse,
    },
    /// An encoder worker panicked on this segment. The panic was caught
    /// at the segment boundary (`catch_unwind`), so other segments and
    /// the engine itself are unaffected; the payload's message is
    /// preserved here.
    WorkerPanic {
        /// Procedure name.
        proc: String,
        /// Byte offset of the offending segment.
        segment_offset: usize,
        /// The panic payload, if it was a string (the common case).
        message: String,
    },
    /// The request's `CancelToken` fired (deadline passed or the owner
    /// cancelled) before this entry finished encoding. Unlike a budget
    /// trip this never degrades to verbatim fallback — the caller asked
    /// for the work to *stop*, not to be answered more cheaply.
    Cancelled {
        /// Milliseconds between the token's creation (request arrival)
        /// and the cancellation check that fired.
        elapsed_ms: u64,
    },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Canon(e) => write!(f, "{e}"),
            CompressError::Tokenize { proc, error } => write!(f, "{proc}: {error}"),
            CompressError::NoParse {
                proc,
                segment_offset,
                error,
            } => write!(f, "{proc}: segment at {segment_offset}: {error}"),
            CompressError::WorkerPanic {
                proc,
                segment_offset,
                message,
            } => write!(
                f,
                "{proc}: segment at {segment_offset}: encoder worker panicked: {message}"
            ),
            CompressError::Cancelled { elapsed_ms } => {
                write!(f, "compression cancelled after {elapsed_ms} ms")
            }
        }
    }
}

impl std::error::Error for CompressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompressError::Canon(e) => Some(e),
            CompressError::Tokenize { error, .. } => Some(error),
            CompressError::NoParse { error, .. } => Some(error),
            CompressError::WorkerPanic { .. } => None,
            CompressError::Cancelled { .. } => None,
        }
    }
}

impl From<CanonError> for CompressError {
    fn from(e: CanonError) -> CompressError {
        CompressError::Canon(e)
    }
}

/// An error while decompressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// A derivation failed to decode or expand.
    Derivation {
        /// Procedure name.
        proc: String,
        /// The underlying derivation error.
        error: DerivationError,
    },
    /// A derivation did not end exactly at the next segment boundary.
    Misaligned {
        /// Procedure name.
        proc: String,
        /// Stream offset of the misalignment.
        offset: usize,
    },
    /// The expanded token string is not well-formed instruction bytes
    /// (cannot happen for grammars built from the initial grammar).
    Detokenize {
        /// Procedure name.
        proc: String,
    },
    /// A verbatim escape's declared payload runs past the next segment
    /// boundary (or off the end of the stream).
    VerbatimOverrun {
        /// Procedure name.
        proc: String,
        /// Stream offset of the escape marker.
        offset: usize,
    },
    /// A deterministic fault-injection trip (test harness only).
    Injected {
        /// Procedure name.
        proc: String,
    },
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::Derivation { proc, error } => write!(f, "{proc}: {error}"),
            DecompressError::Misaligned { proc, offset } => {
                write!(f, "{proc}: derivation boundary mismatch at {offset}")
            }
            DecompressError::Detokenize { proc } => {
                write!(f, "{proc}: expanded tokens are not valid instructions")
            }
            DecompressError::VerbatimOverrun { proc, offset } => {
                write!(
                    f,
                    "{proc}: verbatim escape at {offset} overruns its segment"
                )
            }
            DecompressError::Injected { proc } => {
                write!(f, "{proc}: injected decode fault (test harness)")
            }
        }
    }
}

impl std::error::Error for DecompressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecompressError::Derivation { error, .. } => Some(error),
            DecompressError::Misaligned { .. }
            | DecompressError::Detokenize { .. }
            | DecompressError::VerbatimOverrun { .. }
            | DecompressError::Injected { .. } => None,
        }
    }
}

/// Decompress one procedure.
fn decompress_procedure(
    grammar: &Grammar,
    start: Nt,
    proc: &Procedure,
) -> Result<Procedure, DecompressError> {
    // Unique segment boundaries, in stream order.
    let mut boundaries: Vec<u32> = proc.labels.clone();
    boundaries.sort_unstable();
    boundaries.dedup();

    // The escape marker is only unambiguous when the start non-terminal
    // kept its last one-byte rule index free (trained grammars always
    // do; see `ExpanderConfig::escape_reserve`).
    let verbatim_ok = grammar.rules_of(start).len() <= usize::from(escape::VERBATIM_MARKER);

    let mut out = Vec::new();
    let mut label_map: Vec<(u32, u32)> = Vec::new(); // compressed off -> new off
    let mut pos = 0usize;
    let mut bi = 0usize;
    loop {
        while bi < boundaries.len() && boundaries[bi] as usize == pos {
            label_map.push((boundaries[bi], out.len() as u32));
            out.push(Opcode::LABELV as u8);
            bi += 1;
        }
        if pos >= proc.code.len() {
            break;
        }
        if faults::fire(FaultPoint::Decode) {
            return Err(DecompressError::Injected {
                proc: proc.name.clone(),
            });
        }
        let limit = boundaries
            .get(bi)
            .map(|&b| b as usize)
            .unwrap_or(proc.code.len());
        if verbatim_ok && proc.code[pos] == escape::VERBATIM_MARKER {
            // A verbatim escape: copy the raw canonical bytes through.
            let end = match escape::decode_verbatim_header(&proc.code[pos..]) {
                Some(len) => pos + escape::VERBATIM_HEADER + len,
                None => proc.code.len() + 1, // truncated header
            };
            if end > limit {
                return Err(DecompressError::VerbatimOverrun {
                    proc: proc.name.clone(),
                    offset: pos,
                });
            }
            out.extend_from_slice(&proc.code[pos + escape::VERBATIM_HEADER..end]);
            pos = end;
            continue;
        }
        let (derivation, used) = Derivation::from_bytes(grammar, start, &proc.code[pos..])
            .map_err(|error| DecompressError::Derivation {
                proc: proc.name.clone(),
                error,
            })?;
        let end = pos + used;
        if end > limit {
            return Err(DecompressError::Misaligned {
                proc: proc.name.clone(),
                offset: pos,
            });
        }
        let tokens =
            derivation
                .expand(grammar, start)
                .map_err(|error| DecompressError::Derivation {
                    proc: proc.name.clone(),
                    error,
                })?;
        out.extend(detokenize(&tokens));
        pos = end;
    }

    let labels = proc
        .labels
        .iter()
        .map(|&c| {
            label_map
                .iter()
                .find(|(o, _)| *o == c)
                .map(|&(_, n)| n)
                .ok_or(DecompressError::Misaligned {
                    proc: proc.name.clone(),
                    offset: c as usize,
                })
        })
        .collect::<Result<_, _>>()?;

    Ok(Procedure {
        name: proc.name.clone(),
        frame_size: proc.frame_size,
        arg_size: proc.arg_size,
        code: out,
        labels,
        needs_trampoline: proc.needs_trampoline,
    })
}

/// Decompress a program: the exact inverse of
/// [`Compressor::compress`](crate::engine::Compressor::compress) on
/// canonical inputs.
///
/// # Errors
///
/// See [`DecompressError`].
pub fn decompress_program(
    grammar: &Grammar,
    start: Nt,
    compressed: &CompressedProgram,
) -> Result<Program, DecompressError> {
    let mut out = compressed.program.clone();
    out.procs = compressed
        .program
        .procs
        .iter()
        .map(|p| decompress_procedure(grammar, start, p))
        .collect::<Result<_, _>>()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::canonicalize_program;
    use crate::engine::Compressor;
    use pgr_bytecode::asm::assemble;
    use pgr_grammar::InitialGrammar;

    const SAMPLE: &str = r#"
proc check frame=0 args=4
    ADDRFP 0
    INDIRU
    LIT1 0
    NEU
    BrTrue 0
    LIT1 0
    ARGU
    ADDRGP 0
    CALLU
    POPU
    label 0
    RETV
endproc
native exit
entry check
"#;

    #[test]
    fn roundtrip_under_the_initial_grammar() {
        let ig = InitialGrammar::build();
        let prog = assemble(SAMPLE).unwrap();
        let engine = Compressor::new(&ig.grammar, ig.nt_start);
        let (cp, stats) = engine.compress(&prog).unwrap();
        assert_eq!(stats.segments, 2);
        assert_eq!(stats.original_code, prog.procs[0].code.len());
        let back = decompress_program(&ig.grammar, ig.nt_start, &cp).unwrap();
        assert_eq!(back, canonicalize_program(&prog).unwrap());
    }

    #[test]
    fn label_table_points_at_segment_starts() {
        let ig = InitialGrammar::build();
        let prog = assemble(SAMPLE).unwrap();
        let (cp, _) = Compressor::new(&ig.grammar, ig.nt_start)
            .compress(&prog)
            .unwrap();
        let p = &cp.program.procs[0];
        assert_eq!(p.labels.len(), 1);
        let off = p.labels[0] as usize;
        assert!(off < p.code.len());
        // Decoding a derivation from the label offset succeeds and covers
        // the remainder of the stream (the RETV segment).
        let (d, used) = Derivation::from_bytes(&ig.grammar, ig.nt_start, &p.code[off..]).unwrap();
        assert_eq!(off + used, p.code.len());
        let tokens = d.expand(&ig.grammar, ig.nt_start).unwrap();
        assert_eq!(detokenize(&tokens), vec![pgr_bytecode::Opcode::RETV as u8]);
    }

    #[test]
    fn initial_grammar_compression_is_not_smaller() {
        // Under the unexpanded grammar the derivation has one byte per
        // parse-tree node, which is *larger* than the bytecode. That is
        // the paper's point: expansion is what buys compression.
        let ig = InitialGrammar::build();
        let prog = assemble(SAMPLE).unwrap();
        let (_, stats) = Compressor::new(&ig.grammar, ig.nt_start)
            .compress(&prog)
            .unwrap();
        assert!(stats.compressed_code > stats.original_code);
        assert!(stats.ratio() > 1.0);
    }

    #[test]
    fn ill_formed_code_reports_no_parse_in_strict_mode() {
        use crate::engine::CompressorConfig;

        let ig = InitialGrammar::build();
        let mut prog = assemble("proc f frame=0 args=0\n\tRETV\nendproc\n").unwrap();
        prog.procs[0].code = vec![pgr_bytecode::Opcode::ADDU as u8];
        let err = Compressor::with_config(
            &ig.grammar,
            ig.nt_start,
            CompressorConfig::default().fallback(false),
        )
        .compress(&prog)
        .unwrap_err();
        assert!(matches!(err, CompressError::NoParse { .. }));
    }

    #[test]
    fn verbatim_escapes_decompress_byte_identically() {
        use pgr_bytecode::escape;

        let ig = InitialGrammar::build();
        // Hand-build a compressed procedure mixing a real derivation and
        // a verbatim escape: [escape(ADDU)] LABELV [derivation(RETV)].
        let raw = vec![pgr_bytecode::Opcode::ADDU as u8];
        let escaped = escape::encode_verbatim(&raw).unwrap();
        let retv = tokenize(&[pgr_bytecode::Opcode::RETV as u8]);
        let derivation_bytes = pgr_earley::ShortestParser::new(&ig.grammar)
            .parse(ig.nt_start, &retv)
            .unwrap()
            .to_bytes(&ig.grammar.rule_index_map());
        let mut code = escaped.clone();
        let label_off = code.len() as u32;
        code.extend_from_slice(&derivation_bytes);
        let mut proc = Procedure::new("mixed");
        proc.code = code;
        proc.labels = vec![label_off];
        let mut program = Program::new();
        program.procs.push(proc);
        let cp = CompressedProgram { program };

        let back = decompress_program(&ig.grammar, ig.nt_start, &cp).unwrap();
        assert_eq!(
            back.procs[0].code,
            [
                raw.clone(),
                vec![Opcode::LABELV as u8],
                vec![pgr_bytecode::Opcode::RETV as u8]
            ]
            .concat()
        );

        // An escape whose length overruns its segment is a clean error.
        let mut bad = cp.clone();
        bad.program.procs[0].code[1] = 0xEE; // huge declared length
        let err = decompress_program(&ig.grammar, ig.nt_start, &bad).unwrap_err();
        assert!(matches!(err, DecompressError::VerbatimOverrun { .. }));
    }

    fn tokenize(code: &[u8]) -> Vec<pgr_grammar::Terminal> {
        pgr_grammar::initial::tokenize_segment(code).unwrap()
    }

    #[test]
    fn empty_procedure_compresses_to_nothing() {
        let ig = InitialGrammar::build();
        let mut prog = Program::new();
        prog.procs.push(Procedure::new("empty"));
        let (cp, stats) = Compressor::new(&ig.grammar, ig.nt_start)
            .compress(&prog)
            .unwrap();
        assert_eq!(cp.program.procs[0].code.len(), 0);
        assert_eq!(stats.segments, 0);
        let back = decompress_program(&ig.grammar, ig.nt_start, &cp).unwrap();
        assert_eq!(back.procs[0].code.len(), 0);
    }
}
