//! # pgr-core
//!
//! The primary contribution of *Bytecode Compression via Profiled Grammar
//! Rewriting* (Evans & Fraser, PLDI 2001): training-driven grammar
//! expansion and the compressor/decompressor built on it.
//!
//! The pipeline (paper Figure 1):
//!
//! ```text
//!            ┌ training ─────────────────────────────────────────┐
//! original   │  parser → parse forest → grammar expander          │  expanded
//! grammar  ──┤  (deterministic)          (inline + contract loop) ├─ grammar
//! + samples  └────────────────────────────────────────────────────┘
//!
//!            ┌ compression ──────────────────────────────────────┐
//! program  ──┤  Earley shortest-derivation parser → derivation    ├─ compressed
//!            └────────────────────────────────────────────────────┘  bytecode
//! ```
//!
//! * [`train`] parses a training set into a forest and repeatedly inlines
//!   the most frequent (parent rule, slot, child rule) edge, contracting
//!   all its occurrences (§4.1, Fig. 2), until every non-terminal is
//!   saturated at 256 rules or no edge recurs.
//! * [`Trained::compress`] encodes a program as per-segment shortest
//!   derivations (one byte per rule) and rewrites each procedure's label
//!   table to compressed-stream offsets (§3, §4.1).
//! * [`Trained::decompress`] expands derivations back to the original
//!   bytecode; `decompress(compress(p))` equals the canonicalized `p`
//!   exactly, which the test suite checks everywhere.

#![warn(missing_docs)]

pub mod canonical;
pub mod compress;
pub mod engine;
pub mod expander;
pub mod pipeline;

pub use canonical::canonicalize_program;
pub use compress::{CompressError, CompressedProgram, CompressionStats, DecompressError};
pub use engine::{
    BatchEntry, CacheStats, Compressor, CompressorConfig, CompressorConfigBuilder, PhaseTimings,
};
pub use expander::{expand, expand_with, ExpanderConfig, ExpansionStats};
pub use pgr_earley::{EarleyBudget, NoParse};
pub use pipeline::{train, TrainConfig, TrainError, Trained};
