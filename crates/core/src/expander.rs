//! The grammar expander: greedy inlining of the most frequent parse-forest
//! edge (§4.1, Fig. 2).
//!
//! "To construct an expanded grammar, we parse a sample program … and
//! obtain a forest of parse trees. We then inline the pair of rules at the
//! endpoints of the most frequent edge in the forest, contract all
//! occurrences of this edge, add the new inlined rule to the grammar, and
//! repeat. We stop creating rules for a non-terminal once it has 256
//! rules." Unused inlined rules are removed ("subsumed", §4.1). The greedy
//! choice is a heuristic; the exact problem is NP-hard.
//!
//! An *edge* here is `(parent rule, slot, child rule)` where `slot` is the
//! index of the contracted child among the parent's children — the
//! specific non-terminal occurrence `B` in `A → α B β`. Counts are
//! maintained incrementally (Re-Pair style) with a lazy max-heap, because
//! every contraction relabels the parent and therefore changes the keys of
//! all edges incident to it.

use pgr_grammar::{Forest, Grammar, NodeId, Nt, RuleId, RuleOrigin};
use pgr_telemetry::{names, Metrics, Recorder};
use std::collections::{BTreeSet, BinaryHeap, HashMap, HashSet};

/// Tuning knobs for the expander.
#[derive(Debug, Clone)]
pub struct ExpanderConfig {
    /// Rule budget per non-terminal; the paper uses 256 so every
    /// derivation step encodes as one byte. Values above 256 break the
    /// one-byte encoding and are rejected by the pipeline.
    pub max_rules_per_nt: usize,
    /// Minimum edge frequency worth a new rule. The paper inlines while
    /// profitable; an edge used once saves one derivation step but costs
    /// a grammar rule, so 2 is the sensible default.
    pub min_count: u64,
    /// Cap on right-hand-side length of created rules (the grammar
    /// serialization stores one length byte).
    pub max_rhs_len: usize,
    /// Remove inlined rules that fall out of use ("in our current
    /// implementation, we remove unused inlined rules", §4.1).
    pub remove_subsumed: bool,
    /// Reuse an existing live rule when an inline would create an
    /// identical (left-hand side, right-hand side) pair, instead of
    /// burning a fresh slot in the 256-rule budget. The paper always
    /// creates a new rule; deduplication is a refinement measured by the
    /// A2 ablation. Off by default for paper fidelity.
    pub dedupe_rules: bool,
    /// Optional hard cap on the number of created rules (ablation and
    /// test use; `None` in normal operation).
    pub max_new_rules: Option<usize>,
    /// Reserve the last one-byte rule index of this non-terminal for the
    /// verbatim-escape marker (`pgr_bytecode::escape::VERBATIM_MARKER`):
    /// the non-terminal saturates at 255 rules instead of 256, so index
    /// `0xFF` can never name a real rule at a segment start. The trainer
    /// sets this to the start non-terminal; `None` keeps the full paper
    /// budget (and forfeits the escape).
    pub escape_reserve: Option<Nt>,
}

impl Default for ExpanderConfig {
    fn default() -> ExpanderConfig {
        ExpanderConfig {
            max_rules_per_nt: 256,
            min_count: 2,
            max_rhs_len: 255,
            remove_subsumed: true,
            dedupe_rules: false,
            max_new_rules: None,
            escape_reserve: None,
        }
    }
}

/// What an expansion run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExpansionStats {
    /// Rules created by inlining.
    pub rules_added: usize,
    /// Inlines that reused an existing identical rule instead of adding
    /// one (only with [`ExpanderConfig::dedupe_rules`]).
    pub rules_reused: usize,
    /// Inlined rules later removed as subsumed.
    pub rules_removed: usize,
    /// Total edge contractions (= derivation steps saved on the training
    /// forest).
    pub contractions: usize,
    /// Forest derivation length before expansion.
    pub derivation_before: usize,
    /// Forest derivation length after expansion.
    pub derivation_after: usize,
    /// Greedy-loop iterations: heap pops examined, including stale
    /// entries and skipped candidates.
    pub inline_iterations: u64,
    /// Profitable edges skipped because their non-terminal already held
    /// [`ExpanderConfig::max_rules_per_nt`] rules (§4.1 saturation).
    pub saturated_skips: u64,
    /// Largest rules-per-non-terminal count after expansion (256 means
    /// some non-terminal used its whole one-byte index space).
    pub rules_per_nt_peak: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Edge {
    parent: RuleId,
    slot: u32,
    child: RuleId,
}

/// Incremental (count, occurrence-set) bookkeeping for forest edges.
struct EdgeIndex {
    /// Edge → set of child nodes realizing it. Ordered so contraction
    /// order (and therefore training output) is deterministic.
    occ: HashMap<Edge, BTreeSet<NodeId>>,
    /// Lazy max-heap of (count-at-push, edge).
    heap: BinaryHeap<(u64, RuleId, u32, RuleId)>,
}

impl EdgeIndex {
    fn new() -> EdgeIndex {
        EdgeIndex {
            occ: HashMap::new(),
            heap: BinaryHeap::new(),
        }
    }

    fn inc(&mut self, edge: Edge, child_node: NodeId) {
        let set = self.occ.entry(edge).or_default();
        if set.insert(child_node) {
            self.heap
                .push((set.len() as u64, edge.parent, edge.slot, edge.child));
        }
    }

    fn dec(&mut self, edge: Edge, child_node: NodeId) {
        if let Some(set) = self.occ.get_mut(&edge) {
            set.remove(&child_node);
            if set.is_empty() {
                self.occ.remove(&edge);
            }
        }
    }

    fn count(&self, edge: &Edge) -> u64 {
        self.occ.get(edge).map_or(0, |s| s.len() as u64)
    }

    fn any_occurrence(&self, edge: &Edge) -> Option<NodeId> {
        self.occ.get(edge).and_then(|s| s.first().copied())
    }
}

/// Run the greedy expansion loop, mutating `grammar` (adding inlined
/// rules, removing subsumed ones) and `forest` (contracting edges) in
/// lockstep.
///
/// # Panics
///
/// Panics if `config.max_rules_per_nt > 256` (one-byte rule indices) or
/// if the forest references rules outside `grammar`.
pub fn expand(
    grammar: &mut Grammar,
    forest: &mut Forest,
    config: &ExpanderConfig,
) -> ExpansionStats {
    assert!(
        config.max_rules_per_nt <= 256,
        "rule indices must fit one byte"
    );
    let mut stats = ExpansionStats {
        derivation_before: forest.live_count(),
        ..ExpansionStats::default()
    };

    // Live (lhs, rhs) -> rule map for optional deduplication.
    let mut by_shape: HashMap<(pgr_grammar::Nt, Vec<pgr_grammar::Symbol>), RuleId> = HashMap::new();
    if config.dedupe_rules {
        for nt in 0..grammar.nt_count() {
            let nt = pgr_grammar::Nt(nt as u16);
            for &id in grammar.rules_of(nt) {
                by_shape.insert((nt, grammar.rule(id).rhs.clone()), id);
            }
        }
    }

    // Initial scan: edge occurrences and per-rule use counts.
    let mut edges = EdgeIndex::new();
    let mut rule_use: Vec<u64> = vec![0; grammar.rule_slots()];
    for root in forest.roots().to_vec() {
        // Iterative preorder walk.
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = forest.node(id);
            rule_use[node.rule.index()] += 1;
            for (slot, &child) in node.children.iter().enumerate() {
                edges.inc(
                    Edge {
                        parent: node.rule,
                        slot: slot as u32,
                        child: forest.node(child).rule,
                    },
                    child,
                );
                stack.push(child);
            }
        }
    }

    while let Some((pushed_count, parent, slot, child)) = edges.heap.pop() {
        stats.inline_iterations += 1;
        if pushed_count < config.min_count {
            break; // max-heap: nothing better remains
        }
        if let Some(cap) = config.max_new_rules {
            if stats.rules_added >= cap {
                break;
            }
        }
        let edge = Edge {
            parent,
            slot,
            child,
        };
        if edges.count(&edge) != pushed_count {
            continue; // stale heap entry
        }
        let lhs = grammar.rule(parent).lhs;
        // The escape-reserved non-terminal gives up its last one-byte
        // rule index so the verbatim marker stays unambiguous.
        let nt_budget = if config.escape_reserve == Some(lhs) {
            config.max_rules_per_nt.min(255)
        } else {
            config.max_rules_per_nt
        };
        if grammar.rules_of(lhs).len() >= nt_budget {
            stats.saturated_skips += 1;
            continue; // this non-terminal is saturated (§4.1)
        }
        let new_rhs = grammar.inlined_rhs(parent, slot as usize, child);
        if new_rhs.len() > config.max_rhs_len {
            continue;
        }
        let reused = if config.dedupe_rules {
            by_shape.get(&(lhs, new_rhs.clone())).copied()
        } else {
            None
        };
        let new_rule = match reused {
            Some(existing) => {
                stats.rules_reused += 1;
                existing
            }
            None => {
                let id = grammar.add_rule(
                    lhs,
                    new_rhs.clone(),
                    RuleOrigin::Inlined {
                        parent,
                        slot,
                        child,
                    },
                );
                if config.dedupe_rules {
                    by_shape.insert((lhs, new_rhs), id);
                }
                stats.rules_added += 1;
                id
            }
        };
        if rule_use.len() < grammar.rule_slots() {
            rule_use.resize(grammar.rule_slots(), 0);
        }

        // Contract every occurrence. Contractions can invalidate other
        // occurrences of the same edge (when parent == child rule), so we
        // take them one at a time from the live set.
        let mut touched_rules: HashSet<RuleId> = HashSet::new();
        while let Some(child_node) = edges.any_occurrence(&edge) {
            contract_one(
                forest,
                grammar,
                &mut edges,
                &mut rule_use,
                child_node,
                new_rule,
            );
            stats.contractions += 1;
        }
        touched_rules.insert(parent);
        touched_rules.insert(child);

        if config.remove_subsumed {
            for r in touched_rules {
                if rule_use[r.index()] == 0
                    && grammar.rule(r).alive
                    && !matches!(grammar.rule(r).origin, RuleOrigin::Original)
                    && r != new_rule
                {
                    if config.dedupe_rules {
                        let rule = grammar.rule(r);
                        by_shape.remove(&(rule.lhs, rule.rhs.clone()));
                    }
                    grammar.remove_rule(r);
                    stats.rules_removed += 1;
                }
            }
        }
    }

    stats.derivation_after = forest.live_count();
    stats.rules_per_nt_peak = (0..grammar.nt_count())
        .map(|i| grammar.rules_of(pgr_grammar::Nt(i as u16)).len())
        .max()
        .unwrap_or(0);
    stats
}

/// [`expand`], additionally reporting `train.*` counters (inline
/// iterations, contractions, rule churn, saturation) into `recorder`.
pub fn expand_with(
    grammar: &mut Grammar,
    forest: &mut Forest,
    config: &ExpanderConfig,
    recorder: &Recorder,
) -> ExpansionStats {
    let stats = expand(grammar, forest, config);
    if recorder.is_enabled() {
        let mut batch = Metrics::new();
        batch.add(names::TRAIN_INLINE_ITERATIONS, stats.inline_iterations);
        batch.add(names::TRAIN_CONTRACTIONS, stats.contractions as u64);
        batch.add(names::TRAIN_RULES_ADDED, stats.rules_added as u64);
        batch.add(names::TRAIN_RULES_REUSED, stats.rules_reused as u64);
        batch.add(names::TRAIN_RULES_REMOVED, stats.rules_removed as u64);
        batch.add(names::TRAIN_SATURATED_SKIPS, stats.saturated_skips);
        batch.gauge_max(
            names::TRAIN_RULES_PER_NT_PEAK,
            stats.rules_per_nt_peak as u64,
        );
        recorder.record(batch);
    }
    stats
}

/// Contract one edge occurrence: the parent of `child_node` absorbs it and
/// is relabeled `new_rule`, with all incident edge counts updated.
fn contract_one(
    forest: &mut Forest,
    _grammar: &Grammar,
    edges: &mut EdgeIndex,
    rule_use: &mut [u64],
    child_node: NodeId,
    new_rule: RuleId,
) {
    let parent = forest
        .node(child_node)
        .parent()
        .expect("occurrence has a parent");
    let parent_rule = forest.node(parent).rule;
    let child_rule = forest.node(child_node).rule;

    // Remove edges incident to the parent (its label is about to change) …
    for (slot, &ch) in forest.node(parent).children.iter().enumerate() {
        edges.dec(
            Edge {
                parent: parent_rule,
                slot: slot as u32,
                child: forest.node(ch).rule,
            },
            ch,
        );
    }
    // … the edge from the grandparent to the parent …
    let gp = forest.node(parent).parent();
    if let Some(gp) = gp {
        let gp_rule = forest.node(gp).rule;
        let gslot = forest.slot_of(parent) as u32;
        edges.dec(
            Edge {
                parent: gp_rule,
                slot: gslot,
                child: parent_rule,
            },
            parent,
        );
    }
    // … and the edges from the child to its children.
    for (slot, &gc) in forest.node(child_node).children.iter().enumerate() {
        edges.dec(
            Edge {
                parent: child_rule,
                slot: slot as u32,
                child: forest.node(gc).rule,
            },
            gc,
        );
    }

    forest.contract(child_node);
    forest.relabel(parent, new_rule);
    rule_use[parent_rule.index()] -= 1;
    rule_use[child_rule.index()] -= 1;
    rule_use[new_rule.index()] += 1;

    // Re-add edges with the parent's new label.
    for (slot, &ch) in forest.node(parent).children.iter().enumerate() {
        edges.inc(
            Edge {
                parent: new_rule,
                slot: slot as u32,
                child: forest.node(ch).rule,
            },
            ch,
        );
    }
    if let Some(gp) = gp {
        let gp_rule = forest.node(gp).rule;
        let gslot = forest.slot_of(parent) as u32;
        edges.inc(
            Edge {
                parent: gp_rule,
                slot: gslot,
                child: new_rule,
            },
            parent,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgr_bytecode::Opcode;
    use pgr_grammar::initial::tokenize_segment;
    use pgr_grammar::{Derivation, InitialGrammar};

    fn forest_of(ig: &InitialGrammar, segments: &[&[u8]]) -> Forest {
        let mut forest = Forest::new();
        for seg in segments {
            let tokens = tokenize_segment(seg).unwrap();
            forest.add_segment(ig, &tokens).unwrap();
        }
        forest
    }

    /// `LIT1 1 POPU` repeated: a hot statement the expander should fuse
    /// into a single start rule.
    fn hot_segment(reps: usize) -> Vec<u8> {
        let mut code = Vec::new();
        for _ in 0..reps {
            code.extend_from_slice(&[Opcode::LIT1 as u8, 1, Opcode::POPU as u8]);
        }
        code
    }

    #[test]
    fn expansion_shortens_the_training_derivation() {
        let ig = InitialGrammar::build();
        let mut g = ig.grammar.clone();
        let seg = hot_segment(50);
        let mut forest = forest_of(&ig, &[&seg]);
        let before = forest.live_count();
        let stats = expand(&mut g, &mut forest, &ExpanderConfig::default());
        assert_eq!(stats.derivation_before, before);
        assert_eq!(stats.derivation_after, forest.live_count());
        assert!(stats.derivation_after < before / 3, "expected large shrink");
        assert!(stats.rules_added > 0);
        assert_eq!(
            before - stats.derivation_after,
            stats.contractions,
            "each contraction removes exactly one derivation step"
        );
    }

    #[test]
    fn contracted_forest_still_yields_the_program() {
        let ig = InitialGrammar::build();
        let mut g = ig.grammar.clone();
        let seg = hot_segment(20);
        let tokens = tokenize_segment(&seg).unwrap();
        let mut forest = forest_of(&ig, &[&seg]);
        expand(&mut g, &mut forest, &ExpanderConfig::default());
        let root = forest.roots()[0];
        assert_eq!(forest.yield_string(&g, root), tokens);
        // And the derivation read off the contracted tree expands back.
        let d = Derivation::from_tree(&forest, root);
        assert_eq!(d.expand(&g, ig.nt_start).unwrap(), tokens);
        assert_eq!(d.len(), forest.live_count());
    }

    #[test]
    fn language_is_preserved_by_construction() {
        // Every inlined rule's RHS must equal its parent's RHS with the
        // slot non-terminal replaced by the child's RHS.
        let ig = InitialGrammar::build();
        let mut g = ig.grammar.clone();
        let seg = hot_segment(30);
        let mut forest = forest_of(&ig, &[&seg]);
        expand(&mut g, &mut forest, &ExpanderConfig::default());
        let mut checked = 0;
        for id in (0..g.rule_slots() as u32).map(RuleId) {
            let rule = g.rule(id);
            if let RuleOrigin::Inlined {
                parent,
                slot,
                child,
            } = rule.origin
            {
                if !rule.alive {
                    continue;
                }
                // Parents/children may themselves have been removed, but
                // their tombstones still record their RHS.
                let expected = g.inlined_rhs(parent, slot as usize, child);
                assert_eq!(rule.rhs, expected);
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn respects_rule_cap() {
        // One statement per segment (no spine fusion), 40 distinct
        // literals each seen four times: the expander wants 40 burnt
        // `<start> ::= LIT1 k POPU` rules, so a cap of 16 must bind.
        let mut segs: Vec<Vec<u8>> = Vec::new();
        for _ in 0..4 {
            for k in 0..40u8 {
                segs.push(vec![Opcode::LIT1 as u8, k, Opcode::POPU as u8]);
            }
        }
        let run = |cap: usize| {
            let ig = InitialGrammar::build();
            let mut g = ig.grammar.clone();
            let refs: Vec<&[u8]> = segs.iter().map(|s| s.as_slice()).collect();
            let mut forest = forest_of(&ig, &refs);
            let stats = expand(
                &mut g,
                &mut forest,
                &ExpanderConfig {
                    max_rules_per_nt: cap,
                    remove_subsumed: false,
                    ..ExpanderConfig::default()
                },
            );
            (ig, g, stats)
        };
        let (ig, g16, s16) = run(16);
        let (_, g256, s256) = run(256);
        // The cap limits rule *creation*; non-terminals that started with
        // more original rules than the cap (v1, v2, byte, ...) keep them.
        for nt in 0..g16.nt_count() {
            let nt = pgr_grammar::Nt(nt as u16);
            let original = ig.grammar.rules_of(nt).len();
            assert!(
                g16.rules_of(nt).len() <= 16.max(original),
                "{} exceeded cap with {} rules (original {original})",
                g16.nt_name(nt),
                g16.rules_of(nt).len()
            );
        }
        // The tight cap binds: <start> is saturated and the loose run
        // keeps adding rules past it.
        assert_eq!(g16.rules_of(ig.nt_start).len(), 16);
        assert!(g256.rules_of(ig.nt_start).len() > 16);
        assert!(s256.rules_added > s16.rules_added);
        assert!(s256.derivation_after <= s16.derivation_after);
    }

    #[test]
    fn min_count_two_means_no_singleton_rules() {
        let ig = InitialGrammar::build();
        let mut g = ig.grammar.clone();
        // A segment with no repetition at all.
        let seg = [Opcode::LIT1 as u8, 7, Opcode::POPU as u8];
        let mut forest = forest_of(&ig, &[&seg]);
        let stats = expand(&mut g, &mut forest, &ExpanderConfig::default());
        assert_eq!(stats.rules_added, 0);
        assert_eq!(stats.contractions, 0);
    }

    #[test]
    fn max_new_rules_caps_the_run() {
        let ig = InitialGrammar::build();
        let mut g = ig.grammar.clone();
        let seg = hot_segment(64);
        let mut forest = forest_of(&ig, &[&seg]);
        let stats = expand(
            &mut g,
            &mut forest,
            &ExpanderConfig {
                max_new_rules: Some(3),
                ..ExpanderConfig::default()
            },
        );
        assert!(stats.rules_added <= 3);
    }

    #[test]
    fn subsumed_rules_are_removed() {
        let ig = InitialGrammar::build();
        let mut g = ig.grammar.clone();
        // Repetition at two scales: first the small pattern wins, later a
        // bigger pattern subsumes it entirely.
        let seg = hot_segment(40);
        let mut forest = forest_of(&ig, &[&seg]);
        let with_removal = expand(&mut g, &mut forest, &ExpanderConfig::default());

        let ig2 = InitialGrammar::build();
        let mut g2 = ig2.grammar.clone();
        let mut forest2 = forest_of(&ig2, &[&seg]);
        let without = expand(
            &mut g2,
            &mut forest2,
            &ExpanderConfig {
                remove_subsumed: false,
                ..ExpanderConfig::default()
            },
        );
        assert_eq!(without.rules_removed, 0);
        // Same compression power either way.
        assert_eq!(with_removal.derivation_after, without.derivation_after);
        // Removal keeps the live grammar no larger.
        assert!(g.live_rule_count() <= g2.live_rule_count());
    }

    #[test]
    fn dedupe_reuses_identical_rules() {
        // Two segment shapes that converge on the same inlined rule via
        // different inline orders: with dedupe on, the duplicates fold.
        let ig = InitialGrammar::build();
        let seg_a = hot_segment(8);
        let mut seg_b = hot_segment(8);
        seg_b.extend_from_slice(&[Opcode::RETV as u8]);
        let run = |dedupe: bool| {
            let ig = InitialGrammar::build();
            let mut g = ig.grammar.clone();
            let mut forest = forest_of(&ig, &[&seg_a, &seg_b]);
            let stats = expand(
                &mut g,
                &mut forest,
                &ExpanderConfig {
                    dedupe_rules: dedupe,
                    remove_subsumed: false,
                    ..ExpanderConfig::default()
                },
            );
            (g.live_rule_count(), stats)
        };
        let (live_plain, stats_plain) = run(false);
        let (live_dedupe, stats_dedupe) = run(true);
        assert_eq!(stats_plain.rules_reused, 0);
        // Dedupe must never *hurt*: at most as many live rules, and the
        // forest shrinks at least as far.
        assert!(live_dedupe <= live_plain);
        assert!(stats_dedupe.derivation_after <= stats_plain.derivation_after);
        let _ = ig;
    }

    #[test]
    fn self_recursive_edges_contract_safely() {
        let ig = InitialGrammar::build();
        let mut g = ig.grammar.clone();
        // Long INDIRU chains: the hot edge is <v>::=<v><v1> into itself.
        let mut seg = vec![Opcode::ADDRLP as u8, 0, 0];
        for _ in 0..10 {
            seg.push(Opcode::INDIRU as u8);
        }
        seg.push(Opcode::POPU as u8);
        let seg3: Vec<u8> = seg
            .iter()
            .chain(seg.iter())
            .chain(seg.iter())
            .copied()
            .collect();
        let tokens = tokenize_segment(&seg3).unwrap();
        let mut forest = forest_of(&ig, &[&seg3]);
        expand(&mut g, &mut forest, &ExpanderConfig::default());
        let root = forest.roots()[0];
        assert_eq!(forest.yield_string(&g, root), tokens);
    }
}
