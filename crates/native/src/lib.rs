//! # pgr-native
//!
//! A synthetic x86-style code generator used for the paper's Table 2
//! comparison: "a conventional x86 executable obtained by compiling lcc
//! using lcc". The experiment needs the *size* of native code for the
//! same program, so this crate translates the stack bytecode into a
//! pseudo-x86 instruction listing with byte-accurate encodings of the
//! kind a simple one-pass compiler (like lcc's x86 back end) emits:
//! naive stack-machine code, then a window peephole that plays the role
//! of lcc's register stack — push/pop traffic becomes direct `mov`s,
//! immediates fold into ALU operations, and compare/branch chains become
//! `cmp`+`jcc`.
//!
//! The emitted listing is a real artifact (see [`translate_procedure`]
//! and [`listing`]); sizes are the sum of the listed encodings. A native
//! executable needs no interpreter, no label tables (branch offsets are
//! inline), no descriptors and no trampolines, so its total is code +
//! data — which is what Table 2's third row reflects.
//!
//! This crate is the home of everything that lowers bytecode *below*
//! the grammar level. Besides the x86-size model, the [`fuse`] module
//! performs superinstruction selection for the VM's profile-guided
//! tier-2 backend: it fuses a hot segment's resolved instruction trace
//! into specialized superinstructions (the same peephole vocabulary,
//! re-targeted at interpreter handlers instead of a listing).

#![warn(missing_docs)]

pub mod fuse;

use pgr_bytecode::{decode, Instruction, Opcode, Procedure, Program};

/// Structural classification of a pseudo-instruction, used by the
/// peephole matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// `push eax`
    PushEax,
    /// `push imm`
    PushImm(u32),
    /// `pop eax`
    PopEax,
    /// `pop ecx`
    PopEcx,
    /// `lea eax, [ebp±d]` (frame address)
    LeaEax(u32),
    /// `lea ecx, [ebp±d]`
    LeaEcx(u32),
    /// `mov eax, [eax]`
    LoadEaxViaEax,
    /// `mov eax, [ebp±d]`
    LoadEaxFrame(u32),
    /// ALU op `eax, ecx` (add/sub/and/or/xor/imul/cmp)
    AluEaxEcx,
    /// `setcc al; movzx eax, al`
    Setcc,
    /// `test eax, eax`
    TestEax,
    /// `jnz L` after a test
    Jnz,
    /// `jcc L` fused conditional branch
    Jcc,
    /// `cmp eax, 0` produced by folding a pushed zero
    CmpZero,
    /// `mov [ecx], eax/al/ax` (scalar store through ecx)
    StoreViaEcx,
    /// anything else (opaque to the peephole)
    Other,
}

/// One pseudo-x86 instruction: classification, text, and encoded size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Asm {
    /// Peephole classification.
    pub kind: Kind,
    /// Pseudo-assembly text (for dumps and debugging).
    pub text: String,
    /// Modeled encoding size in bytes.
    pub bytes: u32,
}

impl Asm {
    fn new(kind: Kind, text: impl Into<String>, bytes: u32) -> Asm {
        Asm {
            kind,
            text: text.into(),
            bytes,
        }
    }

    fn other(text: impl Into<String>, bytes: u32) -> Asm {
        Asm::new(Kind::Other, text, bytes)
    }
}

/// `[ebp+disp]` operand cost on top of a base opcode size: +1 for disp8,
/// +4 for disp32.
fn disp_cost(base: u32, disp: u32) -> u32 {
    if disp < 128 {
        base + 1
    } else {
        base + 4
    }
}

/// Cost of an ALU op with an immediate: opcode+modrm+imm8 or +imm32.
fn imm_cost(imm: u32) -> u32 {
    if imm < 128 {
        3
    } else {
        6
    }
}

/// Naive per-instruction expansion (stack-machine style).
fn expand(insn: &Instruction, out: &mut Vec<Asm>) {
    use Opcode::*;
    let op = insn.opcode;
    let imm = insn.operand_u32();
    let push_eax = || Asm::new(Kind::PushEax, "push eax", 1);
    let pop_eax = || Asm::new(Kind::PopEax, "pop eax", 1);
    let pop_ecx = || Asm::new(Kind::PopEcx, "pop ecx", 1);
    match op {
        LIT1 => out.push(Asm::new(Kind::PushImm(imm), format!("push {imm}"), 2)),
        LIT2 | LIT3 | LIT4 => out.push(Asm::new(Kind::PushImm(imm), format!("push {imm}"), 5)),
        ADDRLP | ADDRFP => {
            let d = imm + 8;
            out.push(Asm::new(
                Kind::LeaEax(d),
                format!(
                    "lea eax, [ebp{}{}]",
                    if op == ADDRLP { "-" } else { "+" },
                    d
                ),
                disp_cost(2, d),
            ));
            out.push(push_eax());
        }
        ADDRGP => out.push(Asm::new(
            Kind::PushImm(imm),
            format!("push offset g{imm}"),
            5,
        )),
        INDIRU => {
            out.push(pop_eax());
            out.push(Asm::new(Kind::LoadEaxViaEax, "mov eax, [eax]", 2));
            out.push(push_eax());
        }
        INDIRC | INDIRS => {
            out.push(pop_eax());
            out.push(Asm::other("movzx eax, [eax]", 3));
            out.push(push_eax());
        }
        INDIRF => {
            out.push(pop_eax());
            out.push(Asm::other("fld dword [eax]; fstp [esp-4]; adj", 8));
        }
        INDIRD => {
            out.push(pop_eax());
            out.push(Asm::other("fld qword [eax]; fstp [esp-8]; adj", 8));
        }
        ADDU | SUBU | BANDU | BORU | BXORU | MULI | MULU => {
            out.push(pop_ecx());
            out.push(pop_eax());
            let (text, bytes) = match op {
                MULI | MULU => ("imul eax, ecx", 3),
                ADDU => ("add eax, ecx", 2),
                SUBU => ("sub eax, ecx", 2),
                BANDU => ("and eax, ecx", 2),
                BORU => ("or eax, ecx", 2),
                _ => ("xor eax, ecx", 2),
            };
            out.push(Asm::new(Kind::AluEaxEcx, text, bytes));
            out.push(push_eax());
        }
        DIVI | MODI | DIVU | MODU => {
            out.push(pop_ecx());
            out.push(pop_eax());
            out.push(Asm::other("cdq; idiv ecx", 3));
            out.push(push_eax());
        }
        LSHI | LSHU | RSHI | RSHU => {
            out.push(pop_ecx());
            out.push(pop_eax());
            out.push(Asm::other("shl/shr/sar eax, cl", 2));
            out.push(push_eax());
        }
        EQU | NEU | LTI | LEI | GTI | GEI | LTU | LEU | GTU | GEU => {
            out.push(pop_ecx());
            out.push(pop_eax());
            out.push(Asm::new(Kind::AluEaxEcx, "cmp eax, ecx", 2));
            out.push(Asm::new(Kind::Setcc, "setcc al; movzx eax, al", 6));
            out.push(push_eax());
        }
        ADDD | SUBD | MULD | DIVD | ADDF | SUBF | MULF | DIVF => {
            out.push(Asm::other("fld [esp+k]; fop [esp]; adjust", 10));
        }
        EQD | NED | LTD | LED | GTD | GED | EQF | NEF | LTF | LEF | GTF | GEF => {
            out.push(Asm::other("fcompp; fnstsw ax; sahf", 8));
            out.push(Asm::new(Kind::Setcc, "setcc al; movzx eax, al", 6));
            out.push(push_eax());
        }
        NEGI | BCOMU => out.push(Asm::other("neg/not dword [esp]", 3)),
        NEGF | NEGD => out.push(Asm::other("fld [esp]; fchs; fstp [esp]", 6)),
        CVDF | CVFD | CVID | CVIF | CVDI | CVFI => out.push(Asm::other("fild/fistp conversion", 8)),
        CVI1I4 | CVI2I4 => out.push(Asm::other("movsx via [esp]", 6)),
        CVU1U4 | CVU2U4 => out.push(Asm::other("and dword [esp], mask", 7)),
        ASGNU | ASGNF => {
            out.push(pop_ecx());
            out.push(pop_eax());
            out.push(Asm::new(Kind::StoreViaEcx, "mov [ecx], eax", 2));
        }
        ASGNC => {
            out.push(pop_ecx());
            out.push(pop_eax());
            out.push(Asm::new(Kind::StoreViaEcx, "mov [ecx], al", 2));
        }
        ASGNS => {
            out.push(pop_ecx());
            out.push(pop_eax());
            out.push(Asm::new(Kind::StoreViaEcx, "mov [ecx], ax", 3));
        }
        ASGND => {
            out.push(pop_ecx());
            out.push(Asm::other("fld qword [esp]; fstp [ecx]; adj", 7));
        }
        ASGNB => {
            out.push(Asm::other("pop edi; pop esi", 2));
            out.push(Asm::other(format!("mov ecx, {imm}; rep movsb"), 7));
        }
        ARGB => {
            out.push(Asm::other("pop esi", 1));
            out.push(Asm::other(format!("sub esp, {imm}; rep movs"), 10));
        }
        ARGD | ARGF | ARGU => {
            // Arguments are already on the hardware stack in this model.
            out.push(Asm::other("; arg in place", 0));
        }
        BrTrue => {
            out.push(pop_eax());
            out.push(Asm::new(Kind::TestEax, "test eax, eax", 2));
            out.push(Asm::new(Kind::Jnz, format!("jnz L{imm}"), 3));
        }
        JUMPV => out.push(Asm::other(format!("jmp L{imm}"), 3)),
        // Calls use a callee-pops convention (`ret n`), so call sites
        // carry no argument cleanup.
        CALLD | CALLF | CALLU | CALLV => {
            out.push(pop_eax());
            out.push(Asm::other("call eax", 2));
            if op != CALLV {
                out.push(push_eax());
            }
        }
        LocalCALLD | LocalCALLF | LocalCALLU | LocalCALLV => {
            out.push(Asm::other(format!("call f{imm}"), 5));
            if op != LocalCALLV {
                out.push(push_eax());
            }
        }
        RETD | RETF => out.push(Asm::other("fld [esp]; leave; ret n", 6)),
        RETU => {
            out.push(pop_eax());
            out.push(Asm::other("leave; ret n", 4));
        }
        RETV => out.push(Asm::other("leave; ret n", 4)),
        POPD => out.push(Asm::other("add esp, 8", 3)),
        POPF | POPU => out.push(Asm::other("add esp, 4", 3)),
        LABELV => out.push(Asm::other("L:", 0)),
    }
}

/// The register-stack peephole. Rules run to fixpoint; each preserves
/// the value flow of the naive code.
fn peephole(list: &mut Vec<Asm>) {
    use Kind::*;
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < list.len() {
            let k0 = list[i].kind;
            let k1 = list.get(i + 1).map(|a| a.kind);
            let k2 = list.get(i + 2).map(|a| a.kind);

            // push eax / pop eax -> (nothing)
            if k0 == PushEax && k1 == Some(PopEax) {
                list.drain(i..i + 2);
                changed = true;
                continue;
            }
            // push eax / pop ecx -> mov ecx, eax
            if k0 == PushEax && k1 == Some(PopEcx) {
                list.splice(i..i + 2, [Asm::other("mov ecx, eax", 2)]);
                changed = true;
                continue;
            }
            // lea eax, X / push eax / pop ecx -> lea ecx, X
            if let (LeaEax(d), Some(PushEax), Some(PopEcx)) = (k0, k1, k2) {
                let bytes = list[i].bytes;
                let text = list[i].text.replace("eax", "ecx");
                list.splice(i..i + 3, [Asm::new(LeaEcx(d), text, bytes)]);
                changed = true;
                continue;
            }
            // lea eax, X / mov eax, [eax] -> mov eax, [ebp±d]
            if let (LeaEax(d), Some(LoadEaxViaEax)) = (k0, k1) {
                let text = list[i].text.replace("lea eax,", "mov eax,");
                list.splice(i..i + 2, [Asm::new(LoadEaxFrame(d), text, disp_cost(1, d))]);
                changed = true;
                continue;
            }
            // push eax / lea ecx, X / pop eax -> lea ecx, X
            if k0 == PushEax && matches!(k1, Some(LeaEcx(_))) && k2 == Some(PopEax) {
                let kept = list[i + 1].clone();
                list.splice(i..i + 3, [kept]);
                changed = true;
                continue;
            }
            // push imm / pop ecx / <alu eax, ecx> -> <alu eax, imm>
            if let (PushImm(v), Some(PopEcx), Some(AluEaxEcx)) = (k0, k1, k2) {
                let text = list[i + 2].text.replace("ecx", &v.to_string());
                let kind = if v == 0 && text.starts_with("cmp") {
                    CmpZero
                } else {
                    Other
                };
                list.splice(i..i + 3, [Asm::new(kind, text, imm_cost(v))]);
                changed = true;
                continue;
            }
            // push eax / push imm / pop ecx / pop eax / <alu eax, ecx>
            //   -> <alu eax, imm>   (eax is already the left operand)
            let k3 = list.get(i + 3).map(|a| a.kind);
            let k4 = list.get(i + 4).map(|a| a.kind);
            if let (PushEax, Some(PushImm(v)), Some(PopEcx), Some(PopEax), Some(AluEaxEcx)) =
                (k0, k1, k2, k3, k4)
            {
                let text = list[i + 4].text.replace("ecx", &v.to_string());
                let kind = if v == 0 && text.starts_with("cmp") {
                    CmpZero
                } else {
                    Other
                };
                list.splice(i..i + 5, [Asm::new(kind, text, imm_cost(v))]);
                changed = true;
                continue;
            }
            // push eax / pop ecx / pop eax: the pushed value goes to ecx
            // while eax reloads the older operand; keep the exchange as
            // two movs only when a plain swap-free form exists. The
            // common shape `push eax; <load eax>; pop ecx` is handled by
            // the rules above, so nothing to do here.
            // setcc / test eax, eax / jnz -> jcc (fused compare+branch)
            if k0 == Setcc && k1 == Some(TestEax) && k2 == Some(Jnz) {
                let text = list[i + 2].text.replace("jnz", "jcc");
                list.splice(i..i + 3, [Asm::new(Jcc, text, 3)]);
                changed = true;
                continue;
            }
            // setcc / cmp eax, 0 / jcc -> jcc with the inverted condition
            // (the compiler's branch-if-false idiom collapses entirely).
            if k0 == Setcc && k1 == Some(CmpZero) && k2 == Some(Jcc) {
                let kept = list[i + 2].clone();
                list.splice(i..i + 3, [kept]);
                changed = true;
                continue;
            }
            // mov eax, [ebp±d] / push eax / pop ecx -> mov ecx, [ebp±d]
            if let (LoadEaxFrame(_), Some(PushEax), Some(PopEcx)) = (k0, k1, k2) {
                let text = list[i].text.replace("eax", "ecx");
                let bytes = list[i].bytes;
                list.splice(i..i + 3, [Asm::other(text, bytes)]);
                changed = true;
                continue;
            }
            // lea ecx, [ebp±d] / mov [ecx], r -> mov [ebp±d], r
            if let (LeaEcx(d), Some(StoreViaEcx)) = (k0, k1) {
                let target = list[i].text.replace("lea ecx, ", "");
                let reg = list[i + 1]
                    .text
                    .rsplit(' ')
                    .next()
                    .expect("store text has a register")
                    .to_string();
                list.splice(
                    i..i + 2,
                    [Asm::other(format!("mov {target}, {reg}"), disp_cost(1, d))],
                );
                changed = true;
                continue;
            }
            // push eax / pop edi-style store setup handled via Other is
            // left alone.
            i += 1;
        }
    }
}

/// Translate one procedure into a peephole-cleaned pseudo-x86 listing.
pub fn translate_procedure(proc: &Procedure) -> Vec<Asm> {
    let mut out = vec![
        Asm::other(format!("{}:", proc.name), 0),
        Asm::other("push ebp; mov ebp, esp", 3),
        Asm::other(format!("sub esp, {}", proc.frame_size), 6),
    ];
    for insn in decode(&proc.code) {
        let Ok(insn) = insn else { break };
        expand(&insn, &mut out);
    }
    peephole(&mut out);
    out
}

/// Size breakdown of a native executable image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NativeSize {
    /// Machine-code bytes.
    pub code: usize,
    /// Initialized data bytes.
    pub data: usize,
    /// Uninitialized data bytes.
    pub bss: usize,
}

impl NativeSize {
    /// Total image size (native code needs no interpreter, label tables,
    /// descriptors, or trampolines).
    pub fn total(&self) -> usize {
        self.code + self.data + self.bss
    }
}

/// Translate a whole program and measure it.
pub fn measure_program(program: &Program) -> NativeSize {
    let code = program
        .procs
        .iter()
        .map(|p| {
            translate_procedure(p)
                .iter()
                .map(|a| a.bytes as usize)
                .sum::<usize>()
        })
        .sum();
    NativeSize {
        code,
        data: program.data.len(),
        bss: program.bss_size as usize,
    }
}

/// Render a procedure's listing as text (inspection artifact).
pub fn listing(proc: &Procedure) -> String {
    translate_procedure(proc)
        .iter()
        .map(|a| format!("{:40} ; {} bytes\n", a.text, a.bytes))
        .collect()
}

/// Naive (pre-peephole) cost of one opcode, for tests and calibration.
pub fn naive_cost(op: Opcode) -> usize {
    let insn = Instruction::new(op, &vec![0u8; op.operand_bytes()]);
    let mut out = Vec::new();
    expand(&insn, &mut out);
    out.iter().map(|a| a.bytes as usize).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgr_bytecode::asm::assemble;

    #[test]
    fn every_opcode_expands() {
        for &op in Opcode::ALL {
            let cost = naive_cost(op);
            if op == Opcode::LABELV {
                assert_eq!(cost, 0);
            } else if op.name().starts_with("ARG") && op != Opcode::ARGB {
                assert_eq!(cost, 0, "{op}");
            } else {
                assert!((1..=20).contains(&cost), "{op} costs {cost}");
            }
        }
    }

    #[test]
    fn peephole_collapses_push_pop_traffic() {
        let src = "proc f frame=4 args=0\n\
                   \tADDRLP 0\n\tINDIRU\n\tLIT1 1\n\tADDU\n\tADDRLP 0\n\tASGNU\n\tRETV\nendproc\n";
        let program = assemble(src).unwrap();
        let optimized = translate_procedure(&program.procs[0]);
        let text: Vec<&str> = optimized.iter().map(|a| a.text.as_str()).collect();
        assert!(
            text.iter().any(|t| t.starts_with("mov eax, [ebp")),
            "{text:?}"
        );
        assert!(text.iter().any(|t| t.starts_with("add eax, 1")), "{text:?}");

        let optimized_bytes: usize = optimized.iter().map(|a| a.bytes as usize).sum();
        let mut naive = vec![Asm::other("prologue", 9)];
        for insn in decode(&program.procs[0].code) {
            expand(&insn.unwrap(), &mut naive);
        }
        let naive_bytes: usize = naive.iter().map(|a| a.bytes as usize).sum();
        assert!(optimized_bytes < naive_bytes * 7 / 10);
    }

    #[test]
    fn compare_branch_chains_fuse() {
        let src = "proc f frame=4 args=0\n\
                   \tADDRLP 0\n\tINDIRU\n\tLIT1 10\n\tLTI\n\tBrTrue 0\n\tlabel 0\n\tRETV\nendproc\n";
        let program = assemble(src).unwrap();
        let listing = translate_procedure(&program.procs[0]);
        assert!(
            listing.iter().any(|a| a.kind == Kind::Jcc),
            "compare+branch should fuse: {listing:?}"
        );
    }

    #[test]
    fn native_size_is_in_the_papers_regime() {
        // Table 2's shape requires native code comparable to the
        // bytecode (lcc's x86 output was ~0.95x its bytecode): accept a
        // generous but meaningful band.
        for sample in ["sort", "calc", "8q"] {
            let program = pgr_corpus::compile_sample(sample);
            let native = measure_program(&program);
            let bc = program.code_size();
            let ratio = native.code as f64 / bc as f64;
            assert!(
                (0.7..1.8).contains(&ratio),
                "{sample}: native/bytecode ratio {ratio} ({} vs {bc})",
                native.code
            );
            assert_eq!(native.data, program.data.len());
            assert_eq!(native.bss, program.bss_size as usize);
        }
    }

    #[test]
    fn listing_is_renderable() {
        let program = pgr_corpus::compile_sample("8q");
        let text = listing(&program.procs[0]);
        assert!(text.contains("push ebp"));
        assert!(text.lines().count() > 5);
    }
}
