//! Superinstruction selection for the VM's tier-2 backend.
//!
//! The decoded-segment cache (tier 1) already reduces a hot segment to a
//! flat `(opcode, operands)` trace; what remains per step is dispatch
//! overhead and stack traffic that a one-pass lowering can remove. This
//! module is that lowering: a greedy, longest-match scan over a trace
//! that fuses the patterns the profile says dominate execution —
//! address-of + load/store pairs, immediate ALU operands, and
//! compare + branch chains — into single superinstructions with operands
//! and branch targets burnt in. It is the same peephole vocabulary the
//! synthetic x86 translator in this crate applies to full procedures
//! (push/pop traffic becomes direct moves, compares fuse with their
//! branches), re-targeted at the interpreter's tier-2 handlers instead
//! of a pseudo-x86 listing.
//!
//! Selection is pure data transformation: no VM types, no execution
//! state. Each [`SuperOp`] remembers the index of the **last** source
//! step it covers (`last`), which is what lets the executing tier keep
//! fuel and error accounting byte-identical to the per-step replay — a
//! side exit or fault inside a superinstruction maps back to an exact
//! source-step boundary.
//!
//! Anything outside the fused vocabulary (calls are excluded upstream,
//! division can fault data-dependently, float compares are cold) falls
//! through to [`Fused::Exec`], the plain one-step handler, so fusion can
//! never change semantics — only the dispatch count.

use pgr_bytecode::Opcode;

/// One tier-2 superinstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fused {
    /// Push a literal (`LIT1`-`LIT4` with the operand pre-decoded).
    Push {
        /// The literal value.
        imm: u32,
    },
    /// Push the address of a local (`ADDRLP`).
    PushLocal {
        /// Frame offset.
        off: u32,
    },
    /// Push the address of an argument (`ADDRFP`).
    PushArg {
        /// Argument-area offset.
        off: u32,
    },
    /// Load a local word: `ADDRLP off; INDIRU`.
    LoadLocal {
        /// Frame offset.
        off: u32,
    },
    /// Load an argument word: `ADDRFP off; INDIRU`.
    LoadArg {
        /// Argument-area offset.
        off: u32,
    },
    /// Store the top of stack into a local word: `ADDRLP off; ASGNU`.
    StoreLocal {
        /// Frame offset.
        off: u32,
    },
    /// Store the top of stack into an argument word: `ADDRFP off; ASGNU`.
    StoreArg {
        /// Argument-area offset.
        off: u32,
    },
    /// Load a global word: `ADDRGP g; INDIRU` with the global's address
    /// pre-resolved (the table is fixed at load time).
    LoadGlobal {
        /// Resolved absolute address.
        addr: u32,
    },
    /// Store the top of stack into a global word: `ADDRGP g; ASGNU`.
    StoreGlobal {
        /// Resolved absolute address.
        addr: u32,
    },
    /// Apply an ALU operator with an immediate right operand:
    /// `LITn imm; <alu>`.
    AluImm {
        /// The ALU operator (one of [`fusable_alu`]).
        op: Opcode,
        /// The immediate right operand.
        imm: u32,
    },
    /// Compare the top two stack values and branch when true:
    /// `<cmp>; BrTrue L` with the label pre-resolved.
    CmpBr {
        /// The comparison operator (one of [`fusable_cmp`]).
        cmp: Opcode,
        /// Resolved code offset of the branch target.
        target: u32,
    },
    /// Compare the top of stack against an immediate and branch when
    /// true: `LITn imm; <cmp>; BrTrue L`.
    CmpImmBr {
        /// The comparison operator.
        cmp: Opcode,
        /// The immediate right operand.
        imm: u32,
        /// Resolved code offset of the branch target.
        target: u32,
    },
    /// Pop a flag and branch when nonzero (`BrTrue` with the label
    /// pre-resolved).
    BrTruePop {
        /// Resolved code offset of the branch target.
        target: u32,
    },
    /// Unconditional branch (`JUMPV` with the label pre-resolved).
    Jump {
        /// Resolved code offset of the branch target.
        target: u32,
    },
    /// Unfused single step: dispatch through the shared operator
    /// semantics.
    Exec {
        /// The operator.
        op: Opcode,
        /// Its resolved operand bytes.
        operands: [u8; 4],
    },
}

/// A superinstruction plus the source-step span it covers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperOp {
    /// The fused operation.
    pub fused: Fused,
    /// Index of the last source step this superinstruction covers (its
    /// first is derivable from the previous superinstruction). Side
    /// exits and faults inside the handler charge fuel through an exact
    /// constituent step; `last` anchors that mapping.
    pub last: u32,
}

/// Whether `op` may serve as the ALU of an [`Fused::AluImm`]: total
/// (wrapping) operators only, so the fused handler can never fault on
/// the operation itself. Division and modulus stay unfused — their
/// divide-by-zero fault is data-dependent.
pub fn fusable_alu(op: Opcode) -> bool {
    use Opcode::*;
    matches!(
        op,
        ADDU | SUBU | MULU | MULI | BANDU | BORU | BXORU | LSHI | LSHU | RSHI | RSHU
    )
}

/// Whether `op` may serve as the comparison of a [`Fused::CmpBr`] /
/// [`Fused::CmpImmBr`]: the integer comparisons (float compares are
/// cold and keep their generic handlers).
pub fn fusable_cmp(op: Opcode) -> bool {
    use Opcode::*;
    matches!(
        op,
        EQU | NEU | LTU | LEU | GTU | GEU | LTI | LEI | GTI | GEI
    )
}

fn is_lit(op: Opcode) -> bool {
    use Opcode::*;
    matches!(op, LIT1 | LIT2 | LIT3 | LIT4)
}

fn u16_of(operands: [u8; 4]) -> u32 {
    u32::from(u16::from_le_bytes([operands[0], operands[1]]))
}

/// Fuse a resolved step trace into a superinstruction program.
///
/// `steps` is the segment's instruction trace with all operands already
/// resolved (the tier-1 cache guarantees this); `resolve_label` maps a
/// branch-label index to its code offset, and `resolve_global` maps a
/// global-table index to its load-time address. Both return `None` for
/// indices the program does not define — such steps stay unfused so the
/// runtime reports the exact same `BadLabel` / `BadGlobal` fault the
/// reference walker would.
pub fn fuse_steps(
    steps: &[(Opcode, [u8; 4])],
    mut resolve_label: impl FnMut(u16) -> Option<u32>,
    mut resolve_global: impl FnMut(u16) -> Option<u32>,
) -> Vec<SuperOp> {
    use Opcode::*;
    let mut out = Vec::with_capacity(steps.len());
    let mut i = 0usize;
    let mut resolve = |operands: [u8; 4]| -> Option<u32> {
        resolve_label(u16::from_le_bytes([operands[0], operands[1]]))
    };
    while i < steps.len() {
        let (op, operands) = steps[i];
        let next = steps.get(i + 1).map(|s| s.0);
        let (fused, n) = match op {
            ADDRLP | ADDRFP => {
                let off = u16_of(operands);
                match (op, next) {
                    (ADDRLP, Some(INDIRU)) => (Fused::LoadLocal { off }, 2),
                    (ADDRLP, Some(ASGNU)) => (Fused::StoreLocal { off }, 2),
                    (ADDRLP, _) => (Fused::PushLocal { off }, 1),
                    (_, Some(INDIRU)) => (Fused::LoadArg { off }, 2),
                    (_, Some(ASGNU)) => (Fused::StoreArg { off }, 2),
                    _ => (Fused::PushArg { off }, 1),
                }
            }
            ADDRGP => match resolve_global(u16::from_le_bytes([operands[0], operands[1]])) {
                Some(addr) => match next {
                    Some(INDIRU) => (Fused::LoadGlobal { addr }, 2),
                    Some(ASGNU) => (Fused::StoreGlobal { addr }, 2),
                    _ => (Fused::Push { imm: addr }, 1),
                },
                None => (Fused::Exec { op, operands }, 1),
            },
            _ if is_lit(op) => {
                let imm = u32::from_le_bytes(operands);
                match next {
                    Some(cmp)
                        if fusable_cmp(cmp) && steps.get(i + 2).map(|s| s.0) == Some(BrTrue) =>
                    {
                        match resolve(steps[i + 2].1) {
                            Some(target) => (Fused::CmpImmBr { cmp, imm, target }, 3),
                            None => (Fused::Push { imm }, 1),
                        }
                    }
                    Some(alu) if fusable_alu(alu) => (Fused::AluImm { op: alu, imm }, 2),
                    _ => (Fused::Push { imm }, 1),
                }
            }
            _ if fusable_cmp(op) && next == Some(BrTrue) => match resolve(steps[i + 1].1) {
                Some(target) => (Fused::CmpBr { cmp: op, target }, 2),
                None => (Fused::Exec { op, operands }, 1),
            },
            BrTrue => match resolve(operands) {
                Some(target) => (Fused::BrTruePop { target }, 1),
                None => (Fused::Exec { op, operands }, 1),
            },
            JUMPV => match resolve(operands) {
                Some(target) => (Fused::Jump { target }, 1),
                None => (Fused::Exec { op, operands }, 1),
            },
            _ => (Fused::Exec { op, operands }, 1),
        };
        out.push(SuperOp {
            fused,
            last: (i + n - 1) as u32,
        });
        i += n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use Opcode::*;

    fn lit(v: u32) -> (Opcode, [u8; 4]) {
        (LIT1, v.to_le_bytes())
    }

    fn op2(op: Opcode, v: u16) -> (Opcode, [u8; 4]) {
        let b = v.to_le_bytes();
        (op, [b[0], b[1], 0, 0])
    }

    fn op0(op: Opcode) -> (Opcode, [u8; 4]) {
        (op, [0; 4])
    }

    #[test]
    fn loop_head_fuses_to_load_cmp_branch() {
        // ADDRLP 0; INDIRU; LIT1 10; LTI; BrTrue 1 — the counting-loop
        // header — must become exactly LoadLocal + CmpImmBr.
        let steps = [
            op2(ADDRLP, 0),
            op0(INDIRU),
            lit(10),
            op0(LTI),
            op2(BrTrue, 1),
        ];
        let fused = fuse_steps(&steps, |l| Some(u32::from(l) * 100), |_| None);
        assert_eq!(
            fused,
            vec![
                SuperOp {
                    fused: Fused::LoadLocal { off: 0 },
                    last: 1
                },
                SuperOp {
                    fused: Fused::CmpImmBr {
                        cmp: LTI,
                        imm: 10,
                        target: 100
                    },
                    last: 4
                },
            ]
        );
    }

    #[test]
    fn store_and_alu_imm_fuse() {
        // ADDRLP 8; INDIRU; LIT1 3; ADDU; ADDRLP 8; ASGNU
        let steps = [
            op2(ADDRLP, 8),
            op0(INDIRU),
            lit(3),
            op0(ADDU),
            op2(ADDRLP, 8),
            op0(ASGNU),
        ];
        let fused = fuse_steps(&steps, |_| Some(0), |_| None);
        assert_eq!(fused.len(), 3);
        assert_eq!(fused[0].fused, Fused::LoadLocal { off: 8 });
        assert_eq!(fused[1].fused, Fused::AluImm { op: ADDU, imm: 3 });
        assert_eq!(fused[1].last, 3);
        assert_eq!(fused[2].fused, Fused::StoreLocal { off: 8 });
        assert_eq!(fused[2].last, 5);
    }

    #[test]
    fn unresolvable_labels_stay_generic() {
        // A branch whose label the procedure does not define must stay
        // an Exec step so the runtime faults exactly like the walker.
        let steps = [op0(EQU), op2(BrTrue, 7), op2(JUMPV, 7)];
        let fused = fuse_steps(&steps, |_| None, |_| None);
        assert_eq!(fused.len(), 3);
        for (s, f) in steps.iter().zip(&fused) {
            assert!(matches!(f.fused, Fused::Exec { op, .. } if op == s.0));
        }
    }

    #[test]
    fn globals_fuse_when_the_address_resolves() {
        // ADDRGP 2; INDIRU — load through a resolvable global — fuses
        // to LoadGlobal; ADDRGP 2; ASGNU to StoreGlobal; a bare ADDRGP
        // becomes a Push of the resolved address. An index the table
        // does not cover stays Exec so the runtime faults BadGlobal
        // exactly like the walker.
        let globals = [64u32, 68, 72];
        let resolve = |i: u16| globals.get(usize::from(i)).copied();
        let steps = [op2(ADDRGP, 2), op0(INDIRU)];
        let fused = fuse_steps(&steps, |_| None, resolve);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].fused, Fused::LoadGlobal { addr: 72 });
        assert_eq!(fused[0].last, 1);

        let steps = [op2(ADDRGP, 1), op0(ASGNU)];
        let fused = fuse_steps(&steps, |_| None, resolve);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].fused, Fused::StoreGlobal { addr: 68 });

        let steps = [op2(ADDRGP, 0), op0(RETV)];
        let fused = fuse_steps(&steps, |_| None, resolve);
        assert_eq!(fused[0].fused, Fused::Push { imm: 64 });

        let steps = [op2(ADDRGP, 9), op0(INDIRU)];
        let fused = fuse_steps(&steps, |_| None, resolve);
        assert_eq!(fused.len(), 2);
        assert!(matches!(fused[0].fused, Fused::Exec { op: ADDRGP, .. }));
    }

    #[test]
    fn division_never_takes_an_immediate() {
        // DIVU can fault on a zero divisor; it must keep the generic
        // handler even with a literal right operand.
        let steps = [lit(0), op0(DIVU)];
        let fused = fuse_steps(&steps, |_| Some(0), |_| None);
        assert_eq!(fused.len(), 2);
        assert_eq!(fused[0].fused, Fused::Push { imm: 0 });
        assert!(matches!(fused[1].fused, Fused::Exec { op: DIVU, .. }));
    }

    #[test]
    fn every_step_is_covered_exactly_once() {
        // Fused spans must tile the trace: each superop's span starts
        // right after the previous one's `last`.
        let steps = [
            op2(ADDRFP, 0),
            op0(INDIRU),
            lit(2),
            op0(LTI),
            op2(BrTrue, 0),
            op2(ADDRFP, 4),
            op0(ASGNU),
            lit(1),
            op2(JUMPV, 1),
            op0(RETV),
        ];
        let fused = fuse_steps(&steps, |l| Some(u32::from(l)), |_| None);
        let mut next = 0u32;
        for s in &fused {
            assert!(s.last >= next, "span went backwards at {s:?}");
            next = s.last + 1;
        }
        assert_eq!(next as usize, steps.len());
    }
}
