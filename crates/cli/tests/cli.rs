//! End-to-end CLI tests, driving the library entry point over real files
//! in a scratch directory.

use pgr_cli::run;
use std::path::PathBuf;

struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("pgr-cli-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch { dir }
    }

    fn path(&self, name: &str) -> String {
        self.dir.join(name).to_string_lossy().into_owned()
    }

    fn write(&self, name: &str, content: &str) -> String {
        let p = self.path(name);
        std::fs::write(&p, content).unwrap();
        p
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

const HELLO: &str = r#"
int main(void) {
    int i;
    for (i = 0; i < 3; i++) putchar('x');
    return 7;
}
"#;

#[test]
fn compile_run_roundtrip() {
    let s = Scratch::new("basic");
    let c = s.write("hello.c", HELLO);
    let image = s.path("hello.pgrb");
    assert_eq!(run(&args(&["compile", &c, "-o", &image])).unwrap(), 0);
    // `run` returns the program's return value as the exit code.
    assert_eq!(run(&args(&["run", &image])).unwrap(), 7);
}

#[test]
fn full_pipeline_through_files() {
    let s = Scratch::new("pipeline");
    let c = s.write("hello.c", HELLO);
    let image = s.path("hello.pgrb");
    let grammar = s.path("hello.pgrg");
    let packed = s.path("hello.pgrc");
    let unpacked = s.path("back.pgrb");

    run(&args(&["compile", &c, "-o", &image])).unwrap();
    run(&args(&["train", &image, "-o", &grammar])).unwrap();
    run(&args(&["compress", &image, "-g", &grammar, "-o", &packed])).unwrap();

    // The compressed file is a different (smaller) image.
    let plain = std::fs::read(&image).unwrap();
    let packed_bytes = std::fs::read(&packed).unwrap();
    assert!(packed_bytes.len() < plain.len());

    // Direct execution of the compressed image matches.
    assert_eq!(run(&args(&["run", &packed, "-g", &grammar])).unwrap(), 7);

    // Decompression restores a runnable uncompressed image.
    run(&args(&[
        "decompress",
        &packed,
        "-g",
        &grammar,
        "-o",
        &unpacked,
    ]))
    .unwrap();
    assert_eq!(run(&args(&["run", &unpacked])).unwrap(), 7);
}

#[test]
fn train_cap_flag_is_honoured() {
    let s = Scratch::new("cap");
    let c = s.write("hello.c", HELLO);
    let image = s.path("hello.pgrb");
    run(&args(&["compile", &c, "-o", &image])).unwrap();
    let small = s.path("small.pgrg");
    let large = s.path("large.pgrg");
    run(&args(&["train", &image, "-o", &small, "--cap", "16"])).unwrap();
    run(&args(&["train", &image, "-o", &large, "--cap", "256"])).unwrap();
    let small_len = std::fs::read(&small).unwrap().len();
    let large_len = std::fs::read(&large).unwrap().len();
    assert!(small_len <= large_len);
}

#[test]
fn cgen_emits_the_three_artifacts() {
    let s = Scratch::new("cgen");
    let c = s.write("hello.c", HELLO);
    let image = s.path("hello.pgrb");
    let grammar = s.path("hello.pgrg");
    run(&args(&["compile", &c, "-o", &image])).unwrap();
    run(&args(&["train", &image, "-o", &grammar])).unwrap();
    let outdir = s.path("gen");
    run(&args(&["cgen", "-g", &grammar, "-o", &outdir])).unwrap();
    for name in ["interp1.c", "tables.c", "interp_nt.c"] {
        let content = std::fs::read_to_string(std::path::Path::new(&outdir).join(name)).unwrap();
        assert!(!content.is_empty(), "{name}");
    }
}

#[test]
fn stats_and_disasm_work() {
    let s = Scratch::new("inspect");
    let c = s.write("hello.c", HELLO);
    let image = s.path("hello.pgrb");
    run(&args(&["compile", &c, "-o", &image])).unwrap();
    assert_eq!(run(&args(&["stats", &image])).unwrap(), 0);
    assert_eq!(run(&args(&["disasm", &image])).unwrap(), 0);
}

#[test]
fn errors_are_reported_not_panicked() {
    let s = Scratch::new("errors");
    // Unknown command.
    assert!(run(&args(&["frobnicate"])).is_err());
    // Missing file.
    assert!(run(&args(&["run", &s.path("absent.pgrb")])).is_err());
    // Bad C.
    let bad = s.write("bad.c", "int main( {");
    assert!(run(&args(&["compile", &bad, "-o", &s.path("x.pgrb")])).is_err());
    // Compressed image without a grammar.
    let c = s.write("hello.c", HELLO);
    let image = s.path("hello.pgrb");
    let grammar = s.path("g.pgrg");
    let packed = s.path("hello.pgrc");
    run(&args(&["compile", &c, "-o", &image])).unwrap();
    run(&args(&["train", &image, "-o", &grammar])).unwrap();
    run(&args(&["compress", &image, "-g", &grammar, "-o", &packed])).unwrap();
    assert!(run(&args(&["run", &packed])).is_err());
    // Disassembling a compressed image is refused.
    assert!(run(&args(&["disasm", &packed])).is_err());
    // Training on compressed images is refused.
    assert!(run(&args(&["train", &packed, "-o", &s.path("y.pgrg")])).is_err());
    // Garbage grammar file.
    let junk = s.write("junk.pgrg", "not a grammar");
    assert!(run(&args(&[
        "compress",
        &image,
        "-g",
        &junk,
        "-o",
        &s.path("z.pgrc")
    ]))
    .is_err());
}

#[test]
fn stdin_flag_feeds_getchar() {
    let s = Scratch::new("stdin");
    let c = s.write(
        "echo.c",
        "int main(void) { int c; int n = 0; \
         while ((c = getchar()) != -1) { putchar(c); n++; } return n; }",
    );
    let image = s.path("echo.pgrb");
    run(&args(&["compile", &c, "-o", &image])).unwrap();
    let code = run(&args(&["run", &image, "--stdin", "abc"])).unwrap();
    assert_eq!(code, 3);
}

#[test]
fn cgen_with_image_emits_packaging() {
    let s = Scratch::new("package");
    let c = s.write("hello.c", HELLO);
    let image = s.path("hello.pgrb");
    let grammar = s.path("hello.pgrg");
    run(&args(&["compile", &c, "-o", &image])).unwrap();
    run(&args(&["train", &image, "-o", &grammar])).unwrap();
    let outdir = s.path("gen");
    run(&args(&[
        "cgen", "-g", &grammar, "-p", &image, "-o", &outdir,
    ]))
    .unwrap();
    let pkg = std::fs::read_to_string(std::path::Path::new(&outdir).join("package.c")).unwrap();
    assert!(pkg.contains("proc _procs[]"));
    assert!(pkg.contains("void *_globals[]"));
    assert!(pkg.contains("int main(unsigned arg1)"));
}
