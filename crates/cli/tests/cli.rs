//! End-to-end CLI tests, driving the library entry point over real files
//! in a scratch directory.

use pgr_cli::run;
use std::path::PathBuf;

struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("pgr-cli-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch { dir }
    }

    fn path(&self, name: &str) -> String {
        self.dir.join(name).to_string_lossy().into_owned()
    }

    fn write(&self, name: &str, content: &str) -> String {
        let p = self.path(name);
        std::fs::write(&p, content).unwrap();
        p
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

const HELLO: &str = r#"
int main(void) {
    int i;
    for (i = 0; i < 3; i++) putchar('x');
    return 7;
}
"#;

#[test]
fn compile_run_roundtrip() {
    let s = Scratch::new("basic");
    let c = s.write("hello.c", HELLO);
    let image = s.path("hello.pgrb");
    assert_eq!(run(&args(&["compile", &c, "-o", &image])).unwrap(), 0);
    // `run` returns the program's return value as the exit code.
    assert_eq!(run(&args(&["run", &image])).unwrap(), 7);
}

#[test]
fn full_pipeline_through_files() {
    let s = Scratch::new("pipeline");
    let c = s.write("hello.c", HELLO);
    let image = s.path("hello.pgrb");
    let grammar = s.path("hello.pgrg");
    let packed = s.path("hello.pgrc");
    let unpacked = s.path("back.pgrb");

    run(&args(&["compile", &c, "-o", &image])).unwrap();
    run(&args(&["train", &image, "-o", &grammar])).unwrap();
    run(&args(&["compress", &image, "-g", &grammar, "-o", &packed])).unwrap();

    // The compressed image holds less code, and its header names the
    // grammar that decodes it (the content address of the .pgrg file).
    let plain = std::fs::read(&image).unwrap();
    let packed_bytes = std::fs::read(&packed).unwrap();
    let (plain_prog, _, plain_id) = pgr_bytecode::read_program_tagged(&plain).unwrap();
    let (packed_prog, _, packed_id) = pgr_bytecode::read_program_tagged(&packed_bytes).unwrap();
    assert!(packed_prog.code_size() < plain_prog.code_size());
    assert_eq!(plain_id, None);
    let grammar_bytes = std::fs::read(&grammar).unwrap();
    assert_eq!(
        packed_id,
        Some(*pgr::registry::GrammarId::of_bytes(&grammar_bytes).as_bytes())
    );

    // Direct execution of the compressed image matches.
    assert_eq!(run(&args(&["run", &packed, "-g", &grammar])).unwrap(), 7);

    // Decompression restores a runnable uncompressed image.
    run(&args(&[
        "decompress",
        &packed,
        "-g",
        &grammar,
        "-o",
        &unpacked,
    ]))
    .unwrap();
    assert_eq!(run(&args(&["run", &unpacked])).unwrap(), 7);
}

#[test]
fn train_cap_flag_is_honoured() {
    let s = Scratch::new("cap");
    let c = s.write("hello.c", HELLO);
    let image = s.path("hello.pgrb");
    run(&args(&["compile", &c, "-o", &image])).unwrap();
    let small = s.path("small.pgrg");
    let large = s.path("large.pgrg");
    run(&args(&["train", &image, "-o", &small, "--cap", "16"])).unwrap();
    run(&args(&["train", &image, "-o", &large, "--cap", "256"])).unwrap();
    let small_len = std::fs::read(&small).unwrap().len();
    let large_len = std::fs::read(&large).unwrap().len();
    assert!(small_len <= large_len);
}

#[test]
fn cgen_emits_the_three_artifacts() {
    let s = Scratch::new("cgen");
    let c = s.write("hello.c", HELLO);
    let image = s.path("hello.pgrb");
    let grammar = s.path("hello.pgrg");
    run(&args(&["compile", &c, "-o", &image])).unwrap();
    run(&args(&["train", &image, "-o", &grammar])).unwrap();
    let outdir = s.path("gen");
    run(&args(&["cgen", "-g", &grammar, "-o", &outdir])).unwrap();
    for name in ["interp1.c", "tables.c", "interp_nt.c"] {
        let content = std::fs::read_to_string(std::path::Path::new(&outdir).join(name)).unwrap();
        assert!(!content.is_empty(), "{name}");
    }
}

#[test]
fn stats_and_disasm_work() {
    let s = Scratch::new("inspect");
    let c = s.write("hello.c", HELLO);
    let image = s.path("hello.pgrb");
    run(&args(&["compile", &c, "-o", &image])).unwrap();
    assert_eq!(run(&args(&["stats", &image])).unwrap(), 0);
    assert_eq!(run(&args(&["disasm", &image])).unwrap(), 0);
}

#[test]
fn errors_are_reported_not_panicked() {
    let s = Scratch::new("errors");
    // Unknown command.
    assert!(run(&args(&["frobnicate"])).is_err());
    // Missing file.
    assert!(run(&args(&["run", &s.path("absent.pgrb")])).is_err());
    // Bad C.
    let bad = s.write("bad.c", "int main( {");
    assert!(run(&args(&["compile", &bad, "-o", &s.path("x.pgrb")])).is_err());
    // Compressed image without a grammar.
    let c = s.write("hello.c", HELLO);
    let image = s.path("hello.pgrb");
    let grammar = s.path("g.pgrg");
    let packed = s.path("hello.pgrc");
    run(&args(&["compile", &c, "-o", &image])).unwrap();
    run(&args(&["train", &image, "-o", &grammar])).unwrap();
    run(&args(&["compress", &image, "-g", &grammar, "-o", &packed])).unwrap();
    assert!(run(&args(&["run", &packed])).is_err());
    // Disassembling a compressed image is refused.
    assert!(run(&args(&["disasm", &packed])).is_err());
    // Training on compressed images is refused.
    assert!(run(&args(&["train", &packed, "-o", &s.path("y.pgrg")])).is_err());
    // Garbage grammar file.
    let junk = s.write("junk.pgrg", "not a grammar");
    assert!(run(&args(&[
        "compress",
        &image,
        "-g",
        &junk,
        "-o",
        &s.path("z.pgrc")
    ]))
    .is_err());
}

#[test]
fn stdin_flag_feeds_getchar() {
    let s = Scratch::new("stdin");
    let c = s.write(
        "echo.c",
        "int main(void) { int c; int n = 0; \
         while ((c = getchar()) != -1) { putchar(c); n++; } return n; }",
    );
    let image = s.path("echo.pgrb");
    run(&args(&["compile", &c, "-o", &image])).unwrap();
    let code = run(&args(&["run", &image, "--stdin", "abc"])).unwrap();
    assert_eq!(code, 3);
}

#[test]
fn cgen_with_image_emits_packaging() {
    let s = Scratch::new("package");
    let c = s.write("hello.c", HELLO);
    let image = s.path("hello.pgrb");
    let grammar = s.path("hello.pgrg");
    run(&args(&["compile", &c, "-o", &image])).unwrap();
    run(&args(&["train", &image, "-o", &grammar])).unwrap();
    let outdir = s.path("gen");
    run(&args(&[
        "cgen", "-g", &grammar, "-p", &image, "-o", &outdir,
    ]))
    .unwrap();
    let pkg = std::fs::read_to_string(std::path::Path::new(&outdir).join("package.c")).unwrap();
    assert!(pkg.contains("proc _procs[]"));
    assert!(pkg.contains("void *_globals[]"));
    assert!(pkg.contains("int main(unsigned arg1)"));
}

#[test]
fn metrics_json_emits_documented_keys() {
    use pgr_telemetry::{json, names};

    let s = Scratch::new("metrics");
    let c = s.write("hello.c", HELLO);
    let image = s.path("hello.pgrb");
    let grammar = s.path("hello.pgrg");
    let packed = s.path("hello.pgrc");
    let unpacked = s.path("back.pgrb");
    run(&args(&["compile", &c, "-o", &image])).unwrap();

    let counter = |doc: &json::Value, key: &str| {
        doc.as_obj()
            .and_then(|o| o.get("counters"))
            .and_then(json::Value::as_obj)
            .and_then(|o| o.get(key))
            .and_then(json::Value::as_u64)
    };
    let has_span = |doc: &json::Value, key: &str| {
        doc.as_obj()
            .and_then(|o| o.get("spans"))
            .and_then(json::Value::as_obj)
            .is_some_and(|o| o.contains_key(key))
    };
    let load = |path: &str| {
        let text = std::fs::read_to_string(path).unwrap();
        pgr_cli::check_metrics_json(&text).unwrap();
        json::parse(&text).unwrap()
    };

    // Train: trainer + validator counters, span tree under "train".
    let train_json = s.path("train.json");
    run(&args(&[
        "train",
        &image,
        "-o",
        &grammar,
        "--metrics",
        "json",
        "--metrics-out",
        &train_json,
    ]))
    .unwrap();
    let doc = load(&train_json);
    assert_eq!(counter(&doc, names::TRAIN_PROGRAMS), Some(1));
    assert!(counter(&doc, names::TRAIN_SEGMENTS).unwrap() > 0);
    assert!(counter(&doc, names::BYTECODE_VALIDATE_INSNS).unwrap() > 0);
    assert!(has_span(&doc, "train.expand"));

    // Compress: engine + Earley + cache counters and phase spans.
    let compress_json = s.path("compress.json");
    run(&args(&[
        "compress",
        &image,
        "-g",
        &grammar,
        "-o",
        &packed,
        "--metrics",
        "json",
        "--metrics-out",
        &compress_json,
    ]))
    .unwrap();
    let doc = load(&compress_json);
    assert_eq!(counter(&doc, names::COMPRESS_CALLS), Some(1));
    let segments = counter(&doc, names::COMPRESS_SEGMENTS).unwrap();
    assert!(segments > 0);
    let hits = counter(&doc, names::CACHE_HITS).unwrap();
    let misses = counter(&doc, names::CACHE_MISSES).unwrap();
    assert_eq!(hits + misses, segments);
    assert_eq!(counter(&doc, names::EARLEY_SEGMENTS_PARSED), Some(misses));
    assert!(counter(&doc, names::EARLEY_ITEMS_COMPLETED).unwrap() > 0);
    for span in [
        names::SPAN_COMPRESS_CANONICALIZE,
        names::SPAN_COMPRESS_TOKENIZE,
        names::SPAN_COMPRESS_PARSE,
        names::SPAN_COMPRESS_EMIT,
    ] {
        assert!(has_span(&doc, span), "missing span {span}");
    }

    // Decompress: round-trip counters.
    let decompress_json = s.path("decompress.json");
    run(&args(&[
        "decompress",
        &packed,
        "-g",
        &grammar,
        "-o",
        &unpacked,
        "--metrics",
        "json",
        "--metrics-out",
        &decompress_json,
    ]))
    .unwrap();
    let doc = load(&decompress_json);
    assert_eq!(counter(&doc, names::DECOMPRESS_CALLS), Some(1));
    assert!(counter(&doc, names::DECOMPRESS_BYTES).unwrap() > 0);
    assert!(has_span(&doc, names::SPAN_DECOMPRESS));

    // Run (compressed image): VM dispatch family and walk counters.
    let run_json = s.path("run.json");
    assert_eq!(
        run(&args(&[
            "run",
            &packed,
            "-g",
            &grammar,
            "--metrics",
            "json",
            "--metrics-out",
            &run_json,
        ]))
        .unwrap(),
        7
    );
    let doc = load(&run_json);
    assert!(counter(&doc, names::VM_STEPS).unwrap() > 0);
    assert!(counter(&doc, names::VM_RULES_WALKED).unwrap() > 0);
    assert!(
        counter(&doc, &names::vm_dispatch("RETI")).is_some()
            || counter(&doc, &names::vm_dispatch("RETU")).is_some()
    );

    // metrics-check accepts all four documents via the CLI too.
    for path in [&train_json, &compress_json, &decompress_json, &run_json] {
        assert_eq!(run(&args(&["metrics-check", path])).unwrap(), 0);
    }
    // ...and rejects garbage.
    let junk = s.write("junk.json", "{\"schema\": \"nope\"}");
    assert!(run(&args(&["metrics-check", &junk])).is_err());

    // --metrics human to stderr must not interfere with the exit code.
    assert_eq!(
        run(&args(&["run", &image, "--metrics", "human"])).unwrap(),
        7
    );

    // A bad mode is a usage error.
    assert!(run(&args(&["run", &image, "--metrics", "xml"])).is_err());
}

#[test]
fn registry_workflow_resolves_grammars_by_id() {
    let s = Scratch::new("registry");
    let c = s.write("hello.c", HELLO);
    let image = s.path("hello.pgrb");
    let grammar = s.path("hello.pgrg");
    let packed = s.path("hello.pgrc");
    let unpacked = s.path("back.pgrb");
    let reg = s.path("reg");

    run(&args(&["compile", &c, "-o", &image])).unwrap();
    run(&args(&["train", &image, "-o", &grammar])).unwrap();
    run(&args(&[
        "registry",
        "add",
        &grammar,
        "--registry",
        &reg,
        "--label",
        "cli test",
    ]))
    .unwrap();
    run(&args(&["registry", "list", "--registry", &reg])).unwrap();

    let grammar_bytes = std::fs::read(&grammar).unwrap();
    let id = pgr::registry::GrammarId::of_bytes(&grammar_bytes).to_hex();
    let id_spec = format!("id:{}", &id[..12]); // unique prefix resolution

    // compress with an id: spec instead of a path.
    run(&args(&[
        "compress",
        &image,
        "-g",
        &id_spec,
        "-o",
        &packed,
        "--registry",
        &reg,
    ]))
    .unwrap();

    // decompress / run / verify with NO -g at all: the image header
    // names the grammar, the registry supplies it.
    run(&args(&[
        "decompress",
        &packed,
        "-o",
        &unpacked,
        "--registry",
        &reg,
    ]))
    .unwrap();
    assert_eq!(run(&args(&["run", &unpacked])).unwrap(), 7);
    assert_eq!(
        run(&args(&["run", &packed, "--registry", &reg])).unwrap(),
        7
    );
    assert_eq!(
        run(&args(&["verify", &packed, "--registry", &reg])).unwrap(),
        0
    );

    // The registry-resolved decompression matches the path-based one.
    let via_path = s.path("back2.pgrb");
    run(&args(&[
        "decompress",
        &packed,
        "-g",
        &grammar,
        "-o",
        &via_path,
    ]))
    .unwrap();
    assert_eq!(
        std::fs::read(&unpacked).unwrap(),
        std::fs::read(&via_path).unwrap(),
        "registry-resolved and path-based flows must agree byte for byte"
    );

    // Without a registry, the header id alone is a clear error.
    let err = run(&args(&["decompress", &packed, "-o", &s.path("x.pgrb")])).unwrap_err();
    assert!(err.contains("registry"), "unhelpful error: {err}");

    // rm + gc.
    run(&args(&[
        "registry",
        "rm",
        &id_spec["id:".len()..],
        "--registry",
        &reg,
    ]))
    .unwrap();
    let err = run(&args(&[
        "compress",
        &image,
        "-g",
        &id_spec,
        "-o",
        &packed,
        "--registry",
        &reg,
    ]))
    .unwrap_err();
    assert!(err.contains("no grammar"), "unhelpful error: {err}");
    run(&args(&["registry", "gc", "--registry", &reg])).unwrap();
}

#[test]
fn trace_out_writes_perfetto_loadable_span_trees() {
    use pgr_telemetry::{json, trace};

    let s = Scratch::new("trace");
    let src = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../corpus/src/programs/eightq.c"
    );
    let image = s.path("8q.pgrb");
    let grammar = s.path("8q.pgrg");
    let packed = s.path("8q.pgrc");
    run(&args(&["compile", src, "-o", &image])).unwrap();
    run(&args(&["train", &image, "-o", &grammar])).unwrap();

    // Compress with two workers: a root span on the main lane plus a
    // lane per worker, all properly nested and all carrying one trace
    // id.
    let ctrace = s.path("compress-trace.json");
    run(&args(&[
        "compress",
        &image,
        "-g",
        &grammar,
        "-o",
        &packed,
        "--threads",
        "2",
        // Small batches so both workers demonstrably get work (and
        // lanes) even on the tiny 8q image.
        "--batch-bytes",
        "64",
        "--trace-out",
        &ctrace,
    ]))
    .unwrap();
    let text = std::fs::read_to_string(&ctrace).unwrap();
    let summary = trace::validate_chrome_trace(&text).expect("compress trace is well formed");
    assert!(summary.events > 0, "empty compress trace");
    assert!(
        summary.lanes >= 3,
        "main lane + 2 worker lanes expected: {summary:?}"
    );
    assert!(summary.max_depth >= 2, "flat compress trace: {summary:?}");

    // Every event carries the same nonzero trace id.
    let doc = json::parse(&text).unwrap();
    let events = doc.get("traceEvents").unwrap();
    let ids: std::collections::BTreeSet<String> = events
        .as_arr()
        .unwrap()
        .iter()
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("trace"))
                .and_then(json::Value::as_str)
                .expect("event lacks args.trace")
                .to_string()
        })
        .collect();
    assert_eq!(ids.len(), 1, "more than one trace id in one command");
    assert_ne!(ids.iter().next().unwrap(), "0000000000000000");

    // Run the compressed 8-queens image: the VM's interpreter thread is
    // its own lane, and recursive vm.call spans nest at least three
    // deep (vm.run -> vm.call main -> vm.call <helper>).
    let rtrace = s.path("run-trace.json");
    let code = run(&args(&[
        "run",
        &packed,
        "-g",
        &grammar,
        "--trace-out",
        &rtrace,
    ]))
    .unwrap();
    assert_eq!(code, 92, "8q must still solve 92 boards");
    let text = std::fs::read_to_string(&rtrace).unwrap();
    let summary = trace::validate_chrome_trace(&text).expect("run trace is well formed");
    assert!(
        summary.lanes >= 2,
        "main + VM interpreter lanes expected: {summary:?}"
    );
    assert!(
        summary.max_depth >= 3,
        "recursive vm.call spans should nest >= 3 deep: {summary:?}"
    );
    let names: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"name\""))
        .flat_map(|l| {
            l.split("\"name\":\"")
                .skip(1)
                .map(|s| s.split('"').next().unwrap())
        })
        .collect();
    assert!(names.contains(&"pgr.run"));
    assert!(names.contains(&"vm.run"));
    assert!(names.iter().any(|n| n.starts_with("vm.call ")));
}

#[test]
fn render_top_formats_a_stats_response() {
    let response = concat!(
        "{\"ok\":true,\"metrics\":{\"schema\":\"pgr-metrics/2\",\"counters\":{},",
        "\"gauges\":{},\"histograms\":{\"serve.request.compress.micros\":",
        "{\"count\":4,\"sum\":100,\"min\":10,\"max\":40,\"p50\":20,\"p90\":38,",
        "\"p95\":39,\"p99\":40}},\"spans\":{}},",
        "\"window\":{\"window_secs\":60,\"requests\":4,\"errors\":1,\"rps\":0.067,",
        "\"error_rate\":0.25,\"ops\":{\"compress\":{\"count\":4,\"p50\":20,",
        "\"p90\":38,\"p95\":39,\"p99\":40,\"max\":40}},\"grammars\":{},",
        "\"tier2_compiled\":3,\"tier2_deopts\":2},",
        "\"uptime_secs\":42,\"trace\":\"00000000000000aa\"}",
    );
    let screen = pgr_cli::render_top(response).expect("stats response renders");
    assert!(screen.contains("uptime 42s"), "{screen}");
    assert!(screen.contains("compress"), "{screen}");
    assert!(screen.contains("rps 0.067"), "{screen}");
    assert!(screen.contains("tier2 compiled 3 deopts 2"), "{screen}");
    // Windowed and lifetime p50 both present on the compress row.
    let row = screen
        .lines()
        .find(|l| l.starts_with("compress"))
        .expect("compress row");
    assert!(row.matches("20").count() >= 2, "{row}");

    // Error responses surface as errors, not empty screens.
    let err = pgr_cli::render_top("{\"ok\":false,\"error\":\"nope\"}").unwrap_err();
    assert!(err.contains("nope"), "{err}");
    assert!(pgr_cli::render_top("not json").is_err());
}
