fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pgr_cli::run(&args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("pgr: {e}");
            std::process::exit(2);
        }
    }
}
