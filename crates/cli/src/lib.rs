//! # pgr-cli
//!
//! The `pgr` command-line tool: drive the whole pipeline from a shell.
//!
//! ```text
//! pgr compile hello.c -o hello.pgrb [-O]      # C -> bytecode image
//! pgr disasm hello.pgrb                       # textual assembly
//! pgr train a.pgrb b.pgrb -o corp.pgrg        # expanded grammar
//! pgr compress hello.pgrb -g corp.pgrg -o hello.pgrc
//! pgr decompress hello.pgrc -o back.pgrb      # grammar via registry + image header
//! pgr run hello.pgrb                          # interp1
//! pgr run hello.pgrc -g corp.pgrg             # interp_nt, direct
//! pgr stats hello.pgrb                        # image + native sizes
//! pgr cgen -g corp.pgrg -o outdir             # generated C artifacts
//! pgr registry add corp.pgrg                  # content-addressed grammar store
//! pgr serve --socket pgr.sock                 # NDJSON request server
//! ```
//!
//! Grammars come from two places, uniformly: `-g` takes either a
//! `.pgrg` path or `id:HEX` (a full or prefix [`GrammarId`] resolved in
//! the registry named by `--registry`/`$PGR_REGISTRY`). Compressed
//! images carry their grammar's id in the image header, so `decompress`
//! / `run` / `verify` can omit `-g` entirely when a registry is
//! configured.
//!
//! The library entry point [`run`] is what the binary calls and what the
//! integration tests drive directly.

#![warn(missing_docs)]

use pgr::PgrError;
use pgr_bytecode::{
    read_program_tagged, validate_program, write_program, write_program_tagged, ImageKind, Program,
};
use pgr_core::{train, ExpanderConfig, TrainConfig};
use pgr_grammar::GrammarFile;
use pgr_registry::{op_of_hist_name, GrammarId, Registry, ServeConfig, Server};
use pgr_telemetry::{
    names, trace, JsonSink, Metrics, Recorder, Sink, Stopwatch, TableSink, TraceId,
    DEFAULT_TRACE_CAPACITY,
};
use pgr_vm::{Vm, VmConfig};
use std::path::Path;

/// Run the CLI with the given arguments (excluding the program name);
/// returns the process exit code.
///
/// # Errors
///
/// Returns a human-readable message for usage errors, I/O failures, and
/// pipeline failures.
pub fn run(args: &[String]) -> Result<i32, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "compile" => compile(rest),
        "disasm" => disasm(rest),
        "train" => cmd_train(rest),
        "compress" => compress(rest),
        "decompress" => decompress(rest),
        "run" => cmd_run(rest),
        "verify" => verify(rest),
        "stats" => stats(rest),
        "cgen" => cgen(rest),
        "metrics-check" => metrics_check(rest),
        "registry" => cmd_registry(rest),
        "serve" => cmd_serve(rest),
        "call" => cmd_call(rest),
        "chaos-proxy" => cmd_chaos_proxy(rest),
        "top" => cmd_top(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(0)
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: pgr <compile|disasm|train|compress|decompress|run|verify|stats|cgen|registry|serve|call|chaos-proxy|top|metrics-check|help> ...\n\
     \x20 compile <in.c> -o <out.pgrb> [-O]\n\
     \x20 disasm <in.pgrb>\n\
     \x20 train <in.pgrb>... -o <out.pgrg> [--cap N]\n\
     \x20 compress <in.pgrb> -g <grammar> -o <out.pgrc> [--threads N] [--batch-bytes N] [--timings]\n\
     \x20     [--earley-budget ITEMS[,COLUMNS]] [--no-fallback] [--trace-out <t.json>]\n\
     \x20 decompress <in.pgrc> [-g <grammar>] -o <out.pgrb>\n\
     \x20 run <in.pgrb|in.pgrc> [-g <grammar>] [--stdin TEXT] [--trace N]\n\
     \x20     [--segment-cache N] [--tier {0|1|2}] [--tier-up N]\n\
     \x20     [--reference-walker] [--trace-out <t.json>]\n\
     \x20 verify <in.pgrb|in.pgrc> [-g <grammar>]\n\
     \x20 stats <in.pgrb>\n\
     \x20 cgen -g <grammar> [-p <image>] -o <dir>\n\
     \x20 registry <add <g.pgrg> [--label TEXT] | list | rm <id> | gc [<keep-id>...]>\n\
     \x20 serve --socket <path> [--max-budget ITEMS[,COLUMNS]] [--threads N]\n\
     \x20     [--workers N] [--batch-window-us N] [--max-connections N]\n\
     \x20     [--max-queue N] [--max-engines N] [--thread-per-conn]\n\
     \x20     [--request-timeout-ms N] [--idle-timeout-ms N] [--max-line-bytes N]\n\
     \x20     [--slow-ms N [--slow-trace <out.ndjson>] [--slow-trace-max-bytes N]]\n\
     \x20 call --socket <path> [<request-json>] [--timeout-ms N] [--retries N]\n\
     \x20     [--backoff-ms N] [--seed N] [--breaker-threshold N] [--verbose]\n\
     \x20 chaos-proxy --listen <sock> --upstream <sock> [--seed N] [--duration-ms N]\n\
     \x20     [--partial-per-1024 N] [--reset-per-1024 N] [--stall-per-1024 N]\n\
     \x20     [--stall-ms N] [--garbage-per-1024 N]\n\
     \x20 top --socket <path> [--interval-ms N] [--iterations N]\n\
     \x20 metrics-check <metrics.json>\n\
     a <grammar> is a .pgrg path or id:HEX (full id or unique prefix) looked up in\n\
     the registry; compressed images name their grammar in the header, so commands\n\
     reading them can omit -g when a registry is configured.\n\
     registry/serve take --registry <dir> (default: $PGR_REGISTRY)\n\
     train/compress/decompress/run also take:\n\
     \x20 --metrics <human|json>   emit pipeline telemetry (stderr by default)\n\
     \x20 --metrics-out <path>     write telemetry to a file (implies json)\n\
     compress/run also take:\n\
     \x20 --trace-out <path>       write a Chrome trace-event JSON span tree"
        .to_string()
}

// ---- small argument helpers -------------------------------------------

fn opt_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn required<'a>(args: &'a [String], flag: &str) -> Result<&'a str, String> {
    opt_value(args, flag).ok_or_else(|| format!("missing {flag} <value>"))
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn positionals(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a == "-o"
            || a == "-g"
            || a == "--cap"
            || a == "--stdin"
            || a == "--trace"
            || a == "--threads"
            || a == "--batch-bytes"
            || a == "--earley-budget"
            || a == "--segment-cache"
            || a == "--tier"
            || a == "--tier-up"
            || a == "--metrics"
            || a == "--metrics-out"
            || a == "-p"
            || a == "--label"
            || a == "--registry"
            || a == "--socket"
            || a == "--max-budget"
            || a == "--trace-out"
            || a == "--slow-ms"
            || a == "--slow-trace"
            || a == "--interval-ms"
            || a == "--iterations"
            || a == "--workers"
            || a == "--batch-window-us"
            || a == "--max-connections"
            || a == "--max-queue"
            || a == "--max-engines"
            || a == "--request-timeout-ms"
            || a == "--idle-timeout-ms"
            || a == "--max-line-bytes"
            || a == "--slow-trace-max-bytes"
            || a == "--timeout-ms"
            || a == "--retries"
            || a == "--backoff-ms"
            || a == "--seed"
            || a == "--breaker-threshold"
            || a == "--listen"
            || a == "--upstream"
            || a == "--duration-ms"
            || a == "--partial-per-1024"
            || a == "--reset-per-1024"
            || a == "--stall-per-1024"
            || a == "--stall-ms"
            || a == "--garbage-per-1024"
        {
            skip = true;
            continue;
        }
        if a.starts_with('-') {
            continue;
        }
        let _ = i;
        out.push(a.as_str());
    }
    out
}

/// Parse `--earley-budget ITEMS[,COLUMNS]` into an [`EarleyBudget`]:
/// a cap on chart items, optionally followed by a cap on chart columns
/// (token count + 1).
fn parse_budget(v: &str) -> Result<pgr_core::EarleyBudget, String> {
    let bad = || format!("bad --earley-budget {v:?} (expected ITEMS[,COLUMNS])");
    let mut parts = v.splitn(2, ',');
    let items = parts
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(bad)?;
    let mut budget = pgr_core::EarleyBudget::UNLIMITED.max_items(items);
    if let Some(cols) = parts.next() {
        budget = budget.max_columns(cols.parse::<usize>().map_err(|_| bad())?);
    }
    Ok(budget)
}

// ---- telemetry plumbing -----------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum MetricsMode {
    Human,
    Json,
}

/// Telemetry options shared by train/compress/decompress/run: an enabled
/// recorder plus where and how to render it when the command finishes.
struct MetricsOpts {
    mode: MetricsMode,
    out: Option<String>,
    recorder: Recorder,
}

/// Parse `--metrics <human|json>` / `--metrics-out <path>`. Returns
/// `None` (and a shared disabled recorder downstream) when neither flag
/// is present; `--metrics-out` alone implies JSON.
fn metrics_opts(args: &[String]) -> Result<Option<MetricsOpts>, String> {
    let mode = opt_value(args, "--metrics");
    let out = opt_value(args, "--metrics-out").map(str::to_owned);
    if mode.is_none() && out.is_none() {
        return Ok(None);
    }
    let mode = match mode {
        None | Some("json") => MetricsMode::Json,
        Some("human") => MetricsMode::Human,
        Some(other) => return Err(format!("bad --metrics {other:?} (expected human or json)")),
    };
    Ok(Some(MetricsOpts {
        mode,
        out,
        recorder: Recorder::new(),
    }))
}

/// The recorder commands thread through the pipeline: enabled when the
/// user asked for metrics, the shared disabled instance otherwise.
fn recorder_of(opts: &Option<MetricsOpts>) -> Recorder {
    opts.as_ref()
        .map_or_else(Recorder::disabled, |o| o.recorder.clone())
}

/// Render the accumulated metrics to the requested sink. A no-op when
/// metrics were not requested.
fn emit_metrics(opts: &Option<MetricsOpts>) -> Result<(), String> {
    let Some(opts) = opts else { return Ok(()) };
    let metrics = opts.recorder.snapshot();
    fn sink_to<W: std::io::Write>(mode: MetricsMode, w: W, m: &Metrics) -> std::io::Result<()> {
        match mode {
            MetricsMode::Human => TableSink(w).emit(m),
            MetricsMode::Json => JsonSink(w).emit(m),
        }
    }
    match &opts.out {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            sink_to(opts.mode, std::io::BufWriter::new(file), &metrics)
                .map_err(|e| format!("{path}: {e}"))
        }
        None => sink_to(opts.mode, std::io::stderr().lock(), &metrics).map_err(|e| e.to_string()),
    }
}

// ---- request tracing ----------------------------------------------------

/// Resolve a command's recorder together with `--trace-out`: tracing
/// rides on the metrics recorder when `--metrics` was also given, and on
/// a private enabled recorder (whose metrics are never emitted)
/// otherwise. Returns the recorder to thread through the pipeline and
/// the trace output path, if any.
fn recorder_and_trace(
    args: &[String],
    metrics: &Option<MetricsOpts>,
) -> (Recorder, Option<String>) {
    let out = opt_value(args, "--trace-out").map(str::to_owned);
    let recorder = match (metrics, &out) {
        (Some(o), _) => o.recorder.clone(),
        (None, Some(_)) => Recorder::new(),
        (None, None) => Recorder::disabled(),
    };
    if out.is_some() {
        recorder.enable_tracing(DEFAULT_TRACE_CAPACITY);
    }
    (recorder, out)
}

/// Drain the recorder's trace buffer and write it as Chrome trace-event
/// JSON (loadable in `chrome://tracing` / Perfetto). A no-op without
/// `--trace-out`.
fn write_trace(recorder: &Recorder, out: Option<&str>) -> Result<(), String> {
    let Some(path) = out else { return Ok(()) };
    let trace = recorder.take_trace();
    if trace.dropped > 0 {
        eprintln!(
            "warning: trace buffer overflowed; {} event(s) dropped",
            trace.dropped
        );
    }
    write_file(path, trace.to_chrome_json().as_bytes())?;
    eprintln!("trace: {} event(s) -> {path}", trace.events.len());
    Ok(())
}

fn read_file(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("{path}: {e}"))
}

fn write_file(path: &str, bytes: &[u8]) -> Result<(), String> {
    std::fs::write(path, bytes).map_err(|e| format!("{path}: {e}"))
}

/// Read an image, returning the embedded grammar id (if any) along with
/// the program: commands reading compressed images use the id to find
/// the right grammar without a `-g` flag.
fn load_program(path: &str) -> Result<(Program, ImageKind, Option<GrammarId>), String> {
    let bytes = read_file(path)?;
    let (program, kind, raw_id) =
        read_program_tagged(&bytes).map_err(|e| format!("{path}: {e}"))?;
    Ok((program, kind, raw_id.map(GrammarId::from_raw)))
}

/// Render a pipeline failure with its full cause chain. All train /
/// compress / decompress / validate failures funnel through [`PgrError`]
/// so the CLI reports every layer of context, not just the top line.
fn pipeline_err(e: impl Into<PgrError>) -> String {
    e.into().report()
}

// ---- grammar files and the registry ------------------------------------

/// A grammar the CLI resolved, with its content address — the id is
/// what `compress` stamps into the output image header.
struct LoadedGrammar {
    file: GrammarFile,
    id: GrammarId,
}

/// The registry root: `--registry <dir>` wins, else `$PGR_REGISTRY`.
fn registry_root(args: &[String]) -> Option<String> {
    opt_value(args, "--registry")
        .map(str::to_owned)
        .or_else(|| std::env::var("PGR_REGISTRY").ok())
}

fn open_registry(args: &[String]) -> Result<Registry, String> {
    let root = registry_root(args)
        .ok_or("no registry configured (pass --registry <dir> or set $PGR_REGISTRY)")?;
    Registry::open(&root).map_err(pipeline_err)
}

fn grammar_of_bytes(origin: &str, bytes: &[u8]) -> Result<LoadedGrammar, String> {
    let file =
        GrammarFile::from_bytes(bytes).map_err(|e| format!("{origin}: {}", pipeline_err(e)))?;
    Ok(LoadedGrammar {
        id: GrammarId::of_bytes(bytes),
        file,
    })
}

/// Resolve a `-g` value: a `.pgrg` path, or `id:HEX` (full id or unique
/// prefix) looked up in the registry.
fn load_grammar_spec(args: &[String], spec: &str) -> Result<LoadedGrammar, String> {
    if let Some(hex) = spec.strip_prefix("id:") {
        let registry = open_registry(args)?;
        let id = registry.resolve(hex).map_err(pipeline_err)?;
        let bytes = registry.load_bytes(&id).map_err(pipeline_err)?;
        grammar_of_bytes(spec, &bytes)
    } else {
        grammar_of_bytes(spec, &read_file(spec)?)
    }
}

/// Find the grammar for a compressed image: an explicit `-g` wins;
/// otherwise the image header's grammar id is resolved in the registry.
fn grammar_for_image(
    args: &[String],
    input: &str,
    header_id: Option<GrammarId>,
) -> Result<LoadedGrammar, String> {
    if let Some(spec) = opt_value(args, "-g") {
        return load_grammar_spec(args, spec);
    }
    let id =
        header_id.ok_or_else(|| format!("{input}: image names no grammar; pass -g <grammar>"))?;
    let registry =
        open_registry(args).map_err(|e| format!("{input}: image names grammar {id}, but {e}"))?;
    let bytes = registry.load_bytes(&id).map_err(pipeline_err)?;
    grammar_of_bytes(&format!("registry grammar {id}"), &bytes)
}

/// Build the compressor configuration from the shared CLI flags
/// (`--threads`, `--batch-bytes`, `--earley-budget`, `--no-fallback`,
/// `--timings`) — the one place flag parsing produces a
/// [`pgr_core::CompressorConfig`].
fn compressor_config(args: &[String]) -> Result<pgr_core::CompressorConfig, String> {
    let mut builder = pgr_core::CompressorConfig::builder()
        .collect_timings(flag(args, "--timings"))
        .fallback(!flag(args, "--no-fallback"));
    if let Some(v) = opt_value(args, "--threads") {
        builder = builder.threads(
            v.parse::<usize>()
                .map_err(|_| format!("bad --threads {v:?}"))?,
        );
    }
    if let Some(v) = opt_value(args, "--batch-bytes") {
        builder = builder.batch_bytes(
            v.parse::<usize>()
                .map_err(|_| format!("bad --batch-bytes {v:?}"))?,
        );
    }
    if let Some(v) = opt_value(args, "--earley-budget") {
        builder = builder.earley_budget(parse_budget(v)?);
    }
    Ok(builder.build())
}

// ---- commands -----------------------------------------------------------

fn compile(args: &[String]) -> Result<i32, String> {
    let inputs = positionals(args);
    let [input] = inputs.as_slice() else {
        return Err("compile takes exactly one .c file".into());
    };
    let out = required(args, "-o")?;
    let optimize = args.iter().any(|a| a == "-O");
    let source = String::from_utf8(read_file(input)?).map_err(|_| format!("{input}: not UTF-8"))?;
    let program = pgr_minic::compile_with(&source, &pgr_minic::Options { optimize })
        .map_err(|e| format!("{input}:{e}"))?;
    validate_program(&program)
        .map_err(|e| format!("{input}: generated invalid code: {}", pipeline_err(e)))?;
    write_file(out, &write_program(&program, ImageKind::Uncompressed))?;
    eprintln!(
        "{input}: {} procedures, {} bytecode bytes -> {out}",
        program.procs.len(),
        program.code_size()
    );
    Ok(0)
}

fn disasm(args: &[String]) -> Result<i32, String> {
    let pos = positionals(args);
    let [input] = pos.as_slice() else {
        return Err("disasm takes exactly one image".into());
    };
    let (program, kind, _) = load_program(input)?;
    if kind == ImageKind::Compressed {
        return Err(format!(
            "{input} holds compressed derivations; decompress it first"
        ));
    }
    print!("{}", pgr_bytecode::asm::disassemble(&program));
    Ok(0)
}

fn cmd_train(args: &[String]) -> Result<i32, String> {
    let inputs = positionals(args);
    if inputs.is_empty() {
        return Err("train needs at least one training image".into());
    }
    let out = required(args, "-o")?;
    let cap = match opt_value(args, "--cap") {
        Some(v) => v.parse::<usize>().map_err(|_| format!("bad --cap {v:?}"))?,
        None => 256,
    };
    let mut programs = Vec::new();
    for path in &inputs {
        let (program, kind, _) = load_program(path)?;
        if kind == ImageKind::Compressed {
            return Err(format!("{path}: cannot train on compressed images"));
        }
        programs.push(program);
    }
    let refs: Vec<&Program> = programs.iter().collect();
    let metrics = metrics_opts(args)?;
    let config = TrainConfig {
        expander: ExpanderConfig {
            max_rules_per_nt: cap,
            ..ExpanderConfig::default()
        },
        recorder: recorder_of(&metrics),
    };
    let trained = train(&refs, &config).map_err(pipeline_err)?;
    let ig = trained.initial();
    let file = GrammarFile::new(trained.expanded().clone(), ig.nt_start, ig.nt_byte);
    write_file(out, &file.to_bytes())?;
    eprintln!(
        "trained on {} image(s): +{} rules, grammar {} bytes -> {out}",
        inputs.len(),
        trained.stats.rules_added,
        trained.grammar_size()
    );
    emit_metrics(&metrics)?;
    Ok(0)
}

fn compress(args: &[String]) -> Result<i32, String> {
    let pos = positionals(args);
    let [input] = pos.as_slice() else {
        return Err("compress takes exactly one image".into());
    };
    let out = required(args, "-o")?;
    let loaded = load_grammar_spec(args, required(args, "-g")?)?;
    let (program, kind, _) = load_program(input)?;
    if kind == ImageKind::Compressed {
        return Err(format!("{input} is already compressed"));
    }
    let timings = flag(args, "--timings");
    let metrics = metrics_opts(args)?;
    let (recorder, trace_out) = recorder_and_trace(args, &metrics);
    let config = compressor_config(args)?;
    let engine = pgr_core::Compressor::with_recorder(
        &loaded.file.grammar,
        loaded.file.start,
        config,
        recorder.clone(),
    );
    // One root trace id for the whole command; engine workers inherit it
    // and show up as their own lanes under this root span.
    let _trace_id = trace_out.as_ref().map(|_| trace::scope(TraceId::mint()));
    let root_span = recorder.trace_span("pgr.compress");
    let (cp, stats) = engine.compress(&program).map_err(pipeline_err)?;
    drop(root_span);
    // Stamp the grammar's content address into the image header, so
    // downstream commands (and the serve front end) can find the one
    // grammar that decodes this image without being told.
    write_file(
        out,
        &write_program_tagged(
            &cp.program,
            ImageKind::Compressed,
            Some(loaded.id.as_bytes()),
        ),
    )?;
    eprintln!(
        "{input}: {} -> {} code bytes ({:.0}%) -> {out}",
        stats.original_code,
        stats.compressed_code,
        100.0 * stats.ratio()
    );
    if stats.fallback_segments > 0 {
        eprintln!(
            "note: {} segment(s) stored verbatim (parse failed or budget hit)",
            stats.fallback_segments
        );
    }
    if timings {
        let t = stats.timings;
        eprintln!(
            "phases: canonicalize {:?}, tokenize {:?}, parse {:?}, emit {:?} ({} thread(s))",
            t.canonicalize,
            t.tokenize,
            t.parse,
            t.emit,
            engine.threads()
        );
    }
    write_trace(&recorder, trace_out.as_deref())?;
    emit_metrics(&metrics)?;
    Ok(0)
}

fn decompress(args: &[String]) -> Result<i32, String> {
    let pos = positionals(args);
    let [input] = pos.as_slice() else {
        return Err("decompress takes exactly one image".into());
    };
    let out = required(args, "-o")?;
    let (program, kind, header_id) = load_program(input)?;
    if kind == ImageKind::Uncompressed {
        return Err(format!("{input} is not compressed"));
    }
    let loaded = grammar_for_image(args, input, header_id)?;
    let cp = pgr_core::CompressedProgram { program };
    let metrics = metrics_opts(args)?;
    let recorder = recorder_of(&metrics);
    let sw = Stopwatch::start_if(recorder.is_enabled());
    let back = pgr_core::compress::decompress_program(&loaded.file.grammar, loaded.file.start, &cp)
        .map_err(pipeline_err)?;
    if recorder.is_enabled() {
        recorder.record_span(names::SPAN_DECOMPRESS, sw.elapsed());
        recorder.add(names::DECOMPRESS_CALLS, 1);
        recorder.add(names::DECOMPRESS_BYTES, back.code_size() as u64);
    }
    write_file(out, &write_program(&back, ImageKind::Uncompressed))?;
    eprintln!(
        "{input}: decompressed to {} code bytes -> {out}",
        back.code_size()
    );
    emit_metrics(&metrics)?;
    Ok(0)
}

fn cmd_run(args: &[String]) -> Result<i32, String> {
    let pos = positionals(args);
    let [input] = pos.as_slice() else {
        return Err("run takes exactly one image".into());
    };
    let (program, kind, header_id) = load_program(input)?;
    let trace_limit = match opt_value(args, "--trace") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("bad --trace {v:?}"))?,
        None => 0,
    };
    let metrics = metrics_opts(args)?;
    let (recorder, trace_out) = recorder_and_trace(args, &metrics);
    let segment_cache_entries = match opt_value(args, "--segment-cache") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("bad --segment-cache {v:?}"))?,
        None => VmConfig::default().segment_cache_entries,
    };
    let tier = match opt_value(args, "--tier") {
        Some(v) => match v.parse::<u8>() {
            Ok(t @ 0..=2) => t,
            _ => return Err(format!("bad --tier {v:?} (expected 0, 1, or 2)")),
        },
        None => VmConfig::default().tier,
    };
    let tier_up = match opt_value(args, "--tier-up") {
        Some(v) => v
            .parse::<u32>()
            .map_err(|_| format!("bad --tier-up {v:?}"))?,
        None => VmConfig::default().tier_up,
    };
    let config = VmConfig {
        input: opt_value(args, "--stdin").unwrap_or("").as_bytes().to_vec(),
        trace_limit,
        recorder: recorder.clone(),
        reference_walker: flag(args, "--reference-walker"),
        segment_cache_entries,
        tier,
        tier_up,
        ..VmConfig::default()
    };
    // Root trace id for the command; the VM's interpreter thread
    // inherits it and traces `vm.run` / per-procedure `vm.call` spans on
    // its own lane.
    let _trace_id = trace_out.as_ref().map(|_| trace::scope(TraceId::mint()));
    let root_span = recorder.trace_span("pgr.run");
    let result = match kind {
        ImageKind::Uncompressed => {
            let mut vm = Vm::new(&program, config).map_err(|e| e.to_string())?;
            vm.run().map_err(|e| e.to_string())?
        }
        ImageKind::Compressed => {
            let loaded = grammar_for_image(args, input, header_id)?;
            let mut vm = Vm::new_compressed(
                &program,
                &loaded.file.grammar,
                loaded.file.start,
                loaded.file.byte_nt,
                config,
            )
            .map_err(|e| e.to_string())?;
            vm.run().map_err(|e| e.to_string())?
        }
    };
    drop(root_span);
    write_trace(&recorder, trace_out.as_deref())?;
    for ev in &result.trace {
        eprintln!(
            "trace: #{:<3} depth {:<2} {} {}",
            ev.proc,
            ev.depth,
            ev.op,
            if ev.op.operand_bytes() > 0 {
                ev.operand.to_string()
            } else {
                String::new()
            }
        );
    }
    use std::io::Write as _;
    std::io::stdout()
        .write_all(&result.output)
        .map_err(|e| e.to_string())?;
    emit_metrics(&metrics)?;
    Ok(result.exit_code.unwrap_or_else(|| result.ret.i()))
}

/// `pgr verify <image>`: check an image end-to-end without executing
/// it — magic, version, section framing, and payload checksum (all
/// enforced by `read_program`), a byte-exact re-serialization, static
/// validation for uncompressed images, and (with `-g`) a decompression
/// round-trip for compressed ones. Exit 0 means the image is intact.
fn verify(args: &[String]) -> Result<i32, String> {
    let pos = positionals(args);
    let [input] = pos.as_slice() else {
        return Err("verify takes exactly one image".into());
    };
    let bytes = read_file(input)?;
    // Magic, version, lengths, and CRC32 are all checked here; any
    // mutation of the checksummed payload surfaces as an error.
    let (program, kind, raw_id) =
        read_program_tagged(&bytes).map_err(|e| format!("{input}: {e}"))?;
    // The format is canonical: re-encoding the parsed contents (with the
    // same grammar-id tag) must reproduce the file byte for byte, or
    // something survived parsing that the writer would never emit.
    if write_program_tagged(&program, kind, raw_id.as_ref()) != bytes {
        return Err(format!(
            "{input}: image is not the canonical serialization of its contents"
        ));
    }
    let header_id = raw_id.map(GrammarId::from_raw);
    match kind {
        ImageKind::Uncompressed => {
            validate_program(&program).map_err(|e| format!("{input}: {}", pipeline_err(e)))?;
            eprintln!(
                "{input}: OK — uncompressed, {} procedure(s), {} code bytes, checksum and validator pass",
                program.procs.len(),
                program.code_size()
            );
        }
        ImageKind::Compressed => {
            // `-g` wins; without it, an embedded grammar id plus a
            // configured registry is enough. Neither is an error —
            // framing and checksum checks already passed.
            let loaded = if opt_value(args, "-g").is_some()
                || (header_id.is_some() && registry_root(args).is_some())
            {
                Some(grammar_for_image(args, input, header_id)?)
            } else {
                None
            };
            match loaded {
                Some(loaded) => {
                    if let Some(id) = header_id {
                        if id != loaded.id {
                            return Err(format!(
                                "{input}: image was compressed with grammar {id}, \
                                 but the supplied grammar is {}",
                                loaded.id
                            ));
                        }
                    }
                    let cp = pgr_core::CompressedProgram { program };
                    let back = pgr_core::compress::decompress_program(
                        &loaded.file.grammar,
                        loaded.file.start,
                        &cp,
                    )
                    .map_err(|e| format!("{input}: {}", pipeline_err(e)))?;
                    validate_program(&back).map_err(|e| format!("{input}: {}", pipeline_err(e)))?;
                    eprintln!(
                        "{input}: OK — compressed, {} procedure(s), decompresses to {} valid code bytes",
                        cp.program.procs.len(),
                        back.code_size()
                    );
                }
                None => eprintln!(
                    "{input}: OK — compressed, {} procedure(s), checksum and framing pass \
                     (pass -g <grammar> or configure a registry to also check decompression)",
                    program.procs.len()
                ),
            }
        }
    }
    Ok(0)
}

fn stats(args: &[String]) -> Result<i32, String> {
    let pos = positionals(args);
    let [input] = pos.as_slice() else {
        return Err("stats takes exactly one image".into());
    };
    let (program, kind, _) = load_program(input)?;
    let s = pgr_bytecode::image::ImageStats::of(&program);
    println!("kind:          {kind:?}");
    println!("procedures:    {}", program.procs.len());
    println!("code:          {} B", s.code);
    println!("label tables:  {} B", s.label_tables);
    println!("descriptors:   {} B", s.descriptors);
    println!("global table:  {} B", s.global_table);
    println!("trampolines:   {} B", s.trampolines);
    println!("data/bss:      {}/{} B", s.data, s.bss);
    println!("image total:   {} B (interpreter not included)", s.total());
    if kind == ImageKind::Uncompressed {
        let n = pgr_native::measure_program(&program);
        println!("native est.:   {} B code, {} B total", n.code, n.total());
    }
    Ok(0)
}

/// Validate that `text` is a well-formed `pgr-metrics/2` document: the
/// shape `--metrics json` emits and `schema/metrics.schema.json` pins.
///
/// Checks the schema tag, that the four sections are objects, that
/// counters/gauges hold non-negative integers, and that histogram/span
/// entries carry their exact numeric field sets.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn check_metrics_json(text: &str) -> Result<(), String> {
    use pgr_telemetry::json::Value;

    let doc = pgr_telemetry::json::parse(text).map_err(|e| e.to_string())?;
    let root = doc.as_obj().ok_or("root is not an object")?;
    match root.get("schema").and_then(Value::as_str) {
        Some(s) if s == pgr_telemetry::SCHEMA => {}
        Some(s) => {
            return Err(format!(
                "schema is {s:?}, expected {:?}",
                pgr_telemetry::SCHEMA
            ))
        }
        None => return Err("missing \"schema\" string".into()),
    }
    let section = |name: &str| -> Result<&std::collections::BTreeMap<String, Value>, String> {
        root.get(name)
            .and_then(Value::as_obj)
            .ok_or_else(|| format!("missing {name:?} object"))
    };
    for name in ["counters", "gauges"] {
        for (k, v) in section(name)? {
            if v.as_u64().is_none() {
                return Err(format!("{name}[{k:?}] is not a non-negative integer"));
            }
        }
    }
    for (name, fields) in [
        (
            "histograms",
            &["count", "sum", "min", "max", "p50", "p90", "p95", "p99"][..],
        ),
        ("spans", &["count", "total_ns", "min_ns", "max_ns"][..]),
    ] {
        for (k, v) in section(name)? {
            let entry = v
                .as_obj()
                .ok_or_else(|| format!("{name}[{k:?}] is not an object"))?;
            for field in fields {
                if entry.get(*field).and_then(Value::as_u64).is_none() {
                    return Err(format!("{name}[{k:?}] lacks integer field {field:?}"));
                }
            }
            if entry.len() != fields.len() {
                return Err(format!("{name}[{k:?}] has unexpected fields"));
            }
        }
    }
    Ok(())
}

fn metrics_check(args: &[String]) -> Result<i32, String> {
    let pos = positionals(args);
    let [input] = pos.as_slice() else {
        return Err("metrics-check takes exactly one metrics JSON file".into());
    };
    let text = String::from_utf8(read_file(input)?).map_err(|_| format!("{input}: not UTF-8"))?;
    check_metrics_json(&text).map_err(|e| format!("{input}: {e}"))?;
    eprintln!("{input}: valid {} document", pgr_telemetry::SCHEMA);
    Ok(0)
}

fn cgen(args: &[String]) -> Result<i32, String> {
    let out = required(args, "-o")?;
    let grammar = load_grammar_spec(args, required(args, "-g")?)?.file.grammar;
    std::fs::create_dir_all(out).map_err(|e| format!("{out}: {e}"))?;
    let dir = Path::new(out);
    let mut files = vec![
        ("interp1.c", pgr_vm::cgen::interp1_source()),
        ("tables.c", pgr_vm::cgen::rule_tables_source(&grammar)),
        ("interp_nt.c", pgr_vm::cgen::interp_nt_source()),
    ];
    if let Some(image) = opt_value(args, "-p") {
        let (program, _, _) = load_program(image)?;
        files.push(("package.c", pgr_vm::cgen::packaging_source(&program)));
    }
    for (name, content) in files {
        std::fs::write(dir.join(name), content).map_err(|e| format!("{name}: {e}"))?;
    }
    let sizes = pgr_vm::cgen::interpreter_sizes(&grammar);
    eprintln!(
        "wrote interp1.c/tables.c/interp_nt.c to {out} (modeled: initial {} B, compressed {} B)",
        sizes.initial, sizes.compressed
    );
    Ok(0)
}

// ---- registry and serve -------------------------------------------------

fn cmd_registry(args: &[String]) -> Result<i32, String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err("usage: pgr registry <add|list|rm|gc> ...".into());
    };
    let registry = open_registry(args)?;
    match sub.as_str() {
        "add" => {
            let pos = positionals(rest);
            let [path] = pos.as_slice() else {
                return Err("registry add takes exactly one .pgrg file".into());
            };
            let label = opt_value(rest, "--label").unwrap_or("");
            let bytes = read_file(path)?;
            let manifest = registry.store_bytes(&bytes, label).map_err(pipeline_err)?;
            println!("{}", manifest.id);
            eprintln!(
                "stored {path}: {} B, {} non-terminal(s), {} rule(s)",
                manifest.bytes, manifest.nt_count, manifest.rule_count
            );
            Ok(0)
        }
        "list" => {
            for m in registry.list().map_err(pipeline_err)? {
                println!(
                    "{}  {:>8} B  {:>4} NTs  {:>5} rules  {}",
                    m.id, m.bytes, m.nt_count, m.rule_count, m.label
                );
            }
            Ok(0)
        }
        "rm" => {
            let pos = positionals(rest);
            let [spec] = pos.as_slice() else {
                return Err("registry rm takes exactly one id (or prefix)".into());
            };
            let id = registry.resolve(spec).map_err(pipeline_err)?;
            registry.remove(&id).map_err(pipeline_err)?;
            eprintln!("removed {id}");
            Ok(0)
        }
        "gc" => {
            let mut keep = Vec::new();
            for spec in positionals(rest) {
                keep.push(registry.resolve(spec).map_err(pipeline_err)?);
            }
            let report = registry.gc(&keep).map_err(pipeline_err)?;
            eprintln!(
                "gc: removed {} grammar(s), pruned {} corrupt entr(ies)",
                report.removed.len(),
                report.pruned_corrupt.len()
            );
            Ok(0)
        }
        other => Err(format!("unknown registry subcommand {other:?}")),
    }
}

fn cmd_serve(args: &[String]) -> Result<i32, String> {
    let socket = required(args, "--socket")?;
    let root = registry_root(args)
        .ok_or("no registry configured (pass --registry <dir> or set $PGR_REGISTRY)")?;
    let max_budget = match opt_value(args, "--max-budget") {
        Some(v) => parse_budget(v)?,
        None => pgr_core::EarleyBudget::UNLIMITED,
    };
    let threads = match opt_value(args, "--threads") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("bad --threads {v:?}"))?,
        None => 0, // one worker per CPU
    };
    let slow_ms = match opt_value(args, "--slow-ms") {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("bad --slow-ms {v:?}"))?,
        ),
        None => None,
    };
    let uint = |name: &str, default: u64| -> Result<u64, String> {
        match opt_value(args, name) {
            Some(v) => v.parse::<u64>().map_err(|_| format!("bad {name} {v:?}")),
            None => Ok(default),
        }
    };
    let defaults = ServeConfig::default();
    let workers = uint("--workers", defaults.workers as u64)? as usize;
    let batch_window_us = uint("--batch-window-us", defaults.batch_window_us)?;
    let max_connections = uint("--max-connections", defaults.max_connections as u64)? as usize;
    let max_queue = uint("--max-queue", defaults.max_queue as u64)? as usize;
    let max_engines = uint("--max-engines", defaults.max_engines as u64)? as usize;
    let max_line_bytes = uint("--max-line-bytes", defaults.max_line_bytes as u64)? as usize;
    let slow_trace_max_bytes = uint("--slow-trace-max-bytes", defaults.slow_trace_max_bytes)?;
    let opt_uint = |name: &str| -> Result<Option<u64>, String> {
        match opt_value(args, name) {
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("bad {name} {v:?}")),
            None => Ok(None),
        }
    };
    let request_timeout_ms = opt_uint("--request-timeout-ms")?;
    let idle_timeout_ms = opt_uint("--idle-timeout-ms")?;
    let thread_per_conn = flag(args, "--thread-per-conn");
    let slow_trace: Option<std::path::PathBuf> = opt_value(args, "--slow-trace").map(Into::into);
    if slow_trace.is_some() && slow_ms.is_none() {
        return Err("--slow-trace needs --slow-ms <threshold>".into());
    }
    let slow_path = slow_trace
        .clone()
        .unwrap_or_else(|| Path::new(socket).with_extension("slow.ndjson"));
    let metrics = metrics_opts(args)?;
    // The server always records: `stats` responses snapshot the
    // recorder, so a disabled one would serve empty metrics.
    let recorder = match &metrics {
        Some(opts) => opts.recorder.clone(),
        None => Recorder::new(),
    };
    let server = Server::bind(
        socket,
        ServeConfig {
            registry_root: root.into(),
            max_budget,
            threads,
            recorder,
            slow_ms,
            slow_trace,
            workers,
            batch_window_us,
            max_connections,
            max_queue,
            max_engines,
            thread_per_conn,
            request_timeout_ms,
            idle_timeout_ms,
            max_line_bytes,
            slow_trace_max_bytes,
        },
    )
    .map_err(pipeline_err)?;
    if let Some(ms) = slow_ms {
        eprintln!(
            "pgr serve: tracing requests >= {ms} ms to {}",
            slow_path.display()
        );
    }
    eprintln!("pgr serve: listening on {socket} (send {{\"op\":\"shutdown\"}} to stop)");
    server.run().map_err(pipeline_err)?;
    emit_metrics(&metrics)?;
    eprintln!("pgr serve: shut down");
    Ok(0)
}

/// `pgr call --socket <path> [<request-json>]`: send one request line
/// (or every stdin line when no positional is given) through the
/// retrying [`pgr_client::Client`] and print each response line to
/// stdout. `--timeout-ms` propagates the deadline; `--retries`,
/// `--backoff-ms`, `--seed`, and `--breaker-threshold` shape the retry
/// policy; `--verbose` reports the client's attempt/retry/breaker
/// counters on stderr. Exits 0 when every response was `ok`, 1 when any
/// answered in-band error, or an error when the transport gave out.
fn cmd_call(args: &[String]) -> Result<i32, String> {
    use pgr_client::{CallError, Client, ClientConfig};
    use std::io::BufRead as _;

    let socket = required(args, "--socket")?;
    let uint = |name: &str, default: u64| -> Result<u64, String> {
        match opt_value(args, name) {
            Some(v) => v.parse::<u64>().map_err(|_| format!("bad {name} {v:?}")),
            None => Ok(default),
        }
    };
    let defaults = ClientConfig::default();
    let timeout_ms = match opt_value(args, "--timeout-ms") {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("bad --timeout-ms {v:?}"))?,
        ),
        None => None,
    };
    let config = ClientConfig {
        socket: socket.into(),
        timeout_ms,
        max_retries: uint("--retries", u64::from(defaults.max_retries))? as u32,
        backoff_base_ms: uint("--backoff-ms", defaults.backoff_base_ms)?,
        seed: uint("--seed", defaults.seed)?,
        breaker_threshold: uint("--breaker-threshold", u64::from(defaults.breaker_threshold))?
            as u32,
        ..defaults
    };
    let verbose = flag(args, "--verbose");
    let mut client = Client::new(config);
    let pos = positionals(args);
    let requests: Vec<String> = if pos.is_empty() {
        std::io::stdin()
            .lock()
            .lines()
            .collect::<Result<_, _>>()
            .map_err(|e| format!("stdin: {e}"))?
    } else {
        pos.iter().map(|s| s.to_string()).collect()
    };
    let mut all_ok = true;
    for request in &requests {
        if request.trim().is_empty() {
            continue;
        }
        let response = client.call(request).map_err(|e| match e {
            CallError::BreakerOpen { .. } | CallError::RetriesExhausted { .. } => {
                format!("{socket}: {e}")
            }
            CallError::BadRequest(_) => e.to_string(),
        })?;
        println!("{}", response.line);
        all_ok &= response.ok;
    }
    if verbose {
        let s = client.stats();
        eprintln!(
            "pgr call: {} attempt(s), {} retr(ies), {} connect(s), \
             {} overloaded response(s) absorbed, breaker {:?}",
            s.attempts,
            s.retries,
            s.connects,
            s.overloaded,
            client.breaker(),
        );
    }
    Ok(i32::from(!all_ok))
}

/// `pgr chaos-proxy --listen <sock> --upstream <sock>`: run the
/// socket-level fault proxy (see [`pgr_registry::chaos`]) for
/// `--duration-ms` (0 = until killed), then print the fault counters.
/// All fault decisions derive from `--seed`, so a failing chaos run is
/// replayable from its command line alone.
fn cmd_chaos_proxy(args: &[String]) -> Result<i32, String> {
    use pgr_registry::{ChaosConfig, ChaosProxy};
    use std::sync::atomic::Ordering;

    let listen = required(args, "--listen")?;
    let upstream = required(args, "--upstream")?;
    let d = ChaosConfig::default();
    let uint = |name: &str, default: u64| -> Result<u64, String> {
        match opt_value(args, name) {
            Some(v) => v.parse::<u64>().map_err(|_| format!("bad {name} {v:?}")),
            None => Ok(default),
        }
    };
    let rate = |name: &str, default: u16| -> Result<u16, String> {
        let v = uint(name, u64::from(default))?;
        u16::try_from(v.min(1024)).map_err(|_| format!("bad {name}"))
    };
    let config = ChaosConfig {
        seed: uint("--seed", d.seed)?,
        partial_write_per_1024: rate("--partial-per-1024", d.partial_write_per_1024)?,
        reset_per_1024: rate("--reset-per-1024", d.reset_per_1024)?,
        stall_per_1024: rate("--stall-per-1024", d.stall_per_1024)?,
        stall_ms: uint("--stall-ms", d.stall_ms)?,
        garbage_per_1024: rate("--garbage-per-1024", d.garbage_per_1024)?,
    };
    let duration_ms = uint("--duration-ms", 0)?;
    let proxy = ChaosProxy::start(Path::new(listen), Path::new(upstream), config)
        .map_err(|e| format!("{listen}: {e}"))?;
    eprintln!(
        "pgr chaos-proxy: {listen} -> {upstream} (seed {})",
        config.seed
    );
    if duration_ms == 0 {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    std::thread::sleep(std::time::Duration::from_millis(duration_ms));
    let c = proxy.counters();
    eprintln!(
        "pgr chaos-proxy: {} connection(s), {} partial write(s), {} reset(s), \
         {} stall(s), {} garbage line(s)",
        c.connections.load(Ordering::SeqCst),
        c.partial_writes.load(Ordering::SeqCst),
        c.resets.load(Ordering::SeqCst),
        c.stalls.load(Ordering::SeqCst),
        c.garbage.load(Ordering::SeqCst),
    );
    proxy.stop();
    Ok(0)
}

/// Render one serve `stats` response (one NDJSON line) as the `pgr top`
/// screen: a header with uptime and rolling-window rates, then one row
/// per op combining windowed and lifetime latency quantiles, then the
/// window's per-grammar breakdown. Pure — `cmd_top` polls the socket
/// and repaints with this.
///
/// # Errors
///
/// When the response is not valid JSON, is an error response, or lacks
/// the `stats` shape.
pub fn render_top(response: &str) -> Result<String, String> {
    use pgr_telemetry::json::Value;
    use std::fmt::Write as _;

    let doc = pgr_telemetry::json::parse(response).map_err(|e| format!("bad stats JSON: {e}"))?;
    if doc.get("ok").and_then(Value::as_bool) != Some(true) {
        let why = doc
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("not a stats response");
        return Err(format!("server error: {why}"));
    }
    let window = doc.get("window").ok_or("stats response lacks \"window\"")?;
    let metrics = doc
        .get("metrics")
        .ok_or("stats response lacks \"metrics\"")?;
    let num = |v: &Value, key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
    let fnum = |v: &Value, key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(0.0);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "pgr top — uptime {}s   window {}s   requests {}   rps {:.3}   errors {} ({:.2}%)",
        num(&doc, "uptime_secs"),
        num(window, "window_secs"),
        num(window, "requests"),
        fnum(window, "rps"),
        num(window, "errors"),
        100.0 * fnum(window, "error_rate"),
    );
    // Backpressure and batching at a glance: the live queue depth and
    // resident-engine count, the window's rejected count/rate, and the
    // window's batch-size / batch-wait quantiles.
    let rejected = num(window, "rejected");
    let win_requests = num(window, "requests");
    let rejected_pct = if win_requests == 0 {
        0.0
    } else {
        100.0 * rejected as f64 / win_requests as f64
    };
    let batch_size = window.get("batch_size");
    let batch_wait = window.get("batch_wait");
    let quant = |h: Option<&Value>, key: &str| h.map_or(0, |h| num(h, key));
    let _ = writeln!(
        out,
        "queue depth {}   engines {}   rejected {rejected} ({rejected_pct:.2}%)   \
         batch size p50/p99 {}/{}   batch wait µs p50/p99 {}/{}   \
         tier2 compiled {} deopts {}",
        num(&doc, "queue_depth"),
        num(&doc, "engines"),
        quant(batch_size, "p50"),
        quant(batch_size, "p99"),
        quant(batch_wait, "p50"),
        quant(batch_wait, "p99"),
        num(window, "tier2_compiled"),
        num(window, "tier2_deopts"),
    );
    // Robustness counters: deadline expiries (and the subset the
    // reactor's watchdog had to force), idle evictions, and oversized
    // request lines, all within the rolling window.
    let _ = writeln!(
        out,
        "deadline exceeded {} (forced {})   idle closed {}   line overflow {}",
        num(window, "deadline_exceeded"),
        num(window, "force_expired"),
        num(window, "idle_closed"),
        num(window, "line_overflow"),
    );
    out.push('\n');
    let _ = writeln!(
        out,
        "{:<12} {:>7} {:>8} {:>8} | {:>9} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "op", "win", "p50", "p99", "life", "p50", "p90", "p95", "p99", "max"
    );

    // Every op the lifetime histograms know about (pre-registered at
    // bind, so all serve ops appear even before their first request),
    // joined with the rolling window's view.
    let hists = metrics.get("histograms").and_then(Value::as_obj);
    let win_ops = window.get("ops").and_then(Value::as_obj);
    let mut rows = 0;
    if let Some(hists) = hists {
        for (name, life) in hists {
            let Some(op) = op_of_hist_name(name) else {
                continue;
            };
            let win = win_ops.and_then(|m| m.get(op));
            let (wc, wp50, wp99) = match win {
                Some(w) => (num(w, "count"), num(w, "p50"), num(w, "p99")),
                None => (0, 0, 0),
            };
            let _ = writeln!(
                out,
                "{op:<12} {wc:>7} {wp50:>8} {wp99:>8} | {:>9} {:>8} {:>8} {:>8} {:>8} {:>9}",
                num(life, "count"),
                num(life, "p50"),
                num(life, "p90"),
                num(life, "p95"),
                num(life, "p99"),
                num(life, "max"),
            );
            rows += 1;
        }
    }
    if rows == 0 {
        out.push_str("(no serve.request.<op>.micros histograms yet)\n");
    }

    if let Some(grammars) = window.get("grammars").and_then(Value::as_obj) {
        if !grammars.is_empty() {
            out.push('\n');
            let _ = writeln!(
                out,
                "{:<20} {:>7} {:>8} {:>8} {:>9}",
                "grammar (window)", "count", "p50", "p99", "max"
            );
            for (id, h) in grammars {
                let short: String = id.chars().take(16).collect();
                let _ = writeln!(
                    out,
                    "{short:<20} {:>7} {:>8} {:>8} {:>9}",
                    num(h, "count"),
                    num(h, "p50"),
                    num(h, "p99"),
                    num(h, "max"),
                );
            }
        }
    }
    out.push_str("\nlatencies in micros — window columns roll, life columns accumulate\n");
    Ok(out)
}

/// `pgr top --socket <path>`: poll the server's `stats` op and repaint a
/// live latency/throughput table. `--interval-ms` sets the poll period
/// (default 1000); `--iterations N` stops after N paints (0 = forever,
/// the default) so scripts and tests can take one sample.
fn cmd_top(args: &[String]) -> Result<i32, String> {
    use std::io::{BufRead, BufReader, IsTerminal, Write as _};

    let socket = required(args, "--socket")?;
    let interval_ms = match opt_value(args, "--interval-ms") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("bad --interval-ms {v:?}"))?,
        None => 1000,
    };
    let iterations = match opt_value(args, "--iterations") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("bad --iterations {v:?}"))?,
        None => 0,
    };
    let stream = std::os::unix::net::UnixStream::connect(socket)
        .map_err(|e| format!("cannot connect to {socket}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("{socket}: {e}"))?);
    let mut writer = stream;
    // Repaint via ANSI clear only when stdout is a live terminal;
    // redirected output gets plain appended frames.
    let clear = std::io::stdout().is_terminal();
    let mut painted = 0u64;
    loop {
        writeln!(writer, "{{\"op\":\"stats\"}}").map_err(|e| format!("{socket}: {e}"))?;
        let mut line = String::new();
        if reader
            .read_line(&mut line)
            .map_err(|e| format!("{socket}: {e}"))?
            == 0
        {
            return Err(format!("{socket}: server closed the connection"));
        }
        let screen = render_top(&line)?;
        if clear {
            print!("\x1b[2J\x1b[H");
        }
        print!("{screen}");
        std::io::stdout().flush().map_err(|e| e.to_string())?;
        painted += 1;
        if iterations != 0 && painted >= iterations {
            return Ok(0);
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}
