//! End-to-end interpreter equivalence: every program must behave
//! identically under the initial interpreter (uncompressed bytecode) and
//! the generated interpreter (compressed bytecode) — same output, same
//! return value, same exit code. This is the paper's central correctness
//! claim: compression changes the representation, not the program.

use pgr_bytecode::asm::assemble;
use pgr_bytecode::{validate_program, Program};
use pgr_core::{train, TrainConfig};
use pgr_vm::{RunResult, Vm, VmConfig};

/// Run `program` both ways (training the grammar on the program itself
/// plus a generic corpus) and assert identical behaviour; returns the
/// uncompressed result for further checks.
fn run_both(src: &str) -> RunResult {
    run_both_with(src, VmConfig::default())
}

fn run_both_with(src: &str, config: VmConfig) -> RunResult {
    let program = assemble(src).unwrap();
    validate_program(&program).unwrap();

    let mut vm = Vm::new(&program, config.clone()).unwrap();
    let plain = vm.run().unwrap();

    let trained = train(&[&program], &TrainConfig::default()).unwrap();
    let (cp, _) = trained.compress(&program).unwrap();
    let ig = trained.initial();
    // The compressed image must behave identically under every
    // interpreter configuration: the fast path (default), the fast path
    // without its segment cache, and the reference rule walker.
    let variants = [
        ("fast path", config.clone()),
        (
            "fast path, cache off",
            VmConfig {
                segment_cache_entries: 0,
                ..config.clone()
            },
        ),
        (
            "reference walker",
            VmConfig {
                reference_walker: true,
                ..config
            },
        ),
    ];
    for (label, config) in variants {
        let mut cvm = Vm::new_compressed(
            &cp.program,
            trained.expanded(),
            ig.nt_start,
            ig.nt_byte,
            config,
        )
        .unwrap();
        let compressed = cvm.run().unwrap();
        assert_eq!(plain.output, compressed.output, "{label}: output diverged");
        assert_eq!(plain.ret, compressed.ret, "{label}: return value diverged");
        assert_eq!(
            plain.exit_code, compressed.exit_code,
            "{label}: exit code diverged"
        );
    }
    plain
}

#[test]
fn arithmetic_and_return() {
    // (10 * 4 - 8) / 2 -> 16
    let r = run_both(
        "proc main frame=0 args=0\n\
         \tLIT1 10\n\tLIT1 4\n\tMULI\n\tLIT1 8\n\tSUBU\n\tLIT1 2\n\tDIVI\n\tRETU\n\
         endproc\nentry main\n",
    );
    assert_eq!(r.ret.u(), 16);
}

#[test]
fn loop_with_branches_prints_digits() {
    // for (i = 0; i < 10; i++) putchar('0' + i);
    let r = run_both(
        "proc main frame=8 args=0\n\
         \tLIT1 0\n\tADDRLP 0\n\tASGNU\n\
         \tlabel 0\n\
         \tADDRLP 0\n\tINDIRU\n\tLIT1 10\n\tLTI\n\tBrTrue 1\n\
         \tJUMPV 2\n\
         \tlabel 1\n\
         \tLIT1 48\n\tADDRLP 0\n\tINDIRU\n\tADDU\n\tARGU\n\tADDRGP 0\n\tCALLU\n\tPOPU\n\
         \tADDRLP 0\n\tINDIRU\n\tLIT1 1\n\tADDU\n\tADDRLP 0\n\tASGNU\n\
         \tJUMPV 0\n\
         \tlabel 2\n\
         \tRETV\n\
         endproc\nnative putchar\nentry main\n",
    );
    assert_eq!(r.output, b"0123456789");
}

#[test]
fn local_calls_and_recursion() {
    // fib(10) = 55, recursively.
    let r = run_both(
        "proc main frame=0 args=0\n\
         \tLIT1 10\n\tARGU\n\tLocalCALLU 1\n\tRETU\n\
         endproc\n\
         proc fib frame=8 args=4\n\
         \tADDRFP 0\n\tINDIRU\n\tLIT1 2\n\tLTI\n\tBrTrue 0\n\
         \tADDRFP 0\n\tINDIRU\n\tLIT1 1\n\tSUBU\n\tARGU\n\tLocalCALLU 1\n\
         \tADDRLP 0\n\tASGNU\n\
         \tADDRFP 0\n\tINDIRU\n\tLIT1 2\n\tSUBU\n\tARGU\n\tLocalCALLU 1\n\
         \tADDRLP 0\n\tINDIRU\n\tADDU\n\tRETU\n\
         \tlabel 0\n\
         \tADDRFP 0\n\tINDIRU\n\tRETU\n\
         endproc\nentry main\n",
    );
    assert_eq!(r.ret.u(), 55);
}

#[test]
fn indirect_calls_through_trampolines() {
    // apply(21, &double) called through apply's own trampoline; apply
    // forwards through the function-pointer argument. Both procedures are
    // reached by the same indirect-call mechanism (§3).
    let r = run_both(
        "proc main frame=0 args=0\n\
         \tLIT1 21\n\tARGU\n\tADDRGP 1\n\tARGU\n\tADDRGP 0\n\tCALLU\n\tRETU\n\
         endproc\n\
         proc apply frame=0 args=8\n\
         \tADDRFP 0\n\tINDIRU\n\tARGU\n\tADDRFP 4\n\tINDIRU\n\tCALLU\n\tRETU\n\
         endproc\n\
         proc double frame=0 args=4\n\
         \tADDRFP 0\n\tINDIRU\n\tLIT1 2\n\tMULI\n\tRETU\n\
         endproc\n\
         procaddr apply\n\
         procaddr double\n\
         entry main\n",
    );
    assert_eq!(r.ret.u(), 42);
}

#[test]
fn function_pointer_via_global_table() {
    // Simpler: store nothing; directly ADDRGP a procaddr entry and call.
    let r = run_both(
        "proc main frame=0 args=0\n\
         \tLIT1 5\n\tARGU\n\tADDRGP 0\n\tCALLU\n\tRETU\n\
         endproc\n\
         proc sq frame=0 args=4\n\
         \tADDRFP 0\n\tINDIRU\n\tADDRFP 0\n\tINDIRU\n\tMULI\n\tRETU\n\
         endproc\n\
         procaddr sq\n\
         entry main\n",
    );
    assert_eq!(r.ret.u(), 25);
}

#[test]
fn globals_data_and_bss() {
    // counter (bss) += table[2] (data); print result as char.
    let r = run_both(
        "proc main frame=0 args=0\n\
         \tADDRGP 0\n\tLIT1 2\n\tADDU\n\tINDIRC\n\tADDRGP 1\n\tASGNU\n\
         \tADDRGP 1\n\tINDIRU\n\tARGU\n\tADDRGP 2\n\tCALLU\n\tPOPU\n\
         \tRETV\n\
         endproc\n\
         data table = 1 2 67 4\n\
         bss counter 4\n\
         native putchar\n\
         entry main\n",
    );
    assert_eq!(r.output, b"C");
}

#[test]
fn floats_and_doubles() {
    // float: 1.5 + 2.25 = 3.75 -> *2 as int = 7 (via double).
    let bits = 1.5f32.to_bits();
    let bits2 = 2.25f32.to_bits();
    let r = run_both(&format!(
        "proc main frame=0 args=0\n\
         \tLIT4 {bits}\n\tLIT4 {bits2}\n\tADDF\n\tCVFD\n\
         \tLIT1 2\n\tCVID\n\tMULD\n\tCVDI\n\tRETU\n\
         endproc\nentry main\n"
    ));
    assert_eq!(r.ret.i(), 7);
}

#[test]
fn char_and_short_memory_ops() {
    let r = run_both(
        "proc main frame=16 args=0\n\
         \tLIT2 65535\n\tADDRLP 0\n\tASGNS\n\
         \tLIT1 200\n\tADDRLP 8\n\tASGNC\n\
         \tADDRLP 0\n\tINDIRS\n\tCVI2I4\n\
         \tADDRLP 8\n\tINDIRC\n\tCVI1I4\n\
         \tADDU\n\tRETU\n\
         endproc\nentry main\n",
    );
    // -1 + -56 = -57
    assert_eq!(r.ret.i(), -57);
}

#[test]
fn block_assign_and_block_args() {
    // Copy a 8-byte block from data to locals with ASGNB, pass it to a
    // procedure with ARGB, which sums two of its ints.
    let r = run_both(
        "proc main frame=16 args=0\n\
         \tADDRGP 0\n\tADDRLP 0\n\tASGNB 8\n\
         \tADDRLP 0\n\tARGB 8\n\tLocalCALLU 1\n\tRETU\n\
         endproc\n\
         proc sum2 frame=0 args=8\n\
         \tADDRFP 0\n\tINDIRU\n\tADDRFP 4\n\tINDIRU\n\tADDU\n\tRETU\n\
         endproc\n\
         data pair = 7 0 0 0 35 0 0 0\n\
         entry main\n",
    );
    assert_eq!(r.ret.u(), 42);
}

#[test]
fn natives_getchar_rand_exit() {
    let config = VmConfig {
        input: b"Q".to_vec(),
        ..VmConfig::default()
    };
    let r = run_both_with(
        "proc main frame=0 args=0\n\
         \tADDRGP 0\n\tCALLU\n\tARGU\n\tADDRGP 1\n\tCALLU\n\tPOPU\n\
         \tLIT1 9\n\tARGU\n\tADDRGP 2\n\tCALLU\n\tPOPU\n\
         \tADDRGP 3\n\tCALLU\n\tPOPU\n\
         \tLIT1 3\n\tARGU\n\tADDRGP 4\n\tCALLV\n\
         \tRETV\n\
         endproc\n\
         native getchar\nnative putchar\nnative srand\nnative rand\nnative exit\n\
         entry main\n",
        config,
    );
    assert_eq!(r.output, b"Q");
    assert_eq!(r.exit_code, Some(3));
}

#[test]
fn nested_call_arguments_consume_the_buffer_tail() {
    // f(1, g(2), 3) where g doubles: expect 1 + 4 + 3 = 8.
    let r = run_both(
        "proc main frame=0 args=0\n\
         \tLIT1 1\n\tARGU\n\
         \tLIT1 2\n\tARGU\n\tLocalCALLU 2\n\tARGU\n\
         \tLIT1 3\n\tARGU\n\
         \tLocalCALLU 1\n\tRETU\n\
         endproc\n\
         proc sum3 frame=0 args=12\n\
         \tADDRFP 0\n\tINDIRU\n\tADDRFP 4\n\tINDIRU\n\tADDU\n\tADDRFP 8\n\tINDIRU\n\tADDU\n\tRETU\n\
         endproc\n\
         proc dbl frame=0 args=4\n\
         \tADDRFP 0\n\tINDIRU\n\tLIT1 2\n\tMULI\n\tRETU\n\
         endproc\n\
         entry main\n",
    );
    assert_eq!(r.ret.u(), 8);
}

#[test]
fn malloc_and_memset_and_memcpy() {
    let r = run_both(
        "proc main frame=8 args=0\n\
         \tLIT1 16\n\tARGU\n\tADDRGP 0\n\tCALLU\n\tADDRLP 0\n\tASGNU\n\
         \tADDRLP 0\n\tINDIRU\n\tARGU\n\tLIT1 7\n\tARGU\n\tLIT1 16\n\tARGU\n\
         \tADDRGP 1\n\tCALLU\n\tPOPU\n\
         \tADDRLP 0\n\tINDIRU\n\tLIT1 8\n\tADDU\n\tARGU\n\
         \tADDRLP 0\n\tINDIRU\n\tARGU\n\tLIT1 4\n\tARGU\n\
         \tADDRGP 2\n\tCALLU\n\tPOPU\n\
         \tADDRLP 0\n\tINDIRU\n\tLIT1 8\n\tADDU\n\tINDIRU\n\tRETU\n\
         endproc\n\
         native malloc\nnative memset\nnative memcpy\n\
         entry main\n",
    );
    assert_eq!(r.ret.u(), 0x0707_0707);
}

#[test]
fn division_by_zero_faults_identically() {
    let src = "proc main frame=0 args=0\n\tLIT1 1\n\tLIT1 0\n\tDIVI\n\tRETU\nendproc\nentry main\n";
    let program: Program = assemble(src).unwrap();
    let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
    let e1 = vm.run().unwrap_err();

    let trained = train(&[&program], &TrainConfig::default()).unwrap();
    let (cp, _) = trained.compress(&program).unwrap();
    let ig = trained.initial();
    let mut cvm = Vm::new_compressed(
        &cp.program,
        trained.expanded(),
        ig.nt_start,
        ig.nt_byte,
        VmConfig::default(),
    )
    .unwrap();
    let e2 = cvm.run().unwrap_err();
    assert_eq!(e1, e2);
}

#[test]
fn fuel_limit_stops_infinite_loops() {
    let src = "proc main frame=0 args=0\n\tlabel 0\n\tJUMPV 0\nendproc\nentry main\n";
    let program = assemble(src).unwrap();
    let mut vm = Vm::new(
        &program,
        VmConfig {
            fuel: 1000,
            ..VmConfig::default()
        },
    )
    .unwrap();
    assert_eq!(vm.run().unwrap_err(), pgr_vm::VmError::OutOfFuel);
}

#[test]
fn call_depth_limit_stops_runaway_recursion() {
    let src = "proc main frame=0 args=0\n\tLocalCALLV 0\n\tRETV\nendproc\nentry main\n";
    let program = assemble(src).unwrap();
    let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
    assert!(matches!(
        vm.run().unwrap_err(),
        pgr_vm::VmError::CallDepthExceeded { .. }
    ));
}

#[test]
fn unknown_native_is_a_load_error() {
    let src = "proc main frame=0 args=0\n\tRETV\nendproc\nnative qsort\nentry main\n";
    let program = assemble(src).unwrap();
    assert!(matches!(
        Vm::new(&program, VmConfig::default()),
        Err(pgr_vm::VmError::UnknownNative { .. })
    ));
}

#[test]
fn null_dereference_faults() {
    let src = "proc main frame=0 args=0\n\tLIT1 0\n\tINDIRU\n\tRETU\nendproc\nentry main\n";
    let program = assemble(src).unwrap();
    let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
    assert!(matches!(
        vm.run().unwrap_err(),
        pgr_vm::VmError::BadAddress { addr: 0, .. }
    ));
}

#[test]
fn shifts_and_bitwise_ops() {
    let r = run_both(
        "proc main frame=0 args=0\n\
         \tLIT1 1\n\tLIT1 7\n\tLSHU\n\
         \tLIT1 255\n\tBANDU\n\
         \tLIT1 15\n\tBXORU\n\
         \tLIT1 64\n\tBORU\n\
         \tLIT1 2\n\tRSHU\n\
         \tBCOMU\n\tNEGI\n\tRETU\n\
         endproc\nentry main\n",
    );
    // ((((1<<7)&255)^15)|64)>>2 = 0x33 ; ~0x33 = -0x34 ; neg -> 0x34
    assert_eq!(r.ret.u(), 0x34);
}

#[test]
fn branch_into_shared_tail_from_two_paths() {
    // Both paths jump to a common tail label; segment restart must line
    // up in the compressed stream.
    let r = run_both(
        "proc main frame=4 args=0\n\
         \tLIT1 1\n\tBrTrue 0\n\
         \tLIT1 65\n\tADDRLP 0\n\tASGNU\n\tJUMPV 1\n\
         \tlabel 0\n\
         \tLIT1 66\n\tADDRLP 0\n\tASGNU\n\tJUMPV 1\n\
         \tlabel 1\n\
         \tADDRLP 0\n\tINDIRU\n\tARGU\n\tADDRGP 0\n\tCALLU\n\tPOPU\n\tRETV\n\
         endproc\nnative putchar\nentry main\n",
    );
    assert_eq!(r.output, b"B");
}

#[test]
fn traces_match_across_interpreters() {
    // The executed-operator trace must be identical between interp1 and
    // interp_nt: compression changes the encoding, not the execution.
    let src = "proc main frame=8 args=0\n\
               \tLIT1 0\n\tADDRLP 0\n\tASGNU\n\
               \tlabel 0\n\
               \tADDRLP 0\n\tINDIRU\n\tLIT1 3\n\tLTI\n\tBrTrue 1\n\
               \tJUMPV 2\n\
               \tlabel 1\n\
               \tADDRLP 0\n\tINDIRU\n\tLIT1 1\n\tADDU\n\tADDRLP 0\n\tASGNU\n\
               \tJUMPV 0\n\
               \tlabel 2\n\
               \tADDRLP 0\n\tINDIRU\n\tRETU\n\
               endproc\nentry main\n";
    let program = assemble(src).unwrap();
    let config = VmConfig {
        trace_limit: 10_000,
        ..VmConfig::default()
    };
    let mut vm = Vm::new(&program, config.clone()).unwrap();
    let plain = vm.run().unwrap();
    assert_eq!(plain.ret.u(), 3);
    assert!(!plain.trace.is_empty());

    let trained = train(&[&program], &TrainConfig::default()).unwrap();
    let (cp, _) = trained.compress(&program).unwrap();
    let ig = trained.initial();
    let mut cvm = Vm::new_compressed(
        &cp.program,
        trained.expanded(),
        ig.nt_start,
        ig.nt_byte,
        config,
    )
    .unwrap();
    let compressed = cvm.run().unwrap();
    // The uncompressed interpreter also steps over LABELV markers; the
    // compressed stream has none. Compare modulo those no-ops.
    let strip = |t: &[pgr_vm::TraceEvent]| -> Vec<pgr_vm::TraceEvent> {
        t.iter()
            .copied()
            .filter(|e| e.op != pgr_bytecode::Opcode::LABELV)
            .collect()
    };
    assert_eq!(strip(&plain.trace), strip(&compressed.trace));
}
