//! Verbatim-escape execution: compressed streams may embed raw
//! canonical bytecode behind the reserved `0xFF` marker (the
//! compressor's graceful-degradation path for unparseable or
//! over-budget segments). Both compressed walkers must execute escapes
//! identically to each other and to the uncompressed interpreter, and
//! must reject malformed escapes with clean errors, never panics.

use pgr_bytecode::asm::assemble;
use pgr_bytecode::{escape, Opcode, Procedure, Program};
use pgr_core::{train, Compressor, CompressorConfig, EarleyBudget, TrainConfig};
use pgr_grammar::InitialGrammar;
use pgr_vm::{Vm, VmConfig, VmError};

/// A program with branches, a loop, and a native call — enough control
/// flow that escaped segments interleave with label targets.
const LOOP_SRC: &str = "proc main frame=8 args=0\n\
     \tLIT1 0\n\tADDRLP 0\n\tASGNU\n\
     \tlabel 0\n\
     \tADDRLP 0\n\tINDIRU\n\tLIT1 10\n\tLTI\n\tBrTrue 1\n\
     \tJUMPV 2\n\
     \tlabel 1\n\
     \tLIT1 48\n\tADDRLP 0\n\tINDIRU\n\tADDU\n\tARGU\n\tADDRGP 0\n\tCALLU\n\tPOPU\n\
     \tADDRLP 0\n\tINDIRU\n\tLIT1 1\n\tADDU\n\tADDRLP 0\n\tASGNU\n\
     \tJUMPV 0\n\
     \tlabel 2\n\
     \tRETV\n\
     endproc\nnative putchar\nentry main\n";

#[test]
fn all_fallback_programs_run_identically_on_every_walker() {
    let program = assemble(LOOP_SRC).unwrap();
    let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
    let plain = vm.run().unwrap();
    assert_eq!(plain.output, b"0123456789");

    // A one-item Earley budget forces every segment through the
    // verbatim escape.
    let trained = train(&[&program], &TrainConfig::default()).unwrap();
    let ig = trained.initial();
    let engine = Compressor::with_config(
        trained.expanded(),
        ig.nt_start,
        CompressorConfig::default().earley_budget(EarleyBudget::UNLIMITED.max_items(1)),
    );
    let (cp, stats) = engine.compress(&program).unwrap();
    assert!(stats.fallback_segments > 0, "budget never tripped");

    let variants = [
        ("fast path", VmConfig::default()),
        (
            "fast path, cache off",
            VmConfig {
                segment_cache_entries: 0,
                ..VmConfig::default()
            },
        ),
        (
            "reference walker",
            VmConfig {
                reference_walker: true,
                ..VmConfig::default()
            },
        ),
    ];
    let mut steps = Vec::new();
    for (label, config) in variants {
        let mut cvm = Vm::new_compressed(
            &cp.program,
            trained.expanded(),
            ig.nt_start,
            ig.nt_byte,
            config,
        )
        .unwrap();
        let got = cvm.run().unwrap();
        assert_eq!(plain.output, got.output, "{label}: output diverged");
        assert_eq!(plain.ret, got.ret, "{label}: return value diverged");
        assert_eq!(
            plain.exit_code, got.exit_code,
            "{label}: exit code diverged"
        );
        steps.push((label, got.steps));
    }
    // All three compressed configurations must agree on fuel accounting
    // too — verbatim segments burn one unit for the marker plus one per
    // raw instruction, on every path.
    assert_eq!(steps[0].1, steps[1].1, "cache changed step count");
    assert_eq!(steps[0].1, steps[2].1, "walkers disagree on step count");
}

/// Build a "compressed" program whose single procedure is exactly the
/// given stream bytes — enough to exercise the escape decoder directly.
fn raw_compressed(code: Vec<u8>) -> Program {
    let mut prog = Program::new();
    let mut proc = Procedure::new("main");
    proc.code = code;
    prog.procs.push(proc);
    prog
}

fn run_compressed(prog: &Program, reference_walker: bool) -> Result<pgr_vm::RunResult, VmError> {
    let ig = InitialGrammar::build();
    let mut vm = Vm::new_compressed(
        prog,
        &ig.grammar,
        ig.nt_start,
        ig.nt_byte,
        VmConfig {
            reference_walker,
            ..VmConfig::default()
        },
    )
    .unwrap();
    vm.run()
}

#[test]
fn a_pure_escape_segment_executes_and_returns() {
    // [marker, len=1, RETV]: no derivation bytes at all.
    let prog = raw_compressed(vec![escape::VERBATIM_MARKER, 1, 0, Opcode::RETV as u8]);
    for reference in [false, true] {
        let r = run_compressed(&prog, reference).unwrap();
        assert_eq!(r.exit_code, None);
        // Marker iteration + one raw instruction.
        assert_eq!(r.steps, 2, "reference={reference}");
    }
}

#[test]
fn an_escape_overrunning_the_stream_is_a_corrupt_derivation() {
    // The header claims a 515-byte payload the stream doesn't have.
    let prog = raw_compressed(vec![escape::VERBATIM_MARKER, 3, 2, Opcode::RETV as u8]);
    for reference in [false, true] {
        let err = run_compressed(&prog, reference).unwrap_err();
        match err {
            VmError::CorruptDerivation { offset, detail, .. } => {
                assert_eq!(offset, 0, "reference={reference}");
                assert_eq!(detail, "verbatim escape overruns the stream");
            }
            other => panic!("reference={reference}: wanted CorruptDerivation, got {other:?}"),
        }
    }
}

#[test]
fn a_truncated_escape_header_is_a_corrupt_derivation() {
    // A marker with only one length byte after it.
    let prog = raw_compressed(vec![escape::VERBATIM_MARKER, 1]);
    for reference in [false, true] {
        let err = run_compressed(&prog, reference).unwrap_err();
        assert!(
            matches!(
                err,
                VmError::CorruptDerivation {
                    detail: "verbatim escape overruns the stream",
                    ..
                }
            ),
            "reference={reference}: got {err:?}"
        );
    }
}

#[test]
fn an_instruction_split_by_the_payload_boundary_is_a_bad_opcode() {
    // LIT4 needs four operand bytes; the payload ends after one.
    let prog = raw_compressed(vec![escape::VERBATIM_MARKER, 2, 0, Opcode::LIT4 as u8, 7]);
    for reference in [false, true] {
        let err = run_compressed(&prog, reference).unwrap_err();
        match err {
            VmError::BadOpcode { offset, .. } => {
                assert_eq!(offset, escape::VERBATIM_HEADER, "reference={reference}")
            }
            other => panic!("reference={reference}: wanted BadOpcode, got {other:?}"),
        }
    }
}
