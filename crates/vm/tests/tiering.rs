//! Tier-2 lifecycle tests: tier-up, deoptimization, forced lower
//! tiers, and LRU eviction of compiled programs — the policy layer
//! around the superinstruction engine whose *semantics* are pinned by
//! `differential.rs`.

use pgr_bytecode::asm::assemble;
use pgr_core::{train, TrainConfig, Trained};
use pgr_telemetry::Recorder;
use pgr_vm::{RunResult, Tier2Stats, Vm, VmConfig};
use std::sync::OnceLock;

/// Counting loop: `for (i = 0; i < 24; i++) sum += 7; return sum`. Two
/// distinct hot segments (the loop head and the loop body) replay every
/// iteration.
const LOOP: &str = "proc main frame=16 args=0\n\
     \tLIT1 0\n\tADDRLP 0\n\tASGNU\n\
     \tLIT1 0\n\tADDRLP 8\n\tASGNU\n\
     \tlabel 0\n\
     \tADDRLP 0\n\tINDIRU\n\tLIT1 24\n\tLTI\n\tBrTrue 1\n\
     \tJUMPV 2\n\
     \tlabel 1\n\
     \tADDRLP 8\n\tINDIRU\n\tLIT1 7\n\tADDU\n\tADDRLP 8\n\tASGNU\n\
     \tADDRLP 0\n\tINDIRU\n\tLIT1 1\n\tADDU\n\tADDRLP 0\n\tASGNU\n\
     \tJUMPV 0\n\
     \tlabel 2\n\
     \tADDRLP 8\n\tINDIRU\n\tRETU\n\
     endproc\nentry main\n";

fn trained() -> &'static Trained {
    static T: OnceLock<Trained> = OnceLock::new();
    T.get_or_init(|| {
        let program = assemble(LOOP).unwrap();
        train(&[&program], &TrainConfig::default()).unwrap()
    })
}

/// Compress the loop once, run it under `config`, and return the result
/// plus the tier-2 stats snapshot.
fn run_loop(config: VmConfig) -> (RunResult, Tier2Stats) {
    let program = assemble(LOOP).unwrap();
    let trained = trained();
    let (cp, _) = trained.compress(&program).unwrap();
    let ig = trained.initial();
    let mut vm = Vm::new_compressed(
        &cp.program,
        trained.expanded(),
        ig.nt_start,
        ig.nt_byte,
        config,
    )
    .unwrap();
    let result = vm.run().unwrap();
    (result, vm.tier2_stats())
}

#[test]
fn hot_loop_tiers_up_and_runs_fused() {
    let (reference, zeros) = run_loop(VmConfig {
        tier: 0,
        ..VmConfig::default()
    });
    assert_eq!(zeros, Tier2Stats::default());

    // Quiet run (no telemetry, no tracing) with immediate tier-up: the
    // loop segments compile and later iterations execute fused.
    let (fused, stats) = run_loop(VmConfig {
        tier_up: 1,
        ..VmConfig::default()
    });
    assert!(stats.compiled >= 1, "hot segments should compile");
    assert!(stats.fused_ops >= 1);
    assert!(stats.bytes > 0);
    assert!(stats.hits >= 1, "fused programs should serve replays");
    assert_eq!(stats.deopts, 0, "quiet runs never deoptimize");
    assert_eq!(fused, reference, "tier 2 must be byte-identical");
}

#[test]
fn telemetry_active_deopts_every_tiered_replay() {
    let recorder = Recorder::new();
    let (result, stats) = run_loop(VmConfig {
        tier_up: 1,
        recorder: recorder.clone(),
        ..VmConfig::default()
    });
    let (reference, _) = run_loop(VmConfig {
        tier: 0,
        ..VmConfig::default()
    });
    // Telemetry needs per-step bookkeeping, so every tiered replay
    // falls back to the tier-1 per-step loop — and says so.
    assert!(stats.hits >= 1);
    assert_eq!(stats.hits, stats.deopts);
    assert_eq!(result.ret, reference.ret);
    assert_eq!(result.steps, reference.steps);

    let m = recorder.snapshot();
    assert_eq!(m.counters().get("vm.tier2.compiled"), Some(&stats.compiled));
    assert_eq!(m.counters().get("vm.tier2.hits"), Some(&stats.hits));
    assert_eq!(m.counters().get("vm.tier2.deopts"), Some(&stats.deopts));
    assert_eq!(
        m.counters().get("vm.tier2.fused_ops"),
        Some(&stats.fused_ops)
    );
    assert_eq!(m.gauges().get("vm.tier2.bytes"), Some(&stats.bytes));
}

#[test]
fn tier_flags_force_lower_tiers() {
    // --tier 1: the segment cache replays, but nothing ever compiles.
    let r1 = Recorder::new();
    let (tier1, stats1) = run_loop(VmConfig {
        tier: 1,
        tier_up: 1,
        recorder: r1.clone(),
        ..VmConfig::default()
    });
    assert_eq!(stats1, Tier2Stats::default());
    let m1 = r1.snapshot();
    assert!(m1.counters().get("vm.segment_cache.hits").copied() > Some(0));
    assert_eq!(m1.counters().get("vm.tier2.compiled"), None);

    // --tier 0: even the segment cache is off — every segment is
    // walked fresh.
    let r0 = Recorder::new();
    let (tier0, stats0) = run_loop(VmConfig {
        tier: 0,
        tier_up: 1,
        recorder: r0.clone(),
        ..VmConfig::default()
    });
    assert_eq!(stats0, Tier2Stats::default());
    let m0 = r0.snapshot();
    assert_eq!(m0.counters().get("vm.segment_cache.hits"), Some(&0));
    assert_eq!(m0.counters().get("vm.segment_cache.misses"), Some(&0));
    assert_eq!(m0.counters().get("vm.tier2.compiled"), None);

    assert_eq!(tier0, tier1);
}

#[test]
fn eviction_drops_tiered_programs_but_keeps_running() {
    // A one-entry tier-2 cache under two hot segments: each tier-up
    // evicts the other's program, execution stays correct, and the
    // stats ledger balances.
    let (reference, _) = run_loop(VmConfig {
        tier: 0,
        ..VmConfig::default()
    });
    let (result, stats) = run_loop(VmConfig {
        tier_up: 1,
        tier2_cache_entries: 1,
        ..VmConfig::default()
    });
    assert!(stats.compiled >= 2, "both loop segments should tier up");
    assert!(stats.evicted >= 1, "the one-entry cache must evict");
    assert_eq!(stats.resident, 1);
    assert_eq!(
        stats.compiled - stats.evicted,
        stats.resident,
        "compile/evict ledger out of balance"
    );
    assert_eq!(result, reference);
}
