//! Pointwise semantic tests for tricky operator behaviour: two's
//! complement edges, shift masking, conversion saturation, NaN
//! comparisons, sub-word loads/stores. Each runs a tiny assembled
//! program on the VM and checks the exact result.

use pgr_bytecode::asm::assemble;
use pgr_vm::{Vm, VmConfig, VmError};

fn eval(body: &str) -> Result<pgr_vm::Slot, VmError> {
    let src = format!("proc main frame=16 args=0\n{body}endproc\nentry main\n");
    let program = assemble(&src).unwrap();
    pgr_bytecode::validate_program(&program).unwrap();
    let mut vm = Vm::new(&program, VmConfig::default())?;
    vm.run().map(|r| r.ret)
}

fn eval_u(body: &str) -> u32 {
    eval(body).unwrap().u()
}

fn eval_i(body: &str) -> i32 {
    eval(body).unwrap().i()
}

#[test]
fn integer_wraparound() {
    // i32::MAX + 1 wraps.
    assert_eq!(
        eval_i("\tLIT4 2147483647\n\tLIT1 1\n\tADDU\n\tRETU\n"),
        i32::MIN
    );
    // i32::MIN / -1 wraps (no trap, like x86 would but C leaves UB).
    assert_eq!(
        eval_i("\tLIT4 2147483648\n\tLIT4 4294967295\n\tDIVI\n\tRETU\n"),
        i32::MIN
    );
    // MULI overflow wraps.
    assert_eq!(eval_u("\tLIT4 65536\n\tLIT4 65536\n\tMULI\n\tRETU\n"), 0);
    // NEGI of i32::MIN is itself.
    assert_eq!(eval_i("\tLIT4 2147483648\n\tNEGI\n\tRETU\n"), i32::MIN);
}

#[test]
fn signed_vs_unsigned_division() {
    assert_eq!(eval_i("\tLIT1 7\n\tNEGI\n\tLIT1 2\n\tDIVI\n\tRETU\n"), -3);
    assert_eq!(eval_i("\tLIT1 7\n\tNEGI\n\tLIT1 2\n\tMODI\n\tRETU\n"), -1);
    // -7 as unsigned divided by 2 is huge.
    assert_eq!(
        eval_u("\tLIT1 7\n\tNEGI\n\tLIT1 2\n\tDIVU\n\tRETU\n"),
        (u32::MAX - 6) / 2
    );
    assert!(matches!(
        eval("\tLIT1 1\n\tLIT1 0\n\tMODU\n\tRETU\n"),
        Err(VmError::DivideByZero { .. })
    ));
}

#[test]
fn shift_amounts_are_masked() {
    // Shifting by 33 behaves like shifting by 1 (x86 semantics).
    assert_eq!(eval_u("\tLIT1 1\n\tLIT1 33\n\tLSHU\n\tRETU\n"), 2);
    assert_eq!(eval_u("\tLIT1 8\n\tLIT1 35\n\tRSHU\n\tRETU\n"), 1);
    // Arithmetic vs logical right shift of a negative value.
    assert_eq!(eval_i("\tLIT1 8\n\tNEGI\n\tLIT1 1\n\tRSHI\n\tRETU\n"), -4);
    assert_eq!(
        eval_u("\tLIT1 8\n\tNEGI\n\tLIT1 1\n\tRSHU\n\tRETU\n"),
        (8u32.wrapping_neg()) >> 1
    );
}

#[test]
fn float_conversions_saturate_not_trap() {
    // (int)1e30f saturates to i32::MAX (deterministic, no UB).
    let bits = 1e30f32.to_bits();
    assert_eq!(
        eval_i(&format!("\tLIT4 {bits}\n\tCVFI\n\tRETU\n")),
        i32::MAX
    );
    let bits = (-1e30f32).to_bits();
    assert_eq!(
        eval_i(&format!("\tLIT4 {bits}\n\tCVFI\n\tRETU\n")),
        i32::MIN
    );
}

#[test]
fn nan_comparisons_follow_c() {
    let nan = f32::NAN.to_bits();
    // NaN == NaN is false; NaN != NaN is true.
    assert_eq!(
        eval_u(&format!("\tLIT4 {nan}\n\tLIT4 {nan}\n\tEQF\n\tRETU\n")),
        0
    );
    assert_eq!(
        eval_u(&format!("\tLIT4 {nan}\n\tLIT4 {nan}\n\tNEF\n\tRETU\n")),
        1
    );
    assert_eq!(
        eval_u(&format!("\tLIT4 {nan}\n\tLIT4 {nan}\n\tLTF\n\tRETU\n")),
        0
    );
    assert_eq!(
        eval_u(&format!("\tLIT4 {nan}\n\tLIT4 {nan}\n\tGEF\n\tRETU\n")),
        0
    );
}

#[test]
fn subword_loads_zero_extend_and_conversions_sign_extend() {
    // Store 0x80 as a char; INDIRC zero-extends, CVI1I4 sign-extends.
    let body = "\tLIT1 128\n\tADDRLP 0\n\tASGNC\n\
                \tADDRLP 0\n\tINDIRC\n\tRETU\n";
    assert_eq!(eval_u(body), 128);
    let body = "\tLIT1 128\n\tADDRLP 0\n\tASGNC\n\
                \tADDRLP 0\n\tINDIRC\n\tCVI1I4\n\tRETU\n";
    assert_eq!(eval_i(body), -128);
    // Shorts: 0x8000 via INDIRS then CVI2I4.
    let body = "\tLIT2 32768\n\tADDRLP 0\n\tASGNS\n\
                \tADDRLP 0\n\tINDIRS\n\tCVI2I4\n\tRETU\n";
    assert_eq!(eval_i(body), i32::from(i16::MIN));
    // Truncating stores drop high bytes.
    let body = "\tLIT4 305419896\n\tADDRLP 0\n\tASGNC\n\
                \tADDRLP 0\n\tINDIRC\n\tRETU\n";
    assert_eq!(eval_u(body), 0x78);
}

#[test]
fn double_memory_roundtrip_preserves_bits() {
    // Store a double via ASGND, reload via INDIRD, compare: use a value
    // with a non-trivial low word (1/3).
    let third = (1.0f64 / 3.0).to_bits();
    let lo = (third & 0xFFFF_FFFF) as u32;
    let hi = (third >> 32) as u32;
    // Build the double from two 4-byte stores, read as double, multiply
    // by 3, convert to int -> 1 (0.999... truncates to 0? No: 3*(1/3)
    // rounds to exactly 1.0 in IEEE double).
    let body = format!(
        "\tLIT4 {lo}\n\tADDRLP 0\n\tASGNU\n\
         \tLIT4 {hi}\n\tADDRLP 4\n\tASGNU\n\
         \tADDRLP 0\n\tINDIRD\n\tLIT1 3\n\tCVID\n\tMULD\n\tCVDI\n\tRETU\n"
    );
    assert_eq!(eval_i(&body), 1);
}

#[test]
fn bitwise_complement_and_xor() {
    assert_eq!(eval_u("\tLIT1 0\n\tBCOMU\n\tRETU\n"), u32::MAX);
    assert_eq!(
        eval_u("\tLIT4 2863311530\n\tLIT4 1431655765\n\tBXORU\n\tRETU\n"),
        u32::MAX
    );
}

#[test]
fn comparison_results_are_exactly_zero_or_one() {
    for (op, expect) in [("LTI", 1u32), ("GEI", 0), ("EQU", 0), ("NEU", 1)] {
        let got = eval_u(&format!("\tLIT1 3\n\tLIT1 5\n\t{op}\n\tRETU\n"));
        assert_eq!(got, expect, "{op}");
    }
}

#[test]
fn stack_overflow_is_detected() {
    // A frame larger than the stack region.
    let src = "proc main frame=0 args=0\n\tLocalCALLV 1\n\tRETV\nendproc\n\
               proc big frame=65535 args=0\n\tRETV\nendproc\nentry main\n";
    let program = assemble(src).unwrap();
    let mut vm = Vm::new(
        &program,
        VmConfig {
            stack_size: 1024,
            ..VmConfig::default()
        },
    )
    .unwrap();
    assert!(matches!(vm.run().unwrap_err(), VmError::StackOverflow));
}

#[test]
fn frames_are_zeroed_between_calls() {
    // f writes a local then returns; calling it twice must observe the
    // local starting at zero both times (deterministic frames).
    let src = "proc main frame=0 args=0\n\
               \tLocalCALLU 1\n\tPOPU\n\tLocalCALLU 1\n\tRETU\nendproc\n\
               proc f frame=8 args=0\n\
               \tADDRLP 0\n\tINDIRU\n\tLIT1 7\n\tADDU\n\tADDRLP 0\n\tASGNU\n\
               \tADDRLP 0\n\tINDIRU\n\tRETU\nendproc\nentry main\n";
    let program = assemble(src).unwrap();
    let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
    assert_eq!(vm.run().unwrap().ret.u(), 7);
}

#[test]
fn heap_exhaustion_is_an_error() {
    let src = "proc main frame=0 args=0\n\
               \tLIT4 1048576\n\tARGU\n\tADDRGP 0\n\tCALLU\n\tPOPU\n\
               \tLIT4 1048576\n\tARGU\n\tADDRGP 0\n\tCALLU\n\tPOPU\n\
               \tRETV\nendproc\nnative malloc\nentry main\n";
    let program = assemble(src).unwrap();
    let mut vm = Vm::new(
        &program,
        VmConfig {
            heap_size: 1 << 20,
            ..VmConfig::default()
        },
    )
    .unwrap();
    assert!(matches!(
        vm.run().unwrap_err(),
        VmError::HeapExhausted { .. }
    ));
}

#[test]
fn malloc_returns_distinct_aligned_blocks() {
    let src = "proc main frame=8 args=0\n\
               \tLIT1 3\n\tARGU\n\tADDRGP 0\n\tCALLU\n\tADDRLP 0\n\tASGNU\n\
               \tLIT1 3\n\tARGU\n\tADDRGP 0\n\tCALLU\n\tADDRLP 0\n\tINDIRU\n\tSUBU\n\tRETU\n\
               endproc\nnative malloc\nentry main\n";
    let program = assemble(src).unwrap();
    let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
    // Second block minus first block: 8 (3 rounded up to alignment).
    assert_eq!(vm.run().unwrap().ret.u(), 8);
}

#[test]
fn telemetry_counts_dispatch_calls_and_peaks() {
    use pgr_telemetry::{names, Recorder};

    // main calls f twice; f pushes two slots before returning one.
    let src = "proc main frame=0 args=0\n\
               \tLocalCALLU 1\n\tPOPU\n\tLocalCALLU 1\n\tRETU\nendproc\n\
               proc f frame=0 args=0\n\
               \tLIT1 2\n\tLIT1 3\n\tADDU\n\tRETU\nendproc\nentry main\n";
    let program = assemble(src).unwrap();
    let recorder = Recorder::new();
    let config = VmConfig {
        recorder: recorder.clone(),
        ..VmConfig::default()
    };
    let mut vm = Vm::new(&program, config).unwrap();
    let result = vm.run().unwrap();

    let m = recorder.snapshot();
    assert_eq!(m.counter(names::VM_STEPS), result.steps);
    // main + two calls of f.
    assert_eq!(m.counter(names::VM_CALLS), 3);
    assert_eq!(m.gauge(names::VM_CALL_DEPTH_PEAK), Some(2));
    // f holds two slots (the LIT1 pair) before ADDU folds them.
    assert_eq!(m.gauge(names::VM_OPERAND_STACK_PEAK), Some(2));
    // Per-opcode dispatch: ADDU runs once per call of f.
    assert_eq!(m.counter(&names::vm_dispatch("ADDU")), 2);
    assert_eq!(m.counter(&names::vm_dispatch("LocalCALLU")), 2);
    // Plain interpreter never walks grammar rules.
    assert_eq!(m.counter(names::VM_RULES_WALKED), 0);

    // A disabled recorder leaves no trace.
    let mut quiet = Vm::new(&program, VmConfig::default()).unwrap();
    quiet.run().unwrap();
    assert!(Recorder::disabled().snapshot().is_empty());
}
