//! Differential testing of the compressed-interpreter fast path.
//!
//! The precompiled-rule-program walker (with and without its decoded-
//! segment cache) must be *byte-identical* to the reference grammar
//! walker: same `RunResult` (return value, output, exit code, **step
//! count**), same operator trace, and the same `vm.*` telemetry. These
//! proptests drive all three configurations over parameterized program
//! shapes (loops — the segment-cache hot case —, recursion, straight
//! line), over fuel exhaustion at arbitrary points, and over completely
//! arbitrary derivation streams, asserting exact agreement every time.
//!
//! One documented exception (DESIGN.md §5e): when a run dies of fuel
//! exhaustion, `vm.rules_walked`/`vm.walk_depth_peak` may undercount on
//! the fast path by the partially-replayed window, so those two keys are
//! compared only for runs that do not hit `OutOfFuel`.

use pgr_bytecode::asm::assemble;
use pgr_core::{train, TrainConfig, Trained};
use pgr_telemetry::{Metrics, Recorder};
use pgr_vm::{Vm, VmConfig, VmError};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Counting loop: `for (i = 0; i < n; i++) sum += c; return sum`. The
/// loop back-edge re-enters the same segment, so the decoded-segment
/// cache replays it `n - 1` times, including the final divergent
/// (fall-through) iteration.
fn loop_src(n: u8, c: u8) -> String {
    format!(
        "proc main frame=16 args=0\n\
         \tLIT1 0\n\tADDRLP 0\n\tASGNU\n\
         \tLIT1 0\n\tADDRLP 8\n\tASGNU\n\
         \tlabel 0\n\
         \tADDRLP 0\n\tINDIRU\n\tLIT1 {n}\n\tLTI\n\tBrTrue 1\n\
         \tJUMPV 2\n\
         \tlabel 1\n\
         \tADDRLP 8\n\tINDIRU\n\tLIT1 {c}\n\tADDU\n\tADDRLP 8\n\tASGNU\n\
         \tADDRLP 0\n\tINDIRU\n\tLIT1 1\n\tADDU\n\tADDRLP 0\n\tASGNU\n\
         \tJUMPV 0\n\
         \tlabel 2\n\
         \tADDRLP 8\n\tINDIRU\n\tRETU\n\
         endproc\nentry main\n"
    )
}

/// Recursive fib(n): procedure calls nest inside cached segments, so
/// replays interleave with callee fuel consumption.
fn fib_src(n: u8) -> String {
    format!(
        "proc main frame=0 args=0\n\
         \tLIT1 {n}\n\tARGU\n\tLocalCALLU 1\n\tRETU\n\
         endproc\n\
         proc fib frame=8 args=4\n\
         \tADDRFP 0\n\tINDIRU\n\tLIT1 2\n\tLTI\n\tBrTrue 0\n\
         \tADDRFP 0\n\tINDIRU\n\tLIT1 1\n\tSUBU\n\tARGU\n\tLocalCALLU 1\n\
         \tADDRLP 0\n\tASGNU\n\
         \tADDRFP 0\n\tINDIRU\n\tLIT1 2\n\tSUBU\n\tARGU\n\tLocalCALLU 1\n\
         \tADDRLP 0\n\tINDIRU\n\tADDU\n\tRETU\n\
         \tlabel 0\n\
         \tADDRFP 0\n\tINDIRU\n\tRETU\n\
         endproc\nentry main\n"
    )
}

/// Straight-line arithmetic over two random constants (divisor forced
/// non-zero).
fn arith_src(a: u8, b: u8) -> String {
    let d = b | 1;
    format!(
        "proc main frame=0 args=0\n\
         \tLIT1 {a}\n\tLIT1 {b}\n\tMULI\n\tLIT1 {a}\n\tADDU\n\tLIT1 {d}\n\tDIVI\n\
         \tLIT1 {b}\n\tBXORU\n\tRETU\n\
         endproc\nentry main\n"
    )
}

/// One grammar for the whole suite, trained on a representative program
/// mix; every generated variant is compressed against it (the expanded
/// grammar retains the initial rules, so everything parses).
fn trained() -> &'static Trained {
    static T: OnceLock<Trained> = OnceLock::new();
    T.get_or_init(|| {
        let srcs = [loop_src(10, 3), fib_src(8), arith_src(5, 9)];
        let programs: Vec<_> = srcs.iter().map(|s| assemble(s).unwrap()).collect();
        let refs: Vec<_> = programs.iter().collect();
        train(&refs, &TrainConfig::default()).unwrap()
    })
}

/// The `vm.*` telemetry view both paths must agree on: fast-path-only
/// families (`vm.segment_cache.*`, `vm.ruleprog.*`, `vm.tier2.*`) are
/// excluded, and the two walk gauges are excluded for fuel-exhausted
/// runs (see the module docs).
fn vm_view(m: &Metrics, exact_walk: bool) -> (BTreeMap<String, u64>, BTreeMap<String, u64>) {
    let keep = |k: &str| {
        k.starts_with("vm.")
            && !k.starts_with("vm.segment_cache.")
            && !k.starts_with("vm.ruleprog.")
            && !k.starts_with("vm.tier2.")
            && (exact_walk || (k != "vm.rules_walked" && k != "vm.walk_depth_peak"))
    };
    (
        m.counters()
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(k, &v)| (k.clone(), v))
            .collect(),
        m.gauges()
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(k, &v)| (k.clone(), v))
            .collect(),
    )
}

/// The tier ladder both matrices drive, as
/// `(reference_walker, segment_cache_entries, tier, tier_up)` rows:
/// tier 2 at the default threshold, tier 2 forced hot (`tier_up: 1`
/// compiles every segment on its first replay), tier 1 (cache without
/// tier-up), tier 0 / cache off, and the reference walker.
const CONFIGS: [(bool, usize, u8, u32); 6] = [
    (false, 1024, 2, 64),
    (false, 1024, 2, 1),
    (false, 1024, 1, 64),
    (false, 1024, 0, 64),
    (false, 0, 2, 64),
    (true, 0, 2, 64),
];

/// Compress `src` once, then run it under every tier of the fast path
/// (superinstructions, segment replay, cache disabled) and the
/// reference walker; assert byte-identical results, traces, and
/// telemetry.
fn differential(src: &str, fuel: u64) -> Result<(), TestCaseError> {
    let program = assemble(src).unwrap();
    let trained = trained();
    let (cp, _) = trained.compress(&program).unwrap();
    let ig = trained.initial();

    let mut results = Vec::new();
    for (reference_walker, segment_cache_entries, tier, tier_up) in CONFIGS {
        let recorder = Recorder::new();
        let config = VmConfig {
            fuel,
            trace_limit: 1 << 16,
            recorder: recorder.clone(),
            reference_walker,
            segment_cache_entries,
            tier,
            tier_up,
            ..VmConfig::default()
        };
        let mut vm = Vm::new_compressed(
            &cp.program,
            trained.expanded(),
            ig.nt_start,
            ig.nt_byte,
            config,
        )
        .unwrap();
        results.push((vm.run(), recorder.snapshot()));
    }

    let (r0, m0) = &results[0];
    let exact_walk = !matches!(r0, Err(VmError::OutOfFuel));
    for (r, m) in &results[1..] {
        prop_assert_eq!(r0, r);
        prop_assert_eq!(vm_view(m0, exact_walk), vm_view(m, exact_walk));
    }

    // Telemetry and tracing off selects the lean replay loop and — for
    // tiered segments — the fused tier-2 handlers (upfront fuel burn
    // with early-exit refunds); their step accounting must stay
    // byte-identical to both the instrumented runs above and the other
    // quiet configurations.
    let mut quiet = Vec::new();
    for (reference_walker, segment_cache_entries, tier, tier_up) in CONFIGS {
        let config = VmConfig {
            fuel,
            reference_walker,
            segment_cache_entries,
            tier,
            tier_up,
            ..VmConfig::default()
        };
        let mut vm = Vm::new_compressed(
            &cp.program,
            trained.expanded(),
            ig.nt_start,
            ig.nt_byte,
            config,
        )
        .unwrap();
        quiet.push(vm.run());
    }
    let key = |r: &Result<pgr_vm::RunResult, VmError>| {
        r.as_ref()
            .map(|x| (x.steps, x.ret, x.output.clone(), x.exit_code))
            .map_err(Clone::clone)
    };
    prop_assert_eq!(key(r0), key(&quiet[0]));
    for q in &quiet[1..] {
        prop_assert_eq!(&quiet[0], q);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn loops_are_path_identical(n in 0u8..32, c in 0u8..=255) {
        differential(&loop_src(n, c), 200_000_000)?;
    }

    #[test]
    fn recursion_is_path_identical(n in 0u8..11) {
        differential(&fib_src(n), 200_000_000)?;
    }

    #[test]
    fn straight_line_is_path_identical(a in 0u8..=255, b in 0u8..=255) {
        differential(&arith_src(a, b), 200_000_000)?;
    }

    #[test]
    fn fuel_exhaustion_is_path_identical(n in 1u8..16, fuel in 1u64..2_000) {
        // Dying at an arbitrary point — mid-segment, mid-replay, inside
        // a call — must stop both paths at the identical step count.
        differential(&loop_src(n, 1), fuel)?;
    }

    #[test]
    fn recursion_fuel_exhaustion_is_path_identical(fuel in 1u64..3_000) {
        differential(&fib_src(10), fuel)?;
    }

    #[test]
    fn corrupt_streams_never_panic_and_paths_agree(
        bytes in prop::collection::vec(any::<u8>(), 0..120),
    ) {
        // Arbitrary byte streams as the compressed code of the entry
        // procedure: both paths must terminate within the fuel limit
        // with the *same* outcome — a clean `VmError` with identical
        // offset and detail, or (for the rare stream that happens to be
        // a valid derivation reaching a return) the same clean result.
        let trained = trained();
        let ig = trained.initial();
        let mut program = pgr_bytecode::Program::new();
        let mut proc = pgr_bytecode::Procedure::new("fuzz");
        proc.code = bytes;
        proc.frame_size = 64;
        program.procs.push(proc);

        let mut outcomes = Vec::new();
        // `tier_up: 1` compiles every replayed segment immediately, so
        // corrupt streams that loop exercise the fused side exits too.
        for (reference_walker, tier_up) in [(false, 64), (false, 1), (true, 64)] {
            let config = VmConfig {
                fuel: 50_000,
                reference_walker,
                tier_up,
                ..VmConfig::default()
            };
            let mut vm = Vm::new_compressed(
                &program,
                trained.expanded(),
                ig.nt_start,
                ig.nt_byte,
                config,
            )
            .unwrap();
            outcomes.push(vm.run());
        }
        for o in &outcomes[1..] {
            prop_assert_eq!(&outcomes[0], o);
        }
        if let Ok(r) = &outcomes[0] {
            prop_assert!(r.steps <= 50_000);
        }
    }
}
