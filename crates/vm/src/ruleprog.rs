//! Precompiled rule programs: the compressed-interpreter fast path.
//!
//! The reference `interp_nt` walks [`Grammar`] rule objects symbol by
//! symbol: every dispatch chases a `Vec<Rule>` pointer, decodes an
//! 8-byte [`Symbol`](pgr_grammar::Symbol) enum, and re-runs the operand
//! `GET` split of §5 (which operand bytes are burnt into the rule,
//! which come from the stream). None of that depends on the executing
//! program — it is all a function of the grammar — so a [`RuleProgram`]
//! snapshot, taken once at `Vm::new_compressed` time, precompiles every
//! rule's right-hand side into dense flat **micro-ops**:
//!
//! * **Exec** — an operator: opcode byte, the pre-assembled burnt-in
//!   operand template, and a 4-bit mask of which operand slots read the
//!   stream instead (`<byte>` expansions).
//! * **Child** — descend into a non-terminal: the next stream byte
//!   selects one of its rules from a flattened per-NT table.
//! * **Corrupt** — the spot where the reference walker would fault
//!   (a literal byte not owned by an opcode, or an operand layout
//!   violation). Compiled *lazily in place* so execution that branches
//!   away before reaching the bad symbol behaves identically.
//!
//! Each micro-op packs into one `u64`; a rule is a contiguous slice of
//! them, so the walk loop in `machine.rs` touches two `u32` bounds
//! arrays and one `u64` array instead of pattern-matching symbol enums.
//! The snapshot is built from the same [`RuleTable`] packed-symbol
//! tables the Earley parser uses.
//!
//! This module also defines the decoded-**segment-cache** entry types
//! ([`SegTrace`]/[`SegStep`]): the first walk of a label-delimited
//! segment records its flat (opcode, resolved-operand) trace together
//! with per-step fuel/telemetry windows, and later entries at the same
//! `pc` (loop back-edges — the hot case) replay the trace without
//! walking the derivation at all. See `machine.rs` for the replay loop
//! and DESIGN.md §5e for the equivalence contract.

use pgr_bytecode::Opcode;
use pgr_grammar::{Grammar, Nt, RuleTable, Terminal};

/// Micro-op kind: execute an operator.
pub const KIND_EXEC: u64 = 0;
/// Micro-op kind: descend into a child non-terminal.
pub const KIND_CHILD: u64 = 1;
/// Micro-op kind: fault like the reference walker would at this symbol.
pub const KIND_CORRUPT: u64 = 2;

/// Corrupt-derivation details a rule can compile to, indexed by
/// [`detail_index`]. The strings match the reference walker exactly.
pub const CORRUPT_DETAILS: [&str; 2] = [
    "literal byte not owned by an opcode",
    "operand layout violated",
];

// Micro-op u64 layout:
//   bits  0..32  operand template (little-endian [u8; 4])
//   bits 32..40  opcode byte (Exec) or CORRUPT_DETAILS index (Corrupt)
//   bits 40..44  stream-operand mask: bit i = operand byte i comes from
//                the stream (also used by Corrupt for the slots consumed
//                before the violation)
//   bits 44..46  kind
//   bits 46..62  child non-terminal index (Child)

/// The kind of a packed micro-op.
#[inline]
pub fn kind(w: u64) -> u64 {
    (w >> 44) & 0b11
}

/// The burnt-in operand template of an Exec micro-op.
#[inline]
pub fn template(w: u64) -> [u8; 4] {
    (w as u32).to_le_bytes()
}

/// The opcode byte of an Exec micro-op.
#[inline]
pub fn opcode_byte(w: u64) -> u8 {
    (w >> 32) as u8
}

/// The [`CORRUPT_DETAILS`] index of a Corrupt micro-op.
#[inline]
pub fn detail_index(w: u64) -> usize {
    ((w >> 32) & 0xff) as usize
}

/// The stream-operand mask of an Exec or Corrupt micro-op.
#[inline]
pub fn stream_mask(w: u64) -> u32 {
    ((w >> 40) & 0xf) as u32
}

/// The child non-terminal index of a Child micro-op.
#[inline]
pub fn child_nt(w: u64) -> u16 {
    (w >> 46) as u16
}

fn pack_exec(op: u8, mask: u32, tpl: [u8; 4]) -> u64 {
    u64::from(u32::from_le_bytes(tpl))
        | (u64::from(op) << 32)
        | (u64::from(mask) << 40)
        | (KIND_EXEC << 44)
}

fn pack_child(nt: u16) -> u64 {
    (KIND_CHILD << 44) | (u64::from(nt) << 46)
}

fn pack_corrupt(detail: u64, mask: u32) -> u64 {
    (detail << 32) | (u64::from(mask) << 40) | (KIND_CORRUPT << 44)
}

/// A grammar compiled to flat micro-op programs, one per rule, plus the
/// flattened per-non-terminal rule-selection tables. Immutable once
/// built; shared by every `interp_nt` activation of a run.
#[derive(Debug)]
pub struct RuleProgram {
    /// All rules' micro-ops, concatenated.
    ops: Vec<u64>,
    /// `ops[rule_bounds[r] .. rule_bounds[r + 1]]` is rule slot `r`'s
    /// program (empty for tombstones).
    rule_bounds: Vec<u32>,
    /// `nt_rules[nt_bounds[nt] .. nt_bounds[nt + 1]]` are the live rule
    /// slots of `nt`, in encoding-index order: the stream byte indexes
    /// this range directly.
    nt_bounds: Vec<u32>,
    nt_rules: Vec<u32>,
    start: u16,
}

impl RuleProgram {
    /// Compile `grammar` (with the given start and `<byte>`
    /// non-terminals) into micro-op programs.
    pub fn build(grammar: &Grammar, start: Nt, byte_nt: Nt) -> RuleProgram {
        let table = RuleTable::build(grammar);
        let slots = table.rule_slots();
        let mut ops = Vec::new();
        let mut rule_bounds = Vec::with_capacity(slots + 1);
        rule_bounds.push(0);
        for r in 0..slots {
            compile_rule(&table, pgr_grammar::RuleId(r as u32), byte_nt, &mut ops);
            rule_bounds.push(ops.len() as u32);
        }
        let mut nt_bounds = Vec::with_capacity(table.nt_count() + 1);
        let mut nt_rules = Vec::new();
        nt_bounds.push(0);
        for nt in 0..table.nt_count() {
            nt_rules.extend(table.rules_of(Nt(nt as u16)).iter().map(|r| r.0));
            nt_bounds.push(nt_rules.len() as u32);
        }
        RuleProgram {
            ops,
            rule_bounds,
            nt_bounds,
            nt_rules,
            start: start.0,
        }
    }

    /// The start non-terminal's index.
    #[inline]
    pub fn start_nt(&self) -> u16 {
        self.start
    }

    /// The micro-op at `ip`.
    #[inline]
    pub fn op(&self, ip: u32) -> u64 {
        self.ops[ip as usize]
    }

    /// Half-open micro-op range of rule slot `slot`.
    #[inline]
    pub fn rule_range(&self, slot: u32) -> (u32, u32) {
        (
            self.rule_bounds[slot as usize],
            self.rule_bounds[slot as usize + 1],
        )
    }

    /// Select a rule of `nt` by stream byte (the rule's encoding index),
    /// or `None` when the byte is out of range.
    #[inline]
    pub fn select(&self, nt: u16, byte: u8) -> Option<u32> {
        let lo = self.nt_bounds[usize::from(nt)] as usize;
        let hi = self.nt_bounds[usize::from(nt) + 1] as usize;
        let i = lo + usize::from(byte);
        (i < hi).then(|| self.nt_rules[i])
    }

    /// Total micro-ops compiled (the `vm.ruleprog.micro_ops` gauge).
    pub fn micro_ops(&self) -> usize {
        self.ops.len()
    }

    /// Approximate resident size in bytes (the `vm.ruleprog.bytes`
    /// gauge).
    pub fn table_bytes(&self) -> usize {
        self.ops.len() * size_of::<u64>()
            + self.rule_bounds.len() * size_of::<u32>()
            + self.nt_bounds.len() * size_of::<u32>()
            + self.nt_rules.len() * size_of::<u32>()
    }
}

/// Compile one rule's right-hand side into micro-ops, mirroring the
/// reference walker's semantics symbol by symbol: non-terminals become
/// Child ops, operators fold their operand layout into one Exec op, and
/// any symbol the reference would fault on becomes a Corrupt op that
/// ends the program (everything past it is unreachable).
fn compile_rule(table: &RuleTable, rule: pgr_grammar::RuleId, byte_nt: Nt, ops: &mut Vec<u64>) {
    let rhs = table.rhs(rule);
    let mut i = 0;
    while i < rhs.len() {
        let sym = rhs[i];
        if let Some(nt) = sym.nt() {
            ops.push(pack_child(nt.0));
            i += 1;
            continue;
        }
        let idx = sym.terminal_index().expect("terminal") as usize;
        let op = match Terminal::from_index(idx) {
            Terminal::Op(op) => op,
            Terminal::Byte(_) => {
                // The reference faults on a literal byte that no opcode
                // owns as an operand.
                ops.push(pack_corrupt(0, 0));
                return;
            }
        };
        let n = op.operand_bytes();
        let mut tpl = [0u8; 4];
        let mut mask = 0u32;
        for (slot, t) in tpl.iter_mut().enumerate().take(n) {
            match rhs.get(i + 1 + slot).map(|s| s.unpack()) {
                Some(pgr_grammar::Symbol::T(Terminal::Byte(b))) => *t = b,
                Some(pgr_grammar::Symbol::N(nt)) if nt == byte_nt => mask |= 1 << slot,
                // Operand layout violated: the reference consumes the
                // stream bytes of the slots before this one, then
                // faults — Corrupt carries that partial mask.
                _ => {
                    ops.push(pack_corrupt(1, mask));
                    return;
                }
            }
        }
        ops.push(pack_exec(op as u8, mask, tpl));
        i += 1 + n;
    }
}

/// One replayable instruction of a cached decoded segment: the resolved
/// operator plus the telemetry window covering every derivation-walk
/// iteration since the previous instruction (rule selections, frame
/// pops, and this instruction's own dispatch).
#[derive(Debug, Clone, Copy)]
pub struct SegStep {
    /// The operator.
    pub op: Opcode,
    /// Fully resolved operand bytes (stream operands are a pure function
    /// of the segment's `pc`, so they resolve at record time).
    pub operands: [u8; 4],
    /// Fuel the reference walk burns for this window.
    pub pre_fuel: u32,
    /// Rules the reference walk selects in this window.
    pub pre_rules: u32,
    /// Walk-depth high-water mark inside this window.
    pub pre_depth: u32,
}

/// A fully decoded segment: the instruction trace from the segment's
/// first stream byte to the point where the walk stack drains, plus the
/// trailing bookkeeping window and the `pc` the walk falls through to.
#[derive(Debug)]
pub struct SegTrace {
    /// The instructions, in execution order.
    pub steps: Box<[SegStep]>,
    /// Fuel burnt after the last instruction (trailing frame pops).
    pub tail_fuel: u32,
    /// Rules selected after the last instruction.
    pub tail_rules: u32,
    /// Walk-depth high-water mark after the last instruction.
    pub tail_depth: u32,
    /// Stream offset of the next segment when the walk falls through.
    pub end_pc: u32,
    /// Total fuel of a fall-through replay (`Σ pre_fuel + tail_fuel`);
    /// replay is skipped when less fuel than this remains, so batched
    /// burns can never overshoot the budget.
    pub total_fuel: u64,
    /// Whether any step is a call operator. A call burns callee fuel
    /// mid-segment, so only call-free traces may burn their whole fuel
    /// window up front (the lean replay path).
    pub has_calls: bool,
}

impl SegTrace {
    /// Approximate resident size in bytes (the `vm.segment_cache.bytes`
    /// gauge).
    pub fn bytes(&self) -> usize {
        size_of::<SegTrace>() + self.steps.len() * size_of::<SegStep>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgr_grammar::InitialGrammar;

    #[test]
    fn micro_op_fields_roundtrip() {
        let w = pack_exec(Opcode::LIT4 as u8, 0b1010, [1, 0, 3, 0]);
        assert_eq!(kind(w), KIND_EXEC);
        assert_eq!(opcode_byte(w), Opcode::LIT4 as u8);
        assert_eq!(stream_mask(w), 0b1010);
        assert_eq!(template(w), [1, 0, 3, 0]);

        let c = pack_child(u16::MAX);
        assert_eq!(kind(c), KIND_CHILD);
        assert_eq!(child_nt(c), u16::MAX);

        let k = pack_corrupt(1, 0b11);
        assert_eq!(kind(k), KIND_CORRUPT);
        assert_eq!(detail_index(k), 1);
        assert_eq!(stream_mask(k), 0b11);
        assert_eq!(CORRUPT_DETAILS[detail_index(k)], "operand layout violated");
    }

    #[test]
    fn initial_grammar_compiles_cleanly() {
        let ig = InitialGrammar::build();
        let rp = RuleProgram::build(&ig.grammar, ig.nt_start, ig.nt_byte);
        assert!(rp.micro_ops() > 0);
        assert!(rp.table_bytes() > 0);
        assert_eq!(rp.start_nt(), ig.nt_start.0);
        // Every rule except the 256 standalone `<byte>` literals is
        // well-formed; a `<byte>` rule walked as a child faults in the
        // reference too, so it compiles to exactly one Corrupt op.
        for r in 0..ig.grammar.rule_slots() {
            let id = pgr_grammar::RuleId(r as u32);
            let (lo, hi) = rp.rule_range(id.0);
            if ig.grammar.rule(id).lhs == ig.nt_byte {
                assert_eq!(hi - lo, 1);
                assert_eq!(kind(rp.op(lo)), KIND_CORRUPT, "byte rule {r}");
                assert_eq!(
                    CORRUPT_DETAILS[detail_index(rp.op(lo))],
                    "literal byte not owned by an opcode"
                );
                continue;
            }
            for ip in lo..hi {
                assert_ne!(kind(rp.op(ip)), KIND_CORRUPT, "rule {r} miscompiled");
            }
        }
        // Selection mirrors the grammar's encoding-index order.
        for nt in 0..ig.grammar.nt_count() {
            let nt = pgr_grammar::Nt(nt as u16);
            let rules = ig.grammar.rules_of(nt);
            for (i, &r) in rules.iter().enumerate() {
                assert_eq!(rp.select(nt.0, i as u8), Some(r.0));
            }
            // A byte past the live range selects nothing (except for
            // `<byte>`, whose 256 rules fill the whole index space).
            if rules.len() < 256 {
                assert_eq!(rp.select(nt.0, rules.len() as u8), None);
            }
        }
    }

    #[test]
    fn operator_operands_fold_into_one_exec_op() {
        // In the initial grammar every operator rule is
        // `<op> ::= OP <byte>^n`, so each compiles to exactly one Exec
        // micro-op with all operand slots stream-sourced.
        let ig = InitialGrammar::build();
        let rp = RuleProgram::build(&ig.grammar, ig.nt_start, ig.nt_byte);
        let rule = ig.rule_for_opcode(Opcode::LIT4);
        let (lo, hi) = rp.rule_range(rule.0);
        assert_eq!(hi - lo, 1);
        let w = rp.op(lo);
        assert_eq!(kind(w), KIND_EXEC);
        assert_eq!(opcode_byte(w), Opcode::LIT4 as u8);
        assert_eq!(stream_mask(w), 0b1111);
        assert_eq!(template(w), [0, 0, 0, 0]);
    }
}
