//! Tier-2 execution state: compiled superinstruction programs and the
//! bounded cache that owns them.
//!
//! The execution tiers of a compressed program, lowest to highest:
//!
//! * **tier 0** — the derivation walk itself (`interp_nt` /
//!   `interp_nt_fast` with the segment cache disabled);
//! * **tier 1** — the decoded-segment cache of PR 4: the first walk of
//!   a label-delimited segment records its resolved instruction trace,
//!   and later entries at the same `pc` replay it;
//! * **tier 2** — this module: when a cached segment's replay count
//!   crosses [`TieredCache::threshold`], its trace is fused (by
//!   [`pgr_native::fuse`]) into a [`Tier2Program`] of superinstructions
//!   executed by `Vm::run_tier2` in `machine.rs`.
//!
//! A [`Tier2Program`] carries the fuel prefix sums of its source trace,
//! so the fused loop burns the whole segment's fuel in one subtraction
//! and maps any side exit (taken branch, return, fault) back to the
//! exact source-step boundary the tier-1 replay would have charged —
//! the equivalence contract of DESIGN.md §5j. Segments whose traces
//! contain calls never tier up (callee fuel is data-dependent, so their
//! windows cannot burn up front), and negative cache entries (segments
//! whose decode faults) never replay at all, so they never get hot.
//!
//! Compiled programs are embedded in the owning segment-cache entries
//! ([`SegEntry`]) so a steady-state tiered replay costs exactly one map
//! lookup; [`TieredCache`] is the policy and ledger that bounds them.
//! The bound matters: serving hosts run many grammars through
//! long-lived engines, and an unbounded population of compiled programs
//! is exactly the leak the engine LRU of PR 8 fixed one layer up.
//! Eviction drops the compiled program only — the tier-1 trace stays
//! cached, and a segment that stays hot simply recompiles.

use pgr_native::fuse::{self, SuperOp};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use crate::ruleprog::SegTrace;
use pgr_bytecode::Procedure;

/// Multiplicative hasher for segment keys (`proc_idx << 32 | pc`).
/// These maps sit on the per-replay hot path and their keys are
/// VM-internal, so SipHash's flood resistance buys nothing — Fibonacci
/// hashing mixes the low pc bits well and costs one multiply.
#[derive(Debug, Default, Clone, Copy)]
pub struct SegKeyHasher(u64);

impl Hasher for SegKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("segment keys hash through write_u64");
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_right(17);
    }
}

/// A `HashMap` keyed by segment key, using [`SegKeyHasher`].
pub type SegKeyMap<V> = HashMap<u64, V, BuildHasherDefault<SegKeyHasher>>;

/// One positive segment-cache entry: the tier-1 decoded trace plus the
/// tier-2 state that rides along with it, so the replay hot path
/// decides the whole tier ladder under a single map lookup.
#[derive(Debug)]
pub struct SegEntry {
    /// The decoded tier-1 trace.
    pub trace: Arc<SegTrace>,
    /// The compiled superinstruction program, once the segment is hot.
    pub tier2: Option<Arc<Tier2Program>>,
    /// Replays since caching (or since the last compile); reaching
    /// [`TieredCache::threshold`] tiers the segment up.
    pub heat: u32,
    /// Hit-clock value of the most recent replay; tier-up eviction
    /// picks the minimum-tick program as its victim.
    pub tick: u64,
}

impl SegEntry {
    /// A fresh entry for a just-recorded trace: cold, untiered.
    pub fn new(trace: Arc<SegTrace>) -> SegEntry {
        SegEntry {
            trace,
            tier2: None,
            heat: 0,
            tick: 0,
        }
    }
}

/// A hot segment compiled to superinstructions, plus the accounting
/// tables that keep fused execution byte-identical to tier-1 replay.
#[derive(Debug)]
pub struct Tier2Program {
    /// The superinstructions, in execution order.
    pub(crate) ops: Box<[SuperOp]>,
    /// `prefix[i]` = fuel the tier-1 replay has consumed through source
    /// step `i` inclusive (`Σ pre_fuel[0..=i]`). A side exit or fault at
    /// source step `i` refunds `total_fuel - prefix[i]`.
    pub(crate) prefix: Box<[u64]>,
    /// Total fuel of a fall-through replay (the source trace's).
    pub(crate) total_fuel: u64,
    /// Stream offset of the next segment on fall-through.
    pub(crate) end_pc: u32,
}

impl Tier2Program {
    /// Approximate resident size in bytes (the `vm.tier2.bytes` gauge).
    pub fn bytes(&self) -> usize {
        size_of::<Tier2Program>()
            + self.ops.len() * size_of::<SuperOp>()
            + self.prefix.len() * size_of::<u64>()
    }

    /// Number of superinstructions.
    pub fn fused_ops(&self) -> usize {
        self.ops.len()
    }
}

/// Fuse a cached segment trace into a [`Tier2Program`], resolving
/// branch labels through `proc`'s label table and global indices
/// through the load-time `globals` table. Runs inline at tier-up: one
/// linear pass over the already-resolved steps.
pub fn compile(trace: &SegTrace, proc: &Procedure, globals: &[u32]) -> Tier2Program {
    let steps: Vec<_> = trace.steps.iter().map(|s| (s.op, s.operands)).collect();
    let ops = fuse::fuse_steps(
        &steps,
        |label| proc.labels.get(usize::from(label)).copied(),
        |idx| globals.get(usize::from(idx)).copied(),
    );
    let mut prefix = Vec::with_capacity(trace.steps.len());
    let mut consumed = 0u64;
    for s in trace.steps.iter() {
        consumed += u64::from(s.pre_fuel);
        prefix.push(consumed);
    }
    Tier2Program {
        ops: ops.into_boxed_slice(),
        prefix: prefix.into_boxed_slice(),
        total_fuel: trace.total_fuel,
        end_pc: trace.end_pc,
    }
}

/// A snapshot of tier-2 activity, for telemetry and the serve stats
/// window ([`crate::Vm::tier2_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tier2Stats {
    /// Segments compiled to superinstruction programs.
    pub compiled: u64,
    /// Compiled programs dropped by LRU eviction.
    pub evicted: u64,
    /// Superinstructions across all compilations.
    pub fused_ops: u64,
    /// Resident bytes of compiled programs.
    pub bytes: u64,
    /// Replays served from a tiered segment (fused or deoptimized).
    pub hits: u64,
    /// Tiered replays that fell back to tier-1 per-step replay
    /// (telemetry or tracing active — both need per-step bookkeeping).
    pub deopts: u64,
    /// Compiled programs currently resident.
    pub resident: u64,
}

/// The tier-2 policy and ledger: how hot a segment must get before it
/// compiles, how many compiled programs may be resident, and the
/// counters behind the `vm.tier2.*` metrics. The programs themselves
/// live in their segment-cache entries ([`SegEntry::tier2`]); this
/// struct enforces the bound at the rare compile moments — when
/// admission would exceed [`TieredCache::cap`], the VM evicts the least
/// recently replayed program (minimum [`SegEntry::tick`]) and reports
/// it here so the byte and residency ledgers stay exact.
#[derive(Debug)]
pub struct TieredCache {
    cap: usize,
    /// Replay count at which a segment compiles.
    threshold: u32,
    pub(crate) stats: Tier2Stats,
}

impl TieredCache {
    /// A ledger admitting at most `cap` compiled programs, tiering a
    /// segment up after `threshold` replays (both clamped to min 1).
    pub fn new(cap: usize, threshold: u32) -> TieredCache {
        TieredCache {
            cap: cap.max(1),
            threshold: threshold.max(1),
            stats: Tier2Stats::default(),
        }
    }

    /// Replay count at which a segment compiles.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Maximum resident compiled programs.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Compiled programs currently resident.
    pub fn resident(&self) -> u64 {
        self.stats.resident
    }

    /// Count one replay served from a tiered segment (fused or
    /// deoptimized).
    pub fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Count one deoptimized replay (a tiered segment serviced by the
    /// per-step tier-1 loop because telemetry or tracing is active).
    pub fn note_deopt(&mut self) {
        self.stats.deopts += 1;
    }

    /// Admit a freshly compiled program to the ledger. The caller must
    /// first bring residency under [`TieredCache::cap`] via
    /// [`TieredCache::note_evicted`].
    pub fn note_compiled(&mut self, prog: &Tier2Program) {
        self.stats.compiled += 1;
        self.stats.fused_ops += prog.fused_ops() as u64;
        self.stats.bytes += prog.bytes() as u64;
        self.stats.resident += 1;
    }

    /// Release an evicted program from the ledger.
    pub fn note_evicted(&mut self, prog: &Tier2Program) {
        self.stats.bytes -= prog.bytes() as u64;
        self.stats.evicted += 1;
        self.stats.resident -= 1;
    }

    /// Current stats snapshot.
    pub fn stats(&self) -> Tier2Stats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ruleprog::{SegStep, SegTrace};
    use pgr_bytecode::Opcode;

    fn trace_of(n: usize) -> SegTrace {
        let steps: Vec<SegStep> = (0..n)
            .map(|i| SegStep {
                op: Opcode::LIT1,
                operands: [i as u8, 0, 0, 0],
                pre_fuel: 1,
                pre_rules: 0,
                pre_depth: 1,
            })
            .collect();
        SegTrace {
            steps: steps.into_boxed_slice(),
            tail_fuel: 1,
            tail_rules: 0,
            tail_depth: 0,
            end_pc: 9,
            total_fuel: n as u64 + 1,
            has_calls: false,
        }
    }

    #[test]
    fn prefix_sums_anchor_each_step() {
        let proc = Procedure::new("t");
        let prog = compile(&trace_of(4), &proc, &[]);
        assert_eq!(&*prog.prefix, &[1, 2, 3, 4]);
        assert_eq!(prog.total_fuel, 5);
        assert_eq!(prog.end_pc, 9);
    }

    #[test]
    fn cap_and_threshold_clamp_to_one() {
        let cache = TieredCache::new(0, 0);
        assert_eq!(cache.cap(), 1);
        assert_eq!(cache.threshold(), 1);
    }

    #[test]
    fn ledger_tracks_compiles_and_evictions() {
        let proc = Procedure::new("t");
        let mut cache = TieredCache::new(2, 1);
        let a = compile(&trace_of(4), &proc, &[]);
        let b = compile(&trace_of(8), &proc, &[]);
        cache.note_compiled(&a);
        cache.note_compiled(&b);
        let s = cache.stats();
        assert_eq!(s.compiled, 2);
        assert_eq!(s.resident, 2);
        assert_eq!(s.bytes, (a.bytes() + b.bytes()) as u64);
        assert!(s.fused_ops >= 2);
        cache.note_evicted(&a);
        let s = cache.stats();
        assert_eq!(s.evicted, 1);
        assert_eq!(s.resident, 1);
        assert_eq!(s.bytes, b.bytes() as u64, "evicted bytes not released");
    }
}
