//! The machine model and the two interpreter loops.
//!
//! A [`Vm`] loads one program image — uncompressed bytecode or compressed
//! derivations plus the expanded grammar — resolves its global table
//! (playing the linker of §3), and runs it. Procedure calls allocate
//! frames on a stack region of the flat memory; arguments travel in a
//! contiguous block, "an x86 calling convention that passes all arguments
//! in contiguous memory" (Appendix 3). Indirect calls dispatch on
//! synthetic address ranges: trampoline addresses reach bytecoded
//! procedures, native addresses reach library routines — "the indirect
//! call may call conventional code (a library routine) or bytecode and
//! uses the same calling mechanism for both" (§3).

use crate::error::VmError;
use crate::exec::Flow;
use crate::memory::Memory;
use crate::natives::{self, Native, NativeOutcome};
use crate::ruleprog::{self, RuleProgram, SegStep, SegTrace};
use crate::tier::{self, Tier2Program, Tier2Stats, TieredCache};
use crate::value::Slot;
use pgr_bytecode::{escape, GlobalEntry, Opcode, Procedure, Program};
use pgr_grammar::{Grammar, Nt, Symbol, Terminal};
use pgr_native::fuse::Fused;
use pgr_telemetry::{names, trace, CancelToken, Metrics, Recorder};
use std::collections::VecDeque;
use std::sync::Arc;

/// First mapped data address (0 stays unmapped so null faults).
pub const DATA_BASE: u32 = 64;
/// Synthetic address of procedure 0's trampoline.
pub const TRAMP_BASE: u32 = 0xE000_0000;
/// Synthetic address of native routine 0.
pub const NATIVE_BASE: u32 = 0xF000_0000;

fn align8(v: u32) -> u32 {
    (v + 7) & !7
}

/// VM configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Bytes of bump-allocated heap for `malloc`.
    pub heap_size: u32,
    /// Bytes of frame stack.
    pub stack_size: u32,
    /// Instruction budget (an instruction here is one executed operator
    /// or derivation step).
    pub fuel: u64,
    /// Maximum procedure-call depth.
    pub max_call_depth: usize,
    /// Host stack bytes for the interpreter thread. The interpreters
    /// recurse on the host stack for procedure calls (like the paper's C
    /// interpreters), so deep VM recursion needs host head-room,
    /// especially in debug builds.
    pub host_stack_bytes: usize,
    /// Bytes served to `getchar`.
    pub input: Vec<u8>,
    /// Record the first N executed operators (0 = off). The trace lands
    /// in [`RunResult::trace`]; tracing is identical for both
    /// interpreters, which makes diverging runs easy to diff.
    pub trace_limit: usize,
    /// Telemetry destination for `vm.*` counters (per-opcode dispatch,
    /// calls, rule walks) and depth gauges. Defaults to the shared
    /// disabled recorder; the interpreter loops check one cached flag
    /// and touch nothing else when disabled.
    pub recorder: Recorder,
    /// Run compressed programs with the reference grammar walker instead
    /// of the precompiled [`RuleProgram`] fast path. The two are
    /// behaviourally identical (same `RunResult`, trace, and `vm.*`
    /// telemetry — pinned by a differential proptest); the reference
    /// walker exists as the executable specification and for
    /// bisection.
    pub reference_walker: bool,
    /// Decoded-segment cache capacity in entries (0 disables). The fast
    /// path memoizes each label-delimited segment's decoded instruction
    /// trace by stream offset, so loop back-edges replay instructions
    /// without re-walking derivations.
    pub segment_cache_entries: usize,
    /// Highest execution tier for compressed programs: 0 = derivation
    /// walk only (segment cache off), 1 = decoded-segment replay,
    /// 2 = profile-guided superinstruction compilation of hot segments
    /// (the default).
    pub tier: u8,
    /// Replay count at which a cached segment compiles to tier 2.
    pub tier_up: u32,
    /// Tier-2 program cache capacity in entries (LRU-evicted).
    pub tier2_cache_entries: usize,
    /// Cooperative-cancellation handle for this run. Polled at fuel-batch
    /// boundaries (tier-1/2 replay windows) and on a coarse step stride
    /// in the per-step loops; fires as [`VmError::Cancelled`]. Defaults
    /// to [`CancelToken::never`], which costs one relaxed load per poll.
    pub cancel: CancelToken,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            heap_size: 1 << 20,
            stack_size: 1 << 20,
            fuel: 200_000_000,
            max_call_depth: 200,
            host_stack_bytes: 32 << 20,
            input: Vec::new(),
            trace_limit: 0,
            recorder: Recorder::disabled(),
            reference_walker: false,
            segment_cache_entries: 1024,
            tier: 2,
            tier_up: 64,
            tier2_cache_entries: 256,
            cancel: CancelToken::never(),
        }
    }
}

/// One executed operator, as recorded by [`VmConfig::trace_limit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Descriptor index of the procedure executing.
    pub proc: u32,
    /// The operator.
    pub op: Opcode,
    /// Its literal operand (0 for operand-less operators).
    pub operand: u32,
    /// Call depth at execution time.
    pub depth: u32,
}

/// The outcome of a completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Exit code if the program called `exit`/`abort`, else `None`.
    pub exit_code: Option<i32>,
    /// The entry procedure's return value (zero when `exit` was called).
    pub ret: Slot,
    /// Everything the program printed.
    pub output: Vec<u8>,
    /// Executed operator/derivation steps.
    pub steps: u64,
    /// The first [`VmConfig::trace_limit`] executed operators.
    pub trace: Vec<TraceEvent>,
}

/// Internal control signal: either a hard error or an `exit()` request
/// unwinding to `run`.
#[derive(Debug)]
pub(crate) enum Stop {
    Error(VmError),
    Exit(i32),
}

impl From<VmError> for Stop {
    fn from(e: VmError) -> Stop {
        Stop::Error(e)
    }
}

/// Which representation the VM executes.
enum Repr<'p> {
    /// Uncompressed bytecode, run by `interp1`.
    Plain,
    /// Compressed derivations, run by `interp_nt`.
    Compressed {
        grammar: &'p Grammar,
        start: Nt,
        byte_nt: Nt,
    },
}

/// Frame context for the executing procedure.
pub(crate) struct FrameCtx {
    pub(crate) proc_idx: usize,
    pub(crate) args_base: u32,
    pub(crate) locals_base: u32,
}

/// A loaded program plus its execution state.
pub struct Vm<'p> {
    program: &'p Program,
    repr: Repr<'p>,
    pub(crate) mem: Memory,
    /// Resolved address per global-table entry.
    globals: Vec<u32>,
    pub(crate) output: Vec<u8>,
    pub(crate) input: VecDeque<u8>,
    pub(crate) rng_state: u64,
    pub(crate) arg_buf: Vec<u8>,
    heap_next: u32,
    heap_end: u32,
    stack_next: u32,
    stack_end: u32,
    fuel: u64,
    steps: u64,
    depth: usize,
    max_depth: usize,
    host_stack_bytes: usize,
    trace: Vec<TraceEvent>,
    trace_limit: usize,
    recorder: Recorder,
    /// Cached `recorder.is_enabled()`; hoisted at build time so the
    /// interpreter loops pay one branch, never an atomic load.
    telemetry_on: bool,
    /// Per-opcode dispatch counts indexed by opcode byte (256 entries
    /// when telemetry is on, empty otherwise).
    dispatch: Vec<u64>,
    calls: u64,
    rules_walked: u64,
    call_depth_peak: usize,
    walk_depth_peak: usize,
    operand_stack_peak: usize,
    /// The compiled rule programs, when the compressed fast path is
    /// active (compressed repr and `reference_walker` off).
    ruleprog: Option<Arc<RuleProgram>>,
    /// Decoded-segment cache: `(proc, pc)` → replayable trace plus its
    /// tier-2 state ([`tier::SegEntry`]), or `None` for segments proven
    /// uncacheable (their decode faults). Traces and compiled programs
    /// are `Arc`s so replay can iterate them while `exec_op` borrows
    /// the VM mutably.
    seg_cache: tier::SegKeyMap<Option<tier::SegEntry>>,
    seg_cache_cap: usize,
    seg_cache_bytes: usize,
    seg_hits: u64,
    seg_misses: u64,
    /// Tier-2 state: hot-segment replay counters and compiled
    /// superinstruction programs. `None` below tier 2 (and for plain or
    /// reference-walker execution).
    tier2: Option<TieredCache>,
    /// Whether a stream byte equal to [`escape::VERBATIM_MARKER`] can
    /// only mean a verbatim escape: true when the grammar's start
    /// non-terminal has at most 255 rules (the compressor reserves the
    /// 256th slot), so the marker never collides with a rule index.
    verbatim_ok: bool,
    /// Verbatim escapes executed, for `vm.verbatim.segments`.
    verbatim_segments: u64,
    /// The run's cooperative-cancellation handle.
    cancel: CancelToken,
}

impl<'p> Vm<'p> {
    /// Load an uncompressed program.
    ///
    /// # Errors
    ///
    /// Fails with [`VmError::UnknownNative`] if the global table names a
    /// routine the VM does not provide.
    pub fn new(program: &'p Program, config: VmConfig) -> Result<Vm<'p>, VmError> {
        Vm::build(program, Repr::Plain, config)
    }

    /// Load a compressed program (the `program` field of a
    /// `CompressedProgram`) together with the expanded grammar it was
    /// encoded against. `start` and `byte_nt` are the grammar's start and
    /// `<byte>` non-terminals (`InitialGrammar::nt_start`/`nt_byte`).
    ///
    /// # Errors
    ///
    /// Same as [`Vm::new`].
    pub fn new_compressed(
        program: &'p Program,
        grammar: &'p Grammar,
        start: Nt,
        byte_nt: Nt,
        config: VmConfig,
    ) -> Result<Vm<'p>, VmError> {
        Vm::build(
            program,
            Repr::Compressed {
                grammar,
                start,
                byte_nt,
            },
            config,
        )
    }

    fn build(program: &'p Program, repr: Repr<'p>, config: VmConfig) -> Result<Vm<'p>, VmError> {
        let ruleprog = match &repr {
            Repr::Compressed {
                grammar,
                start,
                byte_nt,
            } if !config.reference_walker => {
                Some(Arc::new(RuleProgram::build(grammar, *start, *byte_nt)))
            }
            _ => None,
        };
        let verbatim_ok = match &repr {
            Repr::Compressed { grammar, start, .. } => {
                grammar.rules_of(*start).len() <= usize::from(escape::VERBATIM_MARKER)
            }
            Repr::Plain => false,
        };
        let data_end = DATA_BASE + program.data.len() as u32;
        let bss_base = align8(data_end);
        let bss_end = bss_base + program.bss_size;
        let heap_base = align8(bss_end);
        let heap_end = heap_base + config.heap_size;
        let stack_base = align8(heap_end);
        let stack_end = stack_base + config.stack_size;

        let mut mem = Memory::new(stack_end);
        if !program.data.is_empty() {
            mem.store_bytes(DATA_BASE, &program.data)?;
        }

        let mut globals = Vec::with_capacity(program.globals.len());
        for entry in &program.globals {
            let addr = match entry {
                GlobalEntry::Data { offset, .. } => DATA_BASE + offset,
                GlobalEntry::Bss { offset, .. } => bss_base + offset,
                GlobalEntry::Proc { proc_index } => TRAMP_BASE + proc_index,
                GlobalEntry::Native { name } => {
                    let native = Native::resolve(name)
                        .ok_or_else(|| VmError::UnknownNative { name: name.clone() })?;
                    let idx = Native::ALL
                        .iter()
                        .position(|&n| n == native)
                        .expect("registry contains resolved natives");
                    NATIVE_BASE + idx as u32
                }
            };
            globals.push(addr);
        }

        Ok(Vm {
            program,
            repr,
            mem,
            globals,
            output: Vec::new(),
            input: config.input.iter().copied().collect(),
            rng_state: 1,
            arg_buf: Vec::new(),
            heap_next: heap_base,
            heap_end,
            stack_next: stack_base,
            stack_end,
            fuel: config.fuel,
            steps: 0,
            depth: 0,
            max_depth: config.max_call_depth,
            host_stack_bytes: config.host_stack_bytes,
            trace: Vec::new(),
            trace_limit: config.trace_limit,
            telemetry_on: config.recorder.is_enabled(),
            dispatch: if config.recorder.is_enabled() {
                vec![0; 256]
            } else {
                Vec::new()
            },
            recorder: config.recorder,
            calls: 0,
            rules_walked: 0,
            call_depth_peak: 0,
            walk_depth_peak: 0,
            operand_stack_peak: 0,
            seg_cache: tier::SegKeyMap::default(),
            // Tier 0 forces the pure derivation walk: no segment cache,
            // and therefore nothing to tier up from.
            seg_cache_cap: if config.tier == 0 {
                0
            } else {
                config.segment_cache_entries
            },
            seg_cache_bytes: 0,
            seg_hits: 0,
            seg_misses: 0,
            tier2: (config.tier >= 2 && config.segment_cache_entries > 0 && ruleprog.is_some())
                .then(|| TieredCache::new(config.tier2_cache_entries, config.tier_up)),
            ruleprog,
            verbatim_ok,
            verbatim_segments: 0,
            cancel: config.cancel,
        })
    }

    /// Run the program from its entry procedure with no arguments.
    ///
    /// # Errors
    ///
    /// Any runtime fault; an `exit()` call is a normal completion.
    pub fn run(&mut self) -> Result<RunResult, VmError> {
        // Run on a dedicated thread with a generous stack: VM calls
        // recurse on the host stack, and debug-build frames are large.
        // The interpreter thread gets its own trace lane; the caller's
        // trace attribution is carried across explicitly (thread-locals
        // don't cross `thread::scope`).
        let stack = self.host_stack_bytes;
        let trace_ctx = trace::current();
        std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name("pgr-vm".into())
                .stack_size(stack)
                .spawn_scoped(scope, || {
                    let _trace = trace::scope_raw(trace_ctx);
                    self.run_on_this_thread()
                })
                .expect("spawn interpreter thread")
                .join()
                .expect("interpreter thread never panics")
        })
    }

    fn run_on_this_thread(&mut self) -> Result<RunResult, VmError> {
        let recorder = self.recorder.clone();
        let _vm_span = recorder.trace_span("vm.run");
        let entry = self.program.entry as u16;
        let outcome = self.call_descriptor(entry);
        self.flush_telemetry();
        match outcome {
            Ok(ret) => Ok(RunResult {
                exit_code: None,
                ret,
                output: std::mem::take(&mut self.output),
                steps: self.steps,
                trace: std::mem::take(&mut self.trace),
            }),
            Err(Stop::Exit(code)) => Ok(RunResult {
                exit_code: Some(code),
                ret: Slot::ZERO,
                output: std::mem::take(&mut self.output),
                steps: self.steps,
                trace: std::mem::take(&mut self.trace),
            }),
            Err(Stop::Error(e)) => Err(e),
        }
    }

    /// Ship the accumulated `vm.*` counters and depth gauges to the
    /// recorder. Called once per run, on success and failure alike, so
    /// aborted programs still report the work they did.
    fn flush_telemetry(&mut self) {
        if !self.telemetry_on {
            return;
        }
        let mut batch = Metrics::new();
        batch.add(names::VM_STEPS, self.steps);
        batch.add(names::VM_CALLS, self.calls);
        batch.add(names::VM_RULES_WALKED, self.rules_walked);
        if matches!(self.repr, Repr::Compressed { .. }) {
            batch.add(names::VM_VERBATIM_SEGMENTS, self.verbatim_segments);
        }
        batch.gauge_max(names::VM_CALL_DEPTH_PEAK, self.call_depth_peak as u64);
        batch.gauge_max(names::VM_WALK_DEPTH_PEAK, self.walk_depth_peak as u64);
        batch.gauge_max(names::VM_OPERAND_STACK_PEAK, self.operand_stack_peak as u64);
        if let Some(rp) = &self.ruleprog {
            batch.add(names::VM_SEG_CACHE_HITS, self.seg_hits);
            batch.add(names::VM_SEG_CACHE_MISSES, self.seg_misses);
            batch.gauge_max(names::VM_SEG_CACHE_BYTES, self.seg_cache_bytes as u64);
            batch.gauge_max(names::VM_SEG_CACHE_ENTRIES, self.seg_cache.len() as u64);
            batch.gauge_max(names::VM_RULEPROG_BYTES, rp.table_bytes() as u64);
            batch.gauge_max(names::VM_RULEPROG_MICRO_OPS, rp.micro_ops() as u64);
        }
        if let Some(t2) = &self.tier2 {
            let s = t2.stats();
            batch.add(names::VM_TIER2_COMPILED, s.compiled);
            batch.add(names::VM_TIER2_FUSED_OPS, s.fused_ops);
            batch.add(names::VM_TIER2_HITS, s.hits);
            batch.add(names::VM_TIER2_DEOPTS, s.deopts);
            batch.gauge_max(names::VM_TIER2_BYTES, s.bytes);
        }
        for (byte, &count) in self.dispatch.iter().enumerate() {
            if count > 0 {
                let label = Opcode::from_u8(byte as u8).map_or("unknown", Opcode::name);
                batch.add(names::vm_dispatch(label), count);
            }
        }
        self.recorder.record(batch);
    }

    /// Resolved address of a global-table entry.
    pub(crate) fn global_address(&self, index: u16) -> Option<u32> {
        self.globals.get(usize::from(index)).copied()
    }

    pub(crate) fn proc_name(&self, frame: &FrameCtx) -> String {
        self.program.procs[frame.proc_idx].name.clone()
    }

    /// Bump-allocate heap memory (8-byte aligned; zero-size requests get
    /// a distinct non-null address).
    pub(crate) fn heap_alloc(&mut self, size: u32) -> Result<u32, VmError> {
        let addr = self.heap_next;
        let end = addr
            .checked_add(align8(size.max(1)))
            .ok_or(VmError::HeapExhausted { requested: size })?;
        if end > self.heap_end {
            return Err(VmError::HeapExhausted { requested: size });
        }
        self.heap_next = end;
        Ok(addr)
    }

    /// Dispatch an indirect call: trampoline addresses reach bytecode,
    /// native addresses reach library routines.
    pub(crate) fn call_address(&mut self, addr: u32) -> Result<Slot, Stop> {
        if (TRAMP_BASE..TRAMP_BASE + self.program.procs.len() as u32).contains(&addr) {
            return self.call_descriptor((addr - TRAMP_BASE) as u16);
        }
        if (NATIVE_BASE..NATIVE_BASE + Native::ALL.len() as u32).contains(&addr) {
            let native = Native::ALL[(addr - NATIVE_BASE) as usize];
            let need = native.arg_bytes();
            if self.arg_buf.len() < need {
                return Err(Stop::Error(VmError::ArgUnderflow {
                    proc: format!("native {native:?}"),
                    need,
                    have: self.arg_buf.len(),
                }));
            }
            let args = self.arg_buf.split_off(self.arg_buf.len() - need);
            return match natives::call(self, native, &args) {
                Ok(NativeOutcome::Return(v)) => Ok(v),
                Ok(NativeOutcome::Exit(code)) => Err(Stop::Exit(code)),
                Err(e) => Err(Stop::Error(e)),
            };
        }
        Err(Stop::Error(VmError::BadCallTarget { addr }))
    }

    /// Call a bytecoded procedure by descriptor index. The callee's
    /// declared `arg_size` bytes are taken from the tail of the outgoing
    /// argument buffer — tail consumption is what lets calls nest inside
    /// argument lists.
    pub(crate) fn call_descriptor(&mut self, index: u16) -> Result<Slot, Stop> {
        let proc_idx = usize::from(index);
        let Some(proc) = self.program.procs.get(proc_idx) else {
            return Err(Stop::Error(VmError::BadDescriptor { index }));
        };
        if self.depth >= self.max_depth {
            return Err(Stop::Error(VmError::CallDepthExceeded {
                limit: self.max_depth,
            }));
        }
        let need = proc.arg_size as usize;
        if self.arg_buf.len() < need {
            return Err(Stop::Error(VmError::ArgUnderflow {
                proc: proc.name.clone(),
                need,
                have: self.arg_buf.len(),
            }));
        }
        let args = self.arg_buf.split_off(self.arg_buf.len() - need);

        let args_base = align8(self.stack_next);
        let locals_base = args_base + align8(need as u32);
        let frame_end = locals_base + align8(proc.frame_size);
        if frame_end > self.stack_end {
            return Err(Stop::Error(VmError::StackOverflow));
        }
        // Deterministic frames: zero the whole region, then copy args.
        let zero = vec![0u8; (frame_end - args_base) as usize];
        self.mem
            .store_bytes(args_base, &zero)
            .map_err(Stop::Error)?;
        if !args.is_empty() {
            self.mem
                .store_bytes(args_base, &args)
                .map_err(Stop::Error)?;
        }

        let saved_stack = self.stack_next;
        self.stack_next = frame_end;
        self.depth += 1;
        if self.telemetry_on {
            self.calls += 1;
            if self.depth > self.call_depth_peak {
                self.call_depth_peak = self.depth;
            }
        }
        let frame = FrameCtx {
            proc_idx,
            args_base,
            locals_base,
        };
        // Per-call begin/end trace events, named by procedure so the
        // chrome://tracing flame graph reads like a call tree. Opened
        // after every validation early-return so pairs stay balanced.
        let call_name = (self.telemetry_on && self.recorder.is_tracing())
            .then(|| format!("vm.call {}", proc.name));
        if let Some(name) = &call_name {
            self.recorder.trace_begin(name);
        }
        let result = match self.repr {
            Repr::Plain => self.interp1(&frame),
            Repr::Compressed {
                grammar,
                start,
                byte_nt,
            } => match self.ruleprog.clone() {
                Some(rp) => self.interp_nt_fast(&frame, &rp),
                None => self.interp_nt(&frame, grammar, start, byte_nt),
            },
        };
        if let Some(name) = &call_name {
            self.recorder.trace_end(name);
        }
        self.depth -= 1;
        self.stack_next = saved_stack;
        result
    }

    fn record(&mut self, proc_idx: usize, op: Opcode, operand: u32) {
        if self.trace.len() < self.trace_limit {
            self.trace.push(TraceEvent {
                proc: proc_idx as u32,
                op,
                operand,
                depth: self.depth as u32,
            });
        }
    }

    /// Steps between cancellation polls on the per-step interpreter
    /// paths: frequent enough that a fired deadline stops a spinning
    /// program within well under a millisecond, rare enough that the
    /// poll (one relaxed load when unarmed) never shows in profiles.
    const CANCEL_STRIDE_MASK: u64 = (1 << 16) - 1;

    /// Poll the run's [`CancelToken`]; a fired token stops the run with
    /// [`VmError::Cancelled`].
    fn check_cancel(&self) -> Result<(), Stop> {
        if self.cancel.is_cancelled() {
            return Err(Stop::Error(VmError::Cancelled {
                elapsed_ms: self.cancel.elapsed_ms(),
            }));
        }
        Ok(())
    }

    fn burn_fuel(&mut self) -> Result<(), Stop> {
        if self.fuel == 0 {
            return Err(Stop::Error(VmError::OutOfFuel));
        }
        self.fuel -= 1;
        self.steps += 1;
        if self.steps & Self::CANCEL_STRIDE_MASK == 0 {
            self.check_cancel()?;
        }
        Ok(())
    }

    /// Burn `n` fuel in one go — exactly `n` calls to [`Vm::burn_fuel`]:
    /// when the budget runs short, the steps that fit are still counted
    /// before `OutOfFuel`, matching the reference walk dying mid-window.
    /// Every batched refill is also a cancellation point: tier-1 replay
    /// windows poll the token here without paying per-step.
    fn burn_fuel_n(&mut self, n: u64) -> Result<(), Stop> {
        self.check_cancel()?;
        if self.fuel < n {
            self.steps += self.fuel;
            self.fuel = 0;
            return Err(Stop::Error(VmError::OutOfFuel));
        }
        self.fuel -= n;
        self.steps += n;
        Ok(())
    }

    /// Shared [`Flow::Branch`] tail of every interpreter loop: resolve a
    /// branch label to its code offset through the procedure's
    /// out-of-line label table.
    fn branch_target(proc: &Procedure, label: u16) -> Result<usize, Stop> {
        match proc.labels.get(usize::from(label)) {
            Some(&target) => Ok(target as usize),
            None => Err(Stop::Error(VmError::BadLabel {
                proc: proc.name.clone(),
                index: label,
            })),
        }
    }

    /// Execute a verbatim escape in a compressed stream: `pc` sits on
    /// the marker byte (the caller has verified it and burnt that
    /// iteration's fuel), the next two bytes give the raw payload length
    /// little-endian, and the payload is plain canonical bytecode run
    /// exactly as [`Vm::interp1`] would — one fuel per instruction,
    /// identical telemetry, trace, and error shapes. Shared by both
    /// compressed walkers so the escape cannot diverge between them.
    ///
    /// Returns where control goes next: the stream offset after the
    /// payload (fall-through), a taken branch's label target, or out of
    /// the procedure.
    fn run_verbatim(
        &mut self,
        frame: &FrameCtx,
        pc: usize,
        stack: &mut Vec<Slot>,
    ) -> Result<Replay, Stop> {
        let program = self.program;
        let proc = &program.procs[frame.proc_idx];
        let code = &proc.code;
        let overrun = |offset: usize| {
            Stop::Error(VmError::CorruptDerivation {
                proc: proc.name.clone(),
                offset,
                detail: "verbatim escape overruns the stream",
            })
        };
        let Some(len) = escape::decode_verbatim_header(&code[pc..]) else {
            return Err(overrun(pc));
        };
        let end = pc + escape::VERBATIM_HEADER + len;
        if end > code.len() {
            return Err(overrun(pc));
        }
        self.verbatim_segments += 1;
        let mut ip = pc + escape::VERBATIM_HEADER;
        while ip < end {
            self.burn_fuel()?;
            let byte = code[ip];
            let Some(op) = Opcode::from_u8(byte) else {
                return Err(Stop::Error(VmError::BadOpcode {
                    proc: proc.name.clone(),
                    offset: ip,
                }));
            };
            let n = op.operand_bytes();
            if ip + 1 + n > end {
                // An instruction split by the payload boundary: the
                // escape was not produced by the compressor.
                return Err(Stop::Error(VmError::BadOpcode {
                    proc: proc.name.clone(),
                    offset: ip,
                }));
            }
            let mut operands = [0u8; 4];
            operands[..n].copy_from_slice(&code[ip + 1..ip + 1 + n]);
            ip += 1 + n;
            if self.telemetry_on {
                self.dispatch[usize::from(byte)] += 1;
            }
            if self.trace_limit > 0 {
                self.record(frame.proc_idx, op, u32::from_le_bytes(operands));
            }
            let flow = self.exec_op(op, operands, frame, stack)?;
            if self.telemetry_on && stack.len() > self.operand_stack_peak {
                self.operand_stack_peak = stack.len();
            }
            match flow {
                Flow::Continue => {}
                Flow::Branch(label) => return Ok(Replay::Goto(Self::branch_target(proc, label)?)),
                Flow::Return(v) => return Ok(Replay::Returned(v)),
            }
        }
        Ok(Replay::Goto(end))
    }

    /// The initial interpreter: fetch an opcode and its literal operands
    /// from the code stream, execute, repeat (§5's `interp`/`interpret1`
    /// pair).
    fn interp1(&mut self, frame: &FrameCtx) -> Result<Slot, Stop> {
        let program = self.program;
        let proc = &program.procs[frame.proc_idx];
        let code = &proc.code;
        let mut pc = 0usize;
        let mut stack: Vec<Slot> = Vec::with_capacity(16);
        loop {
            self.burn_fuel()?;
            let Some(&byte) = code.get(pc) else {
                return Err(Stop::Error(VmError::FellOffEnd {
                    proc: proc.name.clone(),
                }));
            };
            let Some(op) = Opcode::from_u8(byte) else {
                return Err(Stop::Error(VmError::BadOpcode {
                    proc: proc.name.clone(),
                    offset: pc,
                }));
            };
            let n = op.operand_bytes();
            if pc + 1 + n > code.len() {
                return Err(Stop::Error(VmError::BadOpcode {
                    proc: proc.name.clone(),
                    offset: pc,
                }));
            }
            let mut operands = [0u8; 4];
            operands[..n].copy_from_slice(&code[pc + 1..pc + 1 + n]);
            pc += 1 + n;
            if self.telemetry_on {
                self.dispatch[usize::from(byte)] += 1;
            }
            if self.trace_limit > 0 {
                self.record(frame.proc_idx, op, u32::from_le_bytes(operands));
            }
            let flow = self.exec_op(op, operands, frame, &mut stack)?;
            if self.telemetry_on && stack.len() > self.operand_stack_peak {
                self.operand_stack_peak = stack.len();
            }
            match flow {
                Flow::Continue => {}
                Flow::Branch(label) => pc = Self::branch_target(proc, label)?,
                Flow::Return(v) => return Ok(v),
            }
        }
    }

    /// The **reference** compressed-bytecode interpreter (§5's
    /// `interpNT`): each stream byte selects a rule for the current
    /// non-terminal; the walk executes terminal operators (fetching
    /// literal operands from burnt-in rule bytes or the stream — the
    /// `GET` split) and recurses on non-terminals. A taken branch
    /// abandons the walk and restarts at the label's segment; a
    /// completed walk falls through to the next segment's derivation.
    ///
    /// This is the executable specification: [`Vm::interp_nt_fast`]
    /// must match it iteration for iteration (selected via
    /// [`VmConfig::reference_walker`], pinned by a differential
    /// proptest).
    fn interp_nt(
        &mut self,
        frame: &FrameCtx,
        grammar: &Grammar,
        start: Nt,
        byte_nt: Nt,
    ) -> Result<Slot, Stop> {
        let program = self.program;
        let proc = &program.procs[frame.proc_idx];
        let code = &proc.code;
        let corrupt = |offset: usize, detail: &'static str| {
            Stop::Error(VmError::CorruptDerivation {
                proc: proc.name.clone(),
                offset,
                detail,
            })
        };

        let mut pc = 0usize;
        let mut stack: Vec<Slot> = Vec::with_capacity(16);
        // The rule walk: (rule, position in its right-hand side).
        let mut walk: Vec<(pgr_grammar::RuleId, usize)> = Vec::with_capacity(32);

        loop {
            self.burn_fuel()?;
            if walk.is_empty() {
                // Start the next segment's derivation of <start>.
                if pc >= code.len() {
                    return Err(Stop::Error(VmError::FellOffEnd {
                        proc: proc.name.clone(),
                    }));
                }
                if self.verbatim_ok && code[pc] == escape::VERBATIM_MARKER {
                    // A verbatim escape instead of a derivation; the
                    // loop-top fuel above covers the marker iteration.
                    match self.run_verbatim(frame, pc, &mut stack)? {
                        Replay::Goto(next) => {
                            pc = next;
                            continue;
                        }
                        Replay::Returned(v) => return Ok(v),
                    }
                }
                let b = code[pc];
                pc += 1;
                let Some(&rule) = grammar.rules_of(start).get(usize::from(b)) else {
                    return Err(corrupt(pc - 1, "no such start rule"));
                };
                walk.push((rule, 0));
                if self.telemetry_on {
                    self.rules_walked += 1;
                    if walk.len() > self.walk_depth_peak {
                        self.walk_depth_peak = walk.len();
                    }
                }
                continue;
            }

            let (rule_id, pos) = *walk.last().expect("walk is non-empty");
            let rule = grammar.rule(rule_id);
            if pos >= rule.rhs.len() {
                walk.pop();
                continue;
            }
            match rule.rhs[pos] {
                Symbol::N(nt) => {
                    walk.last_mut().expect("walk is non-empty").1 = pos + 1;
                    if pc >= code.len() {
                        return Err(corrupt(pc, "stream ends inside a derivation"));
                    }
                    let b = code[pc];
                    pc += 1;
                    let Some(&child) = grammar.rules_of(nt).get(usize::from(b)) else {
                        return Err(corrupt(pc - 1, "no such rule for non-terminal"));
                    };
                    walk.push((child, 0));
                    if self.telemetry_on {
                        self.rules_walked += 1;
                        if walk.len() > self.walk_depth_peak {
                            self.walk_depth_peak = walk.len();
                        }
                    }
                }
                Symbol::T(Terminal::Byte(_)) => {
                    return Err(corrupt(pc, "literal byte not owned by an opcode"));
                }
                Symbol::T(Terminal::Op(op)) => {
                    // Fetch the operator's literal operands: each comes
                    // either burnt into the rule or from the stream via a
                    // <byte> expansion (§5's GET).
                    let n = op.operand_bytes();
                    let mut operands = [0u8; 4];
                    let mut p = pos + 1;
                    for slot in operands.iter_mut().take(n) {
                        match rule.rhs.get(p) {
                            Some(Symbol::T(Terminal::Byte(b))) => *slot = *b,
                            Some(Symbol::N(nt)) if *nt == byte_nt => {
                                if pc >= code.len() {
                                    return Err(corrupt(pc, "stream ends inside operands"));
                                }
                                *slot = code[pc];
                                pc += 1;
                            }
                            _ => return Err(corrupt(pc, "operand layout violated")),
                        }
                        p += 1;
                    }
                    walk.last_mut().expect("walk is non-empty").1 = p;

                    if self.telemetry_on {
                        self.dispatch[usize::from(op as u8)] += 1;
                    }
                    if self.trace_limit > 0 {
                        self.record(frame.proc_idx, op, u32::from_le_bytes(operands));
                    }
                    let flow = self.exec_op(op, operands, frame, &mut stack)?;
                    if self.telemetry_on && stack.len() > self.operand_stack_peak {
                        self.operand_stack_peak = stack.len();
                    }
                    match flow {
                        Flow::Continue => {}
                        Flow::Branch(label) => {
                            pc = Self::branch_target(proc, label)?;
                            walk.clear();
                        }
                        Flow::Return(v) => return Ok(v),
                    }
                }
            }
        }
    }

    /// The fast compressed-bytecode interpreter: the same loop as
    /// [`Vm::interp_nt`] — one fuel unit per derivation-walk iteration,
    /// identical error offsets and telemetry — but over the precompiled
    /// [`RuleProgram`] micro-ops (one `u64` load per symbol instead of a
    /// rule-object pattern match), with the decoded-segment cache
    /// replaying previously walked segments instruction-for-instruction.
    fn interp_nt_fast(&mut self, frame: &FrameCtx, rp: &Arc<RuleProgram>) -> Result<Slot, Stop> {
        let program = self.program;
        let proc = &program.procs[frame.proc_idx];
        let code = &proc.code;
        let corrupt = |offset: usize, detail: &'static str| {
            Stop::Error(VmError::CorruptDerivation {
                proc: proc.name.clone(),
                offset,
                detail,
            })
        };

        let mut pc = 0usize;
        let mut stack: Vec<Slot> = Vec::with_capacity(16);
        let mut walk: Vec<WalkFrame> = Vec::with_capacity(64);
        let cache_on = self.seg_cache_cap > 0;
        // Both inputs to the tier decision are fixed for the whole run
        // (`telemetry_on` and `trace_limit` are set at construction),
        // so hoist them out of the dispatch loop. `tier_up == 0` means
        // tiering is off and segments never heat up.
        let tier2_quiet = self.tier2.is_some() && !self.telemetry_on && self.trace_limit == 0;
        let tier_up = self.tier2.as_ref().map_or(0, TieredCache::threshold);
        let mut rec = SegRecorder::default();

        loop {
            if walk.is_empty() {
                if self.verbatim_ok && code.get(pc) == Some(&escape::VERBATIM_MARKER) {
                    // A verbatim escape: burn the marker iteration's
                    // fuel (matching the reference walker's loop-top
                    // burn) and execute the raw payload. Escapes bypass
                    // the segment cache — they are already decoded.
                    self.burn_fuel()?;
                    match self.run_verbatim(frame, pc, &mut stack)? {
                        Replay::Goto(next) => {
                            pc = next;
                            continue;
                        }
                        Replay::Returned(v) => return Ok(v),
                    }
                }
                // Segment boundary: replay a cached decode, or start
                // recording this one.
                if cache_on {
                    // One map lookup decides the whole tier ladder: the
                    // entry carries the trace, the compiled program,
                    // and the heat/recency counters, so the borrow of
                    // the cache slot is all the steady state pays.
                    let key = seg_key(frame.proc_idx, pc);
                    let path = match self.seg_cache.get_mut(&key) {
                        Some(Some(entry)) if self.fuel >= entry.trace.total_fuel => {
                            self.seg_hits += 1;
                            entry.tick = self.seg_hits;
                            if let Some(prog) = &entry.tier2 {
                                if tier2_quiet {
                                    Some(TierPath::Fused(prog.clone()))
                                } else {
                                    Some(TierPath::Deopt(entry.trace.clone()))
                                }
                            } else if tier_up > 0 && !entry.trace.has_calls {
                                // Call-carrying traces never tier up:
                                // callee fuel is data-dependent, so
                                // their windows cannot burn up front.
                                entry.heat += 1;
                                if entry.heat >= tier_up {
                                    entry.heat = 0;
                                    Some(TierPath::Compile(entry.trace.clone()))
                                } else {
                                    Some(TierPath::Replay(entry.trace.clone()))
                                }
                            } else {
                                Some(TierPath::Replay(entry.trace.clone()))
                            }
                        }
                        // Known-uncacheable segment, or not enough fuel
                        // left for an exact batched replay: walk it.
                        Some(_) => {
                            self.seg_misses += 1;
                            None
                        }
                        None => {
                            self.seg_misses += 1;
                            if self.seg_cache.len() < self.seg_cache_cap {
                                rec.begin(key);
                            }
                            None
                        }
                    };
                    if let Some(path) = path {
                        let replayed = match path {
                            TierPath::Fused(prog) => {
                                self.tier2_mut().note_hit();
                                self.run_tier2(frame, proc, &prog, &mut stack)?
                            }
                            TierPath::Deopt(trace) => {
                                let t2 = self.tier2_mut();
                                t2.note_hit();
                                t2.note_deopt();
                                self.replay_segment(frame, proc, &trace, &mut stack)?
                            }
                            TierPath::Compile(trace) => {
                                self.tier_up(key, &trace, proc);
                                self.replay_segment(frame, proc, &trace, &mut stack)?
                            }
                            TierPath::Replay(trace) => {
                                self.replay_segment(frame, proc, &trace, &mut stack)?
                            }
                        };
                        match replayed {
                            Replay::Goto(next) => {
                                pc = next;
                                continue;
                            }
                            Replay::Returned(v) => return Ok(v),
                        }
                    }
                }
                // The segment-start iteration: the next stream byte
                // selects a <start> rule.
                self.burn_fuel()?;
                rec.tick();
                if pc >= code.len() {
                    return Err(Stop::Error(VmError::FellOffEnd {
                        proc: proc.name.clone(),
                    }));
                }
                let b = code[pc];
                pc += 1;
                let Some(slot) = rp.select(rp.start_nt(), b) else {
                    return Err(corrupt(pc - 1, "no such start rule"));
                };
                let (ip, end) = rp.rule_range(slot);
                walk.push(WalkFrame { ip, end });
                rec.rule(walk.len());
                if self.telemetry_on {
                    self.rules_walked += 1;
                    if walk.len() > self.walk_depth_peak {
                        self.walk_depth_peak = walk.len();
                    }
                }
                continue;
            }

            self.burn_fuel()?;
            rec.tick();
            let top = walk.last_mut().expect("walk is non-empty");
            if top.ip == top.end {
                walk.pop();
                if walk.is_empty() && rec.active {
                    // Fall-through completion: the trailing window
                    // becomes the trace's tail.
                    self.seal_recording(&mut rec, pc);
                }
                continue;
            }
            let w = rp.op(top.ip);
            top.ip += 1;
            match ruleprog::kind(w) {
                ruleprog::KIND_CHILD => {
                    if pc >= code.len() {
                        return Err(corrupt(pc, "stream ends inside a derivation"));
                    }
                    let b = code[pc];
                    pc += 1;
                    let Some(slot) = rp.select(ruleprog::child_nt(w), b) else {
                        return Err(corrupt(pc - 1, "no such rule for non-terminal"));
                    };
                    let (ip, end) = rp.rule_range(slot);
                    walk.push(WalkFrame { ip, end });
                    rec.rule(walk.len());
                    if self.telemetry_on {
                        self.rules_walked += 1;
                        if walk.len() > self.walk_depth_peak {
                            self.walk_depth_peak = walk.len();
                        }
                    }
                }
                ruleprog::KIND_EXEC => {
                    let mut operands = ruleprog::template(w);
                    let mut mask = ruleprog::stream_mask(w);
                    while mask != 0 {
                        let slot = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        if pc >= code.len() {
                            return Err(corrupt(pc, "stream ends inside operands"));
                        }
                        operands[slot] = code[pc];
                        pc += 1;
                    }
                    let op = Opcode::ALL[usize::from(ruleprog::opcode_byte(w))];
                    rec.step(op, operands);
                    if self.telemetry_on {
                        self.dispatch[usize::from(op as u8)] += 1;
                    }
                    if self.trace_limit > 0 {
                        self.record(frame.proc_idx, op, u32::from_le_bytes(operands));
                    }
                    let flow = self.exec_op(op, operands, frame, &mut stack)?;
                    if self.telemetry_on && stack.len() > self.operand_stack_peak {
                        self.operand_stack_peak = stack.len();
                    }
                    match flow {
                        Flow::Continue => {}
                        Flow::Branch(label) => {
                            let target = Self::branch_target(proc, label)?;
                            if rec.active {
                                // The walk is abandoned mid-segment;
                                // finish the decode fuel-free so the
                                // cached trace covers the whole segment.
                                self.finish_recording_by_decode(&mut rec, rp, code, pc, &walk);
                            }
                            pc = target;
                            walk.clear();
                        }
                        Flow::Return(v) => {
                            if rec.active {
                                self.finish_recording_by_decode(&mut rec, rp, code, pc, &walk);
                            }
                            return Ok(v);
                        }
                    }
                }
                _ => {
                    // KIND_CORRUPT: consume the stream operands the
                    // reference would before faulting, then fault with
                    // its exact offset and detail.
                    let mut mask = ruleprog::stream_mask(w);
                    while mask != 0 {
                        mask &= mask - 1;
                        if pc >= code.len() {
                            return Err(corrupt(pc, "stream ends inside operands"));
                        }
                        pc += 1;
                    }
                    return Err(corrupt(
                        pc,
                        ruleprog::CORRUPT_DETAILS[ruleprog::detail_index(w)],
                    ));
                }
            }
        }
    }

    /// Replay a cached segment decode: per instruction, burn the
    /// recorded bookkeeping window in one batch, apply the recorded
    /// telemetry deltas, and execute — control flow stays live, so a
    /// conditional branch may exit the replay anywhere, exactly like the
    /// walk it replaces.
    fn replay_segment(
        &mut self,
        frame: &FrameCtx,
        proc: &Procedure,
        trace: &SegTrace,
        stack: &mut Vec<Slot>,
    ) -> Result<Replay, Stop> {
        if !self.telemetry_on && self.trace_limit == 0 && !trace.has_calls {
            return self.replay_segment_lean(frame, proc, trace, stack);
        }
        for step in &trace.steps {
            self.burn_fuel_n(u64::from(step.pre_fuel))?;
            if self.telemetry_on {
                self.rules_walked += u64::from(step.pre_rules);
                if step.pre_depth as usize > self.walk_depth_peak {
                    self.walk_depth_peak = step.pre_depth as usize;
                }
                self.dispatch[usize::from(step.op as u8)] += 1;
            }
            if self.trace_limit > 0 {
                self.record(frame.proc_idx, step.op, u32::from_le_bytes(step.operands));
            }
            let flow = self.exec_op(step.op, step.operands, frame, stack)?;
            if self.telemetry_on && stack.len() > self.operand_stack_peak {
                self.operand_stack_peak = stack.len();
            }
            match flow {
                Flow::Continue => {}
                Flow::Branch(label) => return Ok(Replay::Goto(Self::branch_target(proc, label)?)),
                Flow::Return(v) => return Ok(Replay::Returned(v)),
            }
        }
        self.burn_fuel_n(u64::from(trace.tail_fuel))?;
        if self.telemetry_on {
            self.rules_walked += u64::from(trace.tail_rules);
            if trace.tail_depth as usize > self.walk_depth_peak {
                self.walk_depth_peak = trace.tail_depth as usize;
            }
        }
        Ok(Replay::Goto(trace.end_pc as usize))
    }

    /// The hot replay loop: telemetry and tracing off, no calls in the
    /// trace. The caller guarantees `fuel >= trace.total_fuel` and no
    /// step can consume fuel of its own, so the whole window burns up
    /// front and an early exit (branch, return, or fault mid-trace)
    /// refunds the unexecuted remainder — byte-identical fuel and step
    /// accounting to the per-step path, without its per-instruction
    /// bookkeeping. The hottest stack-push operators are additionally
    /// unpacked inline rather than dispatched through [`Vm::exec_op`].
    fn replay_segment_lean(
        &mut self,
        frame: &FrameCtx,
        proc: &Procedure,
        trace: &SegTrace,
        stack: &mut Vec<Slot>,
    ) -> Result<Replay, Stop> {
        self.check_cancel()?;
        self.fuel -= trace.total_fuel;
        self.steps += trace.total_fuel;
        let mut consumed = 0u64;
        for step in &trace.steps {
            consumed += u64::from(step.pre_fuel);
            let flow = match step.op {
                Opcode::LIT1 | Opcode::LIT2 | Opcode::LIT3 | Opcode::LIT4 => {
                    stack.push(Slot::from_u(u32::from_le_bytes(step.operands)));
                    continue;
                }
                Opcode::ADDRLP => {
                    let off = u32::from(u16::from_le_bytes([step.operands[0], step.operands[1]]));
                    stack.push(Slot::from_u(frame.locals_base + off));
                    continue;
                }
                Opcode::ADDRFP => {
                    let off = u32::from(u16::from_le_bytes([step.operands[0], step.operands[1]]));
                    stack.push(Slot::from_u(frame.args_base + off));
                    continue;
                }
                op => self.exec_op(op, step.operands, frame, stack),
            };
            match flow {
                Ok(Flow::Continue) => {}
                Ok(Flow::Branch(label)) => {
                    let refund = trace.total_fuel - consumed;
                    self.fuel += refund;
                    self.steps -= refund;
                    return Ok(Replay::Goto(Self::branch_target(proc, label)?));
                }
                Ok(Flow::Return(v)) => {
                    let refund = trace.total_fuel - consumed;
                    self.fuel += refund;
                    self.steps -= refund;
                    return Ok(Replay::Returned(v));
                }
                Err(stop) => {
                    let refund = trace.total_fuel - consumed;
                    self.fuel += refund;
                    self.steps -= refund;
                    return Err(stop);
                }
            }
        }
        Ok(Replay::Goto(trace.end_pc as usize))
    }

    /// The tier-2 ledger; only called on paths the dispatch loop takes
    /// when a program is (or is about to be) tiered, which implies the
    /// ladder is active.
    fn tier2_mut(&mut self) -> &mut TieredCache {
        self.tier2.as_mut().expect("tiered segment implies tier 2")
    }

    /// Compile a hot segment and admit its program under the tier-2
    /// cap, first evicting the least recently replayed program
    /// (minimum [`tier::SegEntry::tick`]) while over it. Eviction drops
    /// the compiled program only — the tier-1 trace stays cached, and a
    /// segment that stays hot simply recompiles.
    fn tier_up(&mut self, key: u64, trace: &SegTrace, proc: &Procedure) {
        let prog = Arc::new(tier::compile(trace, proc, &self.globals));
        let Some(t2) = self.tier2.as_mut() else {
            return;
        };
        while t2.resident() >= t2.cap() as u64 {
            let victim = self
                .seg_cache
                .values_mut()
                .filter_map(Option::as_mut)
                .filter(|e| e.tier2.is_some())
                .min_by_key(|e| e.tick);
            let Some(entry) = victim else { break };
            let old = entry.tier2.take().expect("victim holds a program");
            t2.note_evicted(&old);
        }
        t2.note_compiled(&prog);
        let entry = self
            .seg_cache
            .get_mut(&key)
            .and_then(Option::as_mut)
            .expect("compiling segment is cached");
        entry.tier2 = Some(prog);
    }

    /// Execute a compiled tier-2 program: the whole segment's fuel is
    /// debited in one subtraction, straight-line runs execute as fused
    /// handlers with operands and branch targets burnt in, and every
    /// side exit (taken branch, return, fault) refunds the unexecuted
    /// remainder through the program's fuel prefix sums — byte-identical
    /// accounting to [`Vm::replay_segment_lean`], pinned by the
    /// differential proptests. Only quiet, call-free segments reach this
    /// loop (dispatch and compilation guarantee it), so no step consumes
    /// fuel of its own and no per-step telemetry is owed.
    fn run_tier2(
        &mut self,
        frame: &FrameCtx,
        proc: &Procedure,
        prog: &Tier2Program,
        stack: &mut Vec<Slot>,
    ) -> Result<Replay, Stop> {
        self.check_cancel()?;
        self.fuel -= prog.total_fuel;
        self.steps += prog.total_fuel;
        // A side exit at source step `i` has consumed `prefix[i]` fuel;
        // the rest of the upfront debit is refunded before leaving.
        macro_rules! exit {
            ($consumed:expr, $out:expr) => {{
                let refund = prog.total_fuel - $consumed;
                self.fuel += refund;
                self.steps -= refund;
                return $out;
            }};
        }
        macro_rules! underflow {
            ($op:expr, $consumed:expr) => {
                exit!(
                    $consumed,
                    Err(Stop::Error(VmError::StackUnderflow {
                        proc: proc.name.clone(),
                        opcode: $op,
                    }))
                )
            };
        }
        for sop in prog.ops.iter() {
            let last = sop.last as usize;
            match sop.fused {
                Fused::Push { imm } => stack.push(Slot::from_u(imm)),
                Fused::PushLocal { off } => stack.push(Slot::from_u(frame.locals_base + off)),
                Fused::PushArg { off } => stack.push(Slot::from_u(frame.args_base + off)),
                Fused::LoadLocal { off } => match self.mem.load_u32(frame.locals_base + off) {
                    Ok(v) => stack.push(Slot::from_u(v)),
                    Err(e) => exit!(prog.prefix[last], Err(Stop::Error(e))),
                },
                Fused::LoadArg { off } => match self.mem.load_u32(frame.args_base + off) {
                    Ok(v) => stack.push(Slot::from_u(v)),
                    Err(e) => exit!(prog.prefix[last], Err(Stop::Error(e))),
                },
                Fused::StoreLocal { off } => {
                    let Some(v) = stack.pop() else {
                        underflow!(Opcode::ASGNU, prog.prefix[last]);
                    };
                    if let Err(e) = self.mem.store_u32(frame.locals_base + off, v.u()) {
                        exit!(prog.prefix[last], Err(Stop::Error(e)));
                    }
                }
                Fused::StoreArg { off } => {
                    let Some(v) = stack.pop() else {
                        underflow!(Opcode::ASGNU, prog.prefix[last]);
                    };
                    if let Err(e) = self.mem.store_u32(frame.args_base + off, v.u()) {
                        exit!(prog.prefix[last], Err(Stop::Error(e)));
                    }
                }
                Fused::LoadGlobal { addr } => match self.mem.load_u32(addr) {
                    Ok(v) => stack.push(Slot::from_u(v)),
                    Err(e) => exit!(prog.prefix[last], Err(Stop::Error(e))),
                },
                Fused::StoreGlobal { addr } => {
                    let Some(v) = stack.pop() else {
                        underflow!(Opcode::ASGNU, prog.prefix[last]);
                    };
                    if let Err(e) = self.mem.store_u32(addr, v.u()) {
                        exit!(prog.prefix[last], Err(Stop::Error(e)));
                    }
                }
                Fused::AluImm { op, imm } => {
                    let Some(a) = stack.pop() else {
                        underflow!(op, prog.prefix[last]);
                    };
                    stack.push(alu_imm(op, a, imm));
                }
                Fused::CmpBr { cmp, target } => {
                    // The comparison is the second-to-last constituent;
                    // an underflow there (either pop — the operator pops
                    // b first, like `exec_op`) charges its step, while a
                    // taken branch charges through the BrTrue.
                    let Some(b) = stack.pop() else {
                        underflow!(cmp, prog.prefix[last - 1]);
                    };
                    let Some(a) = stack.pop() else {
                        underflow!(cmp, prog.prefix[last - 1]);
                    };
                    if cmp_eval(cmp, a, b) {
                        exit!(prog.prefix[last], Ok(Replay::Goto(target as usize)));
                    }
                }
                Fused::CmpImmBr { cmp, imm, target } => {
                    let Some(a) = stack.pop() else {
                        underflow!(cmp, prog.prefix[last - 1]);
                    };
                    if cmp_eval(cmp, a, Slot::from_u(imm)) {
                        exit!(prog.prefix[last], Ok(Replay::Goto(target as usize)));
                    }
                }
                Fused::BrTruePop { target } => {
                    let Some(flag) = stack.pop() else {
                        underflow!(Opcode::BrTrue, prog.prefix[last]);
                    };
                    if flag.u() != 0 {
                        exit!(prog.prefix[last], Ok(Replay::Goto(target as usize)));
                    }
                }
                Fused::Jump { target } => {
                    exit!(prog.prefix[last], Ok(Replay::Goto(target as usize)))
                }
                Fused::Exec { op, operands } => match self.exec_op(op, operands, frame, stack) {
                    Ok(Flow::Continue) => {}
                    Ok(Flow::Branch(label)) => match Self::branch_target(proc, label) {
                        Ok(t) => exit!(prog.prefix[last], Ok(Replay::Goto(t))),
                        Err(e) => exit!(prog.prefix[last], Err(e)),
                    },
                    Ok(Flow::Return(v)) => {
                        exit!(prog.prefix[last], Ok(Replay::Returned(v)))
                    }
                    Err(stop) => exit!(prog.prefix[last], Err(stop)),
                },
            }
        }
        Ok(Replay::Goto(prog.end_pc as usize))
    }

    /// Snapshot of tier-2 activity (all zeros when tiering is
    /// inactive). Live regardless of telemetry, so serving hosts can
    /// surface tier-up behavior without enabling a recorder.
    pub fn tier2_stats(&self) -> Tier2Stats {
        self.tier2
            .as_ref()
            .map(TieredCache::stats)
            .unwrap_or_default()
    }

    /// A branch or return abandoned the walk mid-segment while
    /// recording: continue the *decode* (no fuel, no execution) over a
    /// shadow walk until the segment drains, so the cached trace is
    /// complete no matter where a later replay's control flow goes. A
    /// decode that faults or exhausts the stream marks the segment
    /// uncacheable instead — execution either keeps branching out before
    /// the bad spot or dies there, so there is never a trace to reuse.
    fn finish_recording_by_decode(
        &mut self,
        rec: &mut SegRecorder,
        rp: &RuleProgram,
        code: &[u8],
        mut pc: usize,
        walk: &[WalkFrame],
    ) {
        let mut shadow: Vec<WalkFrame> = walk.to_vec();
        loop {
            if shadow.is_empty() {
                self.seal_recording(rec, pc);
                return;
            }
            let top = shadow.last_mut().expect("shadow walk is non-empty");
            if top.ip == top.end {
                shadow.pop();
                rec.tick();
                continue;
            }
            let w = rp.op(top.ip);
            top.ip += 1;
            match ruleprog::kind(w) {
                ruleprog::KIND_CHILD => {
                    rec.tick();
                    let Some(&b) = code.get(pc) else { break };
                    pc += 1;
                    let Some(slot) = rp.select(ruleprog::child_nt(w), b) else {
                        break;
                    };
                    let (ip, end) = rp.rule_range(slot);
                    shadow.push(WalkFrame { ip, end });
                    rec.rule(shadow.len());
                }
                ruleprog::KIND_EXEC => {
                    rec.tick();
                    let mut operands = ruleprog::template(w);
                    let mut mask = ruleprog::stream_mask(w);
                    let mut ok = true;
                    while mask != 0 {
                        let slot = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        let Some(&b) = code.get(pc) else {
                            ok = false;
                            break;
                        };
                        operands[slot] = b;
                        pc += 1;
                    }
                    if !ok {
                        break;
                    }
                    rec.step(Opcode::ALL[usize::from(ruleprog::opcode_byte(w))], operands);
                }
                _ => break,
            }
        }
        self.mark_uncacheable(rec);
    }

    /// Close a recording into a [`SegTrace`] and publish it.
    fn seal_recording(&mut self, rec: &mut SegRecorder, end_pc: usize) {
        let has_calls = rec
            .steps
            .iter()
            .any(|s| s.op.is_local_call() || s.op.is_indirect_call());
        let trace = SegTrace {
            steps: std::mem::take(&mut rec.steps).into_boxed_slice(),
            tail_fuel: rec.win_fuel,
            tail_rules: rec.win_rules,
            tail_depth: rec.win_depth,
            end_pc: end_pc as u32,
            total_fuel: rec.total_fuel,
            has_calls,
        };
        rec.active = false;
        if self.seg_cache.len() < self.seg_cache_cap && !self.seg_cache.contains_key(&rec.key) {
            self.seg_cache_bytes += trace.bytes();
            self.seg_cache
                .insert(rec.key, Some(tier::SegEntry::new(Arc::new(trace))));
        }
    }

    /// Publish a negative entry: this segment's decode faults, so never
    /// try to record it again.
    fn mark_uncacheable(&mut self, rec: &mut SegRecorder) {
        rec.active = false;
        rec.steps.clear();
        if self.seg_cache.len() < self.seg_cache_cap && !self.seg_cache.contains_key(&rec.key) {
            self.seg_cache_bytes += size_of::<u64>() + size_of::<Option<tier::SegEntry>>();
            self.seg_cache.insert(rec.key, None);
        }
    }
}

/// One decoded-walk frame of the fast path: a cursor over a rule's
/// micro-op range.
#[derive(Clone, Copy)]
struct WalkFrame {
    ip: u32,
    end: u32,
}

/// Where a segment replay handed control: the next segment's stream
/// offset (fall-through or taken branch), or out of the procedure.
enum Replay {
    Goto(usize),
    Returned(Slot),
}

/// How a segment-cache hit is serviced, decided in the dispatch loop
/// while the single cache-entry borrow is live. Cloning the `Arc`s out
/// lets the replay methods take `&mut self` afterwards.
enum TierPath {
    /// Run the compiled tier-2 superinstruction program.
    Fused(Arc<Tier2Program>),
    /// The segment is tiered, but telemetry or tracing needs per-step
    /// bookkeeping: deoptimize to tier-1 replay.
    Deopt(Arc<SegTrace>),
    /// This replay crossed the tier-up threshold: compile, then replay
    /// at tier 1 (the program serves the next quiet hit).
    Compile(Arc<SegTrace>),
    /// Plain tier-1 replay.
    Replay(Arc<SegTrace>),
}

fn seg_key(proc_idx: usize, pc: usize) -> u64 {
    ((proc_idx as u64) << 32) | pc as u64
}

/// Evaluate a fused integer comparison. Mirrors the `cmp!` arms of
/// [`exec::exec_op`]; [`pgr_native::fuse`] only emits the operators
/// listed here.
#[inline]
fn cmp_eval(cmp: Opcode, a: Slot, b: Slot) -> bool {
    match cmp {
        Opcode::EQU => a.u() == b.u(),
        Opcode::NEU => a.u() != b.u(),
        Opcode::LTU => a.u() < b.u(),
        Opcode::LEU => a.u() <= b.u(),
        Opcode::GTU => a.u() > b.u(),
        Opcode::GEU => a.u() >= b.u(),
        Opcode::LTI => a.i() < b.i(),
        Opcode::LEI => a.i() <= b.i(),
        Opcode::GTI => a.i() > b.i(),
        Opcode::GEI => a.i() >= b.i(),
        other => unreachable!("non-fusable comparison {other:?}"),
    }
}

/// Apply a fused ALU operator to `a` with the burnt-in immediate as the
/// right operand. Mirrors the `bin_u!`/`bin_i!` arms of
/// [`exec::exec_op`]; [`pgr_native::fuse`] never fuses an immediate
/// into DIV/MOD (their divide-by-zero fault is data-dependent).
#[inline]
fn alu_imm(op: Opcode, a: Slot, imm: u32) -> Slot {
    match op {
        Opcode::ADDU => Slot::from_u(a.u().wrapping_add(imm)),
        Opcode::SUBU => Slot::from_u(a.u().wrapping_sub(imm)),
        Opcode::MULU => Slot::from_u(a.u().wrapping_mul(imm)),
        Opcode::MULI => Slot::from_i(a.i().wrapping_mul(imm as i32)),
        Opcode::BANDU => Slot::from_u(a.u() & imm),
        Opcode::BORU => Slot::from_u(a.u() | imm),
        Opcode::BXORU => Slot::from_u(a.u() ^ imm),
        Opcode::LSHI => Slot::from_i(a.i().wrapping_shl(imm & 31)),
        Opcode::LSHU => Slot::from_u(a.u().wrapping_shl(imm & 31)),
        Opcode::RSHI => Slot::from_i(a.i().wrapping_shr(imm & 31)),
        Opcode::RSHU => Slot::from_u(a.u().wrapping_shr(imm & 31)),
        other => unreachable!("non-fusable ALU operator {other:?}"),
    }
}

/// Accumulates a segment decode into [`SegStep`] windows while the fast
/// path walks it for real. Inactive recorders make every hook a single
/// predictable branch.
#[derive(Default)]
struct SegRecorder {
    active: bool,
    key: u64,
    steps: Vec<SegStep>,
    /// Fuel burnt since the last recorded instruction (bookkeeping
    /// iterations plus the next instruction's own dispatch).
    win_fuel: u32,
    /// Rules selected since the last recorded instruction.
    win_rules: u32,
    /// Walk-depth peak since the last recorded instruction.
    win_depth: u32,
    total_fuel: u64,
}

impl SegRecorder {
    fn begin(&mut self, key: u64) {
        self.active = true;
        self.key = key;
        self.steps.clear();
        self.win_fuel = 0;
        self.win_rules = 0;
        self.win_depth = 0;
        self.total_fuel = 0;
    }

    /// Count one derivation-walk iteration (one unit of fuel).
    #[inline]
    fn tick(&mut self) {
        if self.active {
            self.win_fuel += 1;
            self.total_fuel += 1;
        }
    }

    /// Count one rule selection at the given walk depth.
    #[inline]
    fn rule(&mut self, depth: usize) {
        if self.active {
            self.win_rules += 1;
            self.win_depth = self.win_depth.max(depth as u32);
        }
    }

    /// Close the current window into a recorded instruction.
    #[inline]
    fn step(&mut self, op: Opcode, operands: [u8; 4]) {
        if self.active {
            self.steps.push(SegStep {
                op,
                operands,
                pre_fuel: self.win_fuel,
                pre_rules: self.win_rules,
                pre_depth: self.win_depth,
            });
            self.win_fuel = 0;
            self.win_rules = 0;
            self.win_depth = 0;
        }
    }
}

#[cfg(test)]
mod tier_dispatch_tests {
    use super::*;
    use pgr_bytecode::asm::assemble;
    use pgr_core::{train, TrainConfig};

    /// Counting loop — every segment replays enough to tier up at any
    /// threshold.
    const LOOP: &str = "proc main frame=16 args=0\n\
         \tLIT1 0\n\tADDRLP 0\n\tASGNU\n\
         \tLIT1 0\n\tADDRLP 8\n\tASGNU\n\
         \tlabel 0\n\
         \tADDRLP 0\n\tINDIRU\n\tLIT1 12\n\tLTI\n\tBrTrue 1\n\
         \tJUMPV 2\n\
         \tlabel 1\n\
         \tADDRLP 8\n\tINDIRU\n\tLIT1 5\n\tADDU\n\tADDRLP 8\n\tASGNU\n\
         \tADDRLP 0\n\tINDIRU\n\tLIT1 1\n\tADDU\n\tADDRLP 0\n\tASGNU\n\
         \tJUMPV 0\n\
         \tlabel 2\n\
         \tADDRLP 8\n\tINDIRU\n\tRETU\n\
         endproc\nentry main\n";

    /// Negative cache entries ("this segment's decode faults") must
    /// never reach the tier ladder: a fully poisoned cache walks every
    /// segment fresh, compiles nothing, and still produces the
    /// byte-identical result.
    #[test]
    fn negative_segments_never_tier_up() {
        let program = assemble(LOOP).unwrap();
        let trained = train(&[&program], &TrainConfig::default()).unwrap();
        let (cp, _) = trained.compress(&program).unwrap();
        let ig = trained.initial();
        let config = VmConfig {
            tier_up: 1,
            ..VmConfig::default()
        };
        let mk = || {
            Vm::new_compressed(
                &cp.program,
                trained.expanded(),
                ig.nt_start,
                ig.nt_byte,
                config.clone(),
            )
            .unwrap()
        };

        let mut vm = mk();
        let clean = vm.run().unwrap();
        assert!(
            vm.tier2_stats().compiled > 0,
            "hot loop should tier up in the clean run"
        );

        let mut vm = mk();
        for (proc_idx, p) in cp.program.procs.iter().enumerate() {
            for pc in 0..=p.code.len() {
                vm.seg_cache.insert(seg_key(proc_idx, pc), None);
            }
        }
        let poisoned = vm.run().unwrap();
        let stats = vm.tier2_stats();
        assert_eq!(stats.compiled, 0, "negative segment tiered up");
        assert_eq!(stats.hits, 0);
        assert!(
            vm.seg_misses > 2,
            "poisoned segments should be re-walked on every visit"
        );
        assert_eq!(poisoned, clean);
    }
}
