//! The machine model and the two interpreter loops.
//!
//! A [`Vm`] loads one program image — uncompressed bytecode or compressed
//! derivations plus the expanded grammar — resolves its global table
//! (playing the linker of §3), and runs it. Procedure calls allocate
//! frames on a stack region of the flat memory; arguments travel in a
//! contiguous block, "an x86 calling convention that passes all arguments
//! in contiguous memory" (Appendix 3). Indirect calls dispatch on
//! synthetic address ranges: trampoline addresses reach bytecoded
//! procedures, native addresses reach library routines — "the indirect
//! call may call conventional code (a library routine) or bytecode and
//! uses the same calling mechanism for both" (§3).

use crate::error::VmError;
use crate::exec::Flow;
use crate::memory::Memory;
use crate::natives::{self, Native, NativeOutcome};
use crate::value::Slot;
use pgr_bytecode::{GlobalEntry, Opcode, Program};
use pgr_grammar::{Grammar, Nt, Symbol, Terminal};
use pgr_telemetry::{names, Metrics, Recorder};
use std::collections::VecDeque;

/// First mapped data address (0 stays unmapped so null faults).
pub const DATA_BASE: u32 = 64;
/// Synthetic address of procedure 0's trampoline.
pub const TRAMP_BASE: u32 = 0xE000_0000;
/// Synthetic address of native routine 0.
pub const NATIVE_BASE: u32 = 0xF000_0000;

fn align8(v: u32) -> u32 {
    (v + 7) & !7
}

/// VM configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Bytes of bump-allocated heap for `malloc`.
    pub heap_size: u32,
    /// Bytes of frame stack.
    pub stack_size: u32,
    /// Instruction budget (an instruction here is one executed operator
    /// or derivation step).
    pub fuel: u64,
    /// Maximum procedure-call depth.
    pub max_call_depth: usize,
    /// Host stack bytes for the interpreter thread. The interpreters
    /// recurse on the host stack for procedure calls (like the paper's C
    /// interpreters), so deep VM recursion needs host head-room,
    /// especially in debug builds.
    pub host_stack_bytes: usize,
    /// Bytes served to `getchar`.
    pub input: Vec<u8>,
    /// Record the first N executed operators (0 = off). The trace lands
    /// in [`RunResult::trace`]; tracing is identical for both
    /// interpreters, which makes diverging runs easy to diff.
    pub trace_limit: usize,
    /// Telemetry destination for `vm.*` counters (per-opcode dispatch,
    /// calls, rule walks) and depth gauges. Defaults to the shared
    /// disabled recorder; the interpreter loops check one cached flag
    /// and touch nothing else when disabled.
    pub recorder: Recorder,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            heap_size: 1 << 20,
            stack_size: 1 << 20,
            fuel: 200_000_000,
            max_call_depth: 200,
            host_stack_bytes: 32 << 20,
            input: Vec::new(),
            trace_limit: 0,
            recorder: Recorder::disabled(),
        }
    }
}

/// One executed operator, as recorded by [`VmConfig::trace_limit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Descriptor index of the procedure executing.
    pub proc: u32,
    /// The operator.
    pub op: Opcode,
    /// Its literal operand (0 for operand-less operators).
    pub operand: u32,
    /// Call depth at execution time.
    pub depth: u32,
}

/// The outcome of a completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Exit code if the program called `exit`/`abort`, else `None`.
    pub exit_code: Option<i32>,
    /// The entry procedure's return value (zero when `exit` was called).
    pub ret: Slot,
    /// Everything the program printed.
    pub output: Vec<u8>,
    /// Executed operator/derivation steps.
    pub steps: u64,
    /// The first [`VmConfig::trace_limit`] executed operators.
    pub trace: Vec<TraceEvent>,
}

/// Internal control signal: either a hard error or an `exit()` request
/// unwinding to `run`.
#[derive(Debug)]
pub(crate) enum Stop {
    Error(VmError),
    Exit(i32),
}

impl From<VmError> for Stop {
    fn from(e: VmError) -> Stop {
        Stop::Error(e)
    }
}

/// Which representation the VM executes.
enum Repr<'p> {
    /// Uncompressed bytecode, run by `interp1`.
    Plain,
    /// Compressed derivations, run by `interp_nt`.
    Compressed {
        grammar: &'p Grammar,
        start: Nt,
        byte_nt: Nt,
    },
}

/// Frame context for the executing procedure.
pub(crate) struct FrameCtx {
    pub(crate) proc_idx: usize,
    pub(crate) args_base: u32,
    pub(crate) locals_base: u32,
}

/// A loaded program plus its execution state.
pub struct Vm<'p> {
    program: &'p Program,
    repr: Repr<'p>,
    pub(crate) mem: Memory,
    /// Resolved address per global-table entry.
    globals: Vec<u32>,
    pub(crate) output: Vec<u8>,
    pub(crate) input: VecDeque<u8>,
    pub(crate) rng_state: u64,
    pub(crate) arg_buf: Vec<u8>,
    heap_next: u32,
    heap_end: u32,
    stack_next: u32,
    stack_end: u32,
    fuel: u64,
    steps: u64,
    depth: usize,
    max_depth: usize,
    host_stack_bytes: usize,
    trace: Vec<TraceEvent>,
    trace_limit: usize,
    recorder: Recorder,
    /// Cached `recorder.is_enabled()`; hoisted at build time so the
    /// interpreter loops pay one branch, never an atomic load.
    telemetry_on: bool,
    /// Per-opcode dispatch counts indexed by opcode byte (256 entries
    /// when telemetry is on, empty otherwise).
    dispatch: Vec<u64>,
    calls: u64,
    rules_walked: u64,
    call_depth_peak: usize,
    walk_depth_peak: usize,
    operand_stack_peak: usize,
}

impl<'p> Vm<'p> {
    /// Load an uncompressed program.
    ///
    /// # Errors
    ///
    /// Fails with [`VmError::UnknownNative`] if the global table names a
    /// routine the VM does not provide.
    pub fn new(program: &'p Program, config: VmConfig) -> Result<Vm<'p>, VmError> {
        Vm::build(program, Repr::Plain, config)
    }

    /// Load a compressed program (the `program` field of a
    /// `CompressedProgram`) together with the expanded grammar it was
    /// encoded against. `start` and `byte_nt` are the grammar's start and
    /// `<byte>` non-terminals (`InitialGrammar::nt_start`/`nt_byte`).
    ///
    /// # Errors
    ///
    /// Same as [`Vm::new`].
    pub fn new_compressed(
        program: &'p Program,
        grammar: &'p Grammar,
        start: Nt,
        byte_nt: Nt,
        config: VmConfig,
    ) -> Result<Vm<'p>, VmError> {
        Vm::build(
            program,
            Repr::Compressed {
                grammar,
                start,
                byte_nt,
            },
            config,
        )
    }

    fn build(program: &'p Program, repr: Repr<'p>, config: VmConfig) -> Result<Vm<'p>, VmError> {
        let data_end = DATA_BASE + program.data.len() as u32;
        let bss_base = align8(data_end);
        let bss_end = bss_base + program.bss_size;
        let heap_base = align8(bss_end);
        let heap_end = heap_base + config.heap_size;
        let stack_base = align8(heap_end);
        let stack_end = stack_base + config.stack_size;

        let mut mem = Memory::new(stack_end);
        if !program.data.is_empty() {
            mem.store_bytes(DATA_BASE, &program.data)?;
        }

        let mut globals = Vec::with_capacity(program.globals.len());
        for entry in &program.globals {
            let addr = match entry {
                GlobalEntry::Data { offset, .. } => DATA_BASE + offset,
                GlobalEntry::Bss { offset, .. } => bss_base + offset,
                GlobalEntry::Proc { proc_index } => TRAMP_BASE + proc_index,
                GlobalEntry::Native { name } => {
                    let native = Native::resolve(name)
                        .ok_or_else(|| VmError::UnknownNative { name: name.clone() })?;
                    let idx = Native::ALL
                        .iter()
                        .position(|&n| n == native)
                        .expect("registry contains resolved natives");
                    NATIVE_BASE + idx as u32
                }
            };
            globals.push(addr);
        }

        Ok(Vm {
            program,
            repr,
            mem,
            globals,
            output: Vec::new(),
            input: config.input.iter().copied().collect(),
            rng_state: 1,
            arg_buf: Vec::new(),
            heap_next: heap_base,
            heap_end,
            stack_next: stack_base,
            stack_end,
            fuel: config.fuel,
            steps: 0,
            depth: 0,
            max_depth: config.max_call_depth,
            host_stack_bytes: config.host_stack_bytes,
            trace: Vec::new(),
            trace_limit: config.trace_limit,
            telemetry_on: config.recorder.is_enabled(),
            dispatch: if config.recorder.is_enabled() {
                vec![0; 256]
            } else {
                Vec::new()
            },
            recorder: config.recorder,
            calls: 0,
            rules_walked: 0,
            call_depth_peak: 0,
            walk_depth_peak: 0,
            operand_stack_peak: 0,
        })
    }

    /// Run the program from its entry procedure with no arguments.
    ///
    /// # Errors
    ///
    /// Any runtime fault; an `exit()` call is a normal completion.
    pub fn run(&mut self) -> Result<RunResult, VmError> {
        // Run on a dedicated thread with a generous stack: VM calls
        // recurse on the host stack, and debug-build frames are large.
        let stack = self.host_stack_bytes;
        std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name("pgr-vm".into())
                .stack_size(stack)
                .spawn_scoped(scope, || self.run_on_this_thread())
                .expect("spawn interpreter thread")
                .join()
                .expect("interpreter thread never panics")
        })
    }

    fn run_on_this_thread(&mut self) -> Result<RunResult, VmError> {
        let entry = self.program.entry as u16;
        let outcome = self.call_descriptor(entry);
        self.flush_telemetry();
        match outcome {
            Ok(ret) => Ok(RunResult {
                exit_code: None,
                ret,
                output: std::mem::take(&mut self.output),
                steps: self.steps,
                trace: std::mem::take(&mut self.trace),
            }),
            Err(Stop::Exit(code)) => Ok(RunResult {
                exit_code: Some(code),
                ret: Slot::ZERO,
                output: std::mem::take(&mut self.output),
                steps: self.steps,
                trace: std::mem::take(&mut self.trace),
            }),
            Err(Stop::Error(e)) => Err(e),
        }
    }

    /// Ship the accumulated `vm.*` counters and depth gauges to the
    /// recorder. Called once per run, on success and failure alike, so
    /// aborted programs still report the work they did.
    fn flush_telemetry(&mut self) {
        if !self.telemetry_on {
            return;
        }
        let mut batch = Metrics::new();
        batch.add(names::VM_STEPS, self.steps);
        batch.add(names::VM_CALLS, self.calls);
        batch.add(names::VM_RULES_WALKED, self.rules_walked);
        batch.gauge_max(names::VM_CALL_DEPTH_PEAK, self.call_depth_peak as u64);
        batch.gauge_max(names::VM_WALK_DEPTH_PEAK, self.walk_depth_peak as u64);
        batch.gauge_max(names::VM_OPERAND_STACK_PEAK, self.operand_stack_peak as u64);
        for (byte, &count) in self.dispatch.iter().enumerate() {
            if count > 0 {
                let label = Opcode::from_u8(byte as u8).map_or("unknown", Opcode::name);
                batch.add(names::vm_dispatch(label), count);
            }
        }
        self.recorder.record(batch);
    }

    /// Resolved address of a global-table entry.
    pub(crate) fn global_address(&self, index: u16) -> Option<u32> {
        self.globals.get(usize::from(index)).copied()
    }

    pub(crate) fn proc_name(&self, frame: &FrameCtx) -> String {
        self.program.procs[frame.proc_idx].name.clone()
    }

    /// Bump-allocate heap memory (8-byte aligned; zero-size requests get
    /// a distinct non-null address).
    pub(crate) fn heap_alloc(&mut self, size: u32) -> Result<u32, VmError> {
        let addr = self.heap_next;
        let end = addr
            .checked_add(align8(size.max(1)))
            .ok_or(VmError::HeapExhausted { requested: size })?;
        if end > self.heap_end {
            return Err(VmError::HeapExhausted { requested: size });
        }
        self.heap_next = end;
        Ok(addr)
    }

    /// Dispatch an indirect call: trampoline addresses reach bytecode,
    /// native addresses reach library routines.
    pub(crate) fn call_address(&mut self, addr: u32) -> Result<Slot, Stop> {
        if (TRAMP_BASE..TRAMP_BASE + self.program.procs.len() as u32).contains(&addr) {
            return self.call_descriptor((addr - TRAMP_BASE) as u16);
        }
        if (NATIVE_BASE..NATIVE_BASE + Native::ALL.len() as u32).contains(&addr) {
            let native = Native::ALL[(addr - NATIVE_BASE) as usize];
            let need = native.arg_bytes();
            if self.arg_buf.len() < need {
                return Err(Stop::Error(VmError::ArgUnderflow {
                    proc: format!("native {native:?}"),
                    need,
                    have: self.arg_buf.len(),
                }));
            }
            let args = self.arg_buf.split_off(self.arg_buf.len() - need);
            return match natives::call(self, native, &args) {
                Ok(NativeOutcome::Return(v)) => Ok(v),
                Ok(NativeOutcome::Exit(code)) => Err(Stop::Exit(code)),
                Err(e) => Err(Stop::Error(e)),
            };
        }
        Err(Stop::Error(VmError::BadCallTarget { addr }))
    }

    /// Call a bytecoded procedure by descriptor index. The callee's
    /// declared `arg_size` bytes are taken from the tail of the outgoing
    /// argument buffer — tail consumption is what lets calls nest inside
    /// argument lists.
    pub(crate) fn call_descriptor(&mut self, index: u16) -> Result<Slot, Stop> {
        let proc_idx = usize::from(index);
        let Some(proc) = self.program.procs.get(proc_idx) else {
            return Err(Stop::Error(VmError::BadDescriptor { index }));
        };
        if self.depth >= self.max_depth {
            return Err(Stop::Error(VmError::CallDepthExceeded {
                limit: self.max_depth,
            }));
        }
        let need = proc.arg_size as usize;
        if self.arg_buf.len() < need {
            return Err(Stop::Error(VmError::ArgUnderflow {
                proc: proc.name.clone(),
                need,
                have: self.arg_buf.len(),
            }));
        }
        let args = self.arg_buf.split_off(self.arg_buf.len() - need);

        let args_base = align8(self.stack_next);
        let locals_base = args_base + align8(need as u32);
        let frame_end = locals_base + align8(proc.frame_size);
        if frame_end > self.stack_end {
            return Err(Stop::Error(VmError::StackOverflow));
        }
        // Deterministic frames: zero the whole region, then copy args.
        let zero = vec![0u8; (frame_end - args_base) as usize];
        self.mem
            .store_bytes(args_base, &zero)
            .map_err(Stop::Error)?;
        if !args.is_empty() {
            self.mem
                .store_bytes(args_base, &args)
                .map_err(Stop::Error)?;
        }

        let saved_stack = self.stack_next;
        self.stack_next = frame_end;
        self.depth += 1;
        if self.telemetry_on {
            self.calls += 1;
            if self.depth > self.call_depth_peak {
                self.call_depth_peak = self.depth;
            }
        }
        let frame = FrameCtx {
            proc_idx,
            args_base,
            locals_base,
        };
        let result = match self.repr {
            Repr::Plain => self.interp1(&frame),
            Repr::Compressed {
                grammar,
                start,
                byte_nt,
            } => self.interp_nt(&frame, grammar, start, byte_nt),
        };
        self.depth -= 1;
        self.stack_next = saved_stack;
        result
    }

    fn record(&mut self, proc_idx: usize, op: Opcode, operand: u32) {
        if self.trace.len() < self.trace_limit {
            self.trace.push(TraceEvent {
                proc: proc_idx as u32,
                op,
                operand,
                depth: self.depth as u32,
            });
        }
    }

    fn burn_fuel(&mut self) -> Result<(), Stop> {
        if self.fuel == 0 {
            return Err(Stop::Error(VmError::OutOfFuel));
        }
        self.fuel -= 1;
        self.steps += 1;
        Ok(())
    }

    /// The initial interpreter: fetch an opcode and its literal operands
    /// from the code stream, execute, repeat (§5's `interp`/`interpret1`
    /// pair).
    fn interp1(&mut self, frame: &FrameCtx) -> Result<Slot, Stop> {
        let program = self.program;
        let proc = &program.procs[frame.proc_idx];
        let code = &proc.code;
        let mut pc = 0usize;
        let mut stack: Vec<Slot> = Vec::with_capacity(16);
        loop {
            self.burn_fuel()?;
            let Some(&byte) = code.get(pc) else {
                return Err(Stop::Error(VmError::FellOffEnd {
                    proc: proc.name.clone(),
                }));
            };
            let Some(op) = Opcode::from_u8(byte) else {
                return Err(Stop::Error(VmError::BadOpcode {
                    proc: proc.name.clone(),
                    offset: pc,
                }));
            };
            let n = op.operand_bytes();
            if pc + 1 + n > code.len() {
                return Err(Stop::Error(VmError::BadOpcode {
                    proc: proc.name.clone(),
                    offset: pc,
                }));
            }
            let mut operands = [0u8; 4];
            operands[..n].copy_from_slice(&code[pc + 1..pc + 1 + n]);
            pc += 1 + n;
            if self.telemetry_on {
                self.dispatch[usize::from(byte)] += 1;
            }
            if self.trace_limit > 0 {
                self.record(frame.proc_idx, op, u32::from_le_bytes(operands));
            }
            let flow = self.exec_op(op, operands, frame, &mut stack)?;
            if self.telemetry_on && stack.len() > self.operand_stack_peak {
                self.operand_stack_peak = stack.len();
            }
            match flow {
                Flow::Continue => {}
                Flow::Branch(label) => {
                    let target = proc
                        .labels
                        .get(usize::from(label))
                        .ok_or(VmError::BadLabel {
                            proc: proc.name.clone(),
                            index: label,
                        })?;
                    pc = *target as usize;
                }
                Flow::Return(v) => return Ok(v),
            }
        }
    }

    /// The compressed-bytecode interpreter (§5's `interpNT`): each stream
    /// byte selects a rule for the current non-terminal; the walk
    /// executes terminal operators (fetching literal operands from
    /// burnt-in rule bytes or the stream — the `GET` split) and recurses
    /// on non-terminals. A taken branch abandons the walk and restarts at
    /// the label's segment; a completed walk falls through to the next
    /// segment's derivation.
    fn interp_nt(
        &mut self,
        frame: &FrameCtx,
        grammar: &Grammar,
        start: Nt,
        byte_nt: Nt,
    ) -> Result<Slot, Stop> {
        let program = self.program;
        let proc = &program.procs[frame.proc_idx];
        let code = &proc.code;
        let corrupt = |offset: usize, detail: &'static str| {
            Stop::Error(VmError::CorruptDerivation {
                proc: proc.name.clone(),
                offset,
                detail,
            })
        };

        let mut pc = 0usize;
        let mut stack: Vec<Slot> = Vec::with_capacity(16);
        // The rule walk: (rule, position in its right-hand side).
        let mut walk: Vec<(pgr_grammar::RuleId, usize)> = Vec::with_capacity(32);

        loop {
            self.burn_fuel()?;
            if walk.is_empty() {
                // Start the next segment's derivation of <start>.
                if pc >= code.len() {
                    return Err(Stop::Error(VmError::FellOffEnd {
                        proc: proc.name.clone(),
                    }));
                }
                let b = code[pc];
                pc += 1;
                let Some(&rule) = grammar.rules_of(start).get(usize::from(b)) else {
                    return Err(corrupt(pc - 1, "no such start rule"));
                };
                walk.push((rule, 0));
                if self.telemetry_on {
                    self.rules_walked += 1;
                    if walk.len() > self.walk_depth_peak {
                        self.walk_depth_peak = walk.len();
                    }
                }
                continue;
            }

            let (rule_id, pos) = *walk.last().expect("walk is non-empty");
            let rule = grammar.rule(rule_id);
            if pos >= rule.rhs.len() {
                walk.pop();
                continue;
            }
            match rule.rhs[pos] {
                Symbol::N(nt) => {
                    walk.last_mut().expect("walk is non-empty").1 = pos + 1;
                    if pc >= code.len() {
                        return Err(corrupt(pc, "stream ends inside a derivation"));
                    }
                    let b = code[pc];
                    pc += 1;
                    let Some(&child) = grammar.rules_of(nt).get(usize::from(b)) else {
                        return Err(corrupt(pc - 1, "no such rule for non-terminal"));
                    };
                    walk.push((child, 0));
                    if self.telemetry_on {
                        self.rules_walked += 1;
                        if walk.len() > self.walk_depth_peak {
                            self.walk_depth_peak = walk.len();
                        }
                    }
                }
                Symbol::T(Terminal::Byte(_)) => {
                    return Err(corrupt(pc, "literal byte not owned by an opcode"));
                }
                Symbol::T(Terminal::Op(op)) => {
                    // Fetch the operator's literal operands: each comes
                    // either burnt into the rule or from the stream via a
                    // <byte> expansion (§5's GET).
                    let n = op.operand_bytes();
                    let mut operands = [0u8; 4];
                    let mut p = pos + 1;
                    for slot in operands.iter_mut().take(n) {
                        match rule.rhs.get(p) {
                            Some(Symbol::T(Terminal::Byte(b))) => *slot = *b,
                            Some(Symbol::N(nt)) if *nt == byte_nt => {
                                if pc >= code.len() {
                                    return Err(corrupt(pc, "stream ends inside operands"));
                                }
                                *slot = code[pc];
                                pc += 1;
                            }
                            _ => return Err(corrupt(pc, "operand layout violated")),
                        }
                        p += 1;
                    }
                    walk.last_mut().expect("walk is non-empty").1 = p;

                    if self.telemetry_on {
                        self.dispatch[usize::from(op as u8)] += 1;
                    }
                    if self.trace_limit > 0 {
                        self.record(frame.proc_idx, op, u32::from_le_bytes(operands));
                    }
                    let flow = self.exec_op(op, operands, frame, &mut stack)?;
                    if self.telemetry_on && stack.len() > self.operand_stack_peak {
                        self.operand_stack_peak = stack.len();
                    }
                    match flow {
                        Flow::Continue => {}
                        Flow::Branch(label) => {
                            let target =
                                proc.labels
                                    .get(usize::from(label))
                                    .ok_or(VmError::BadLabel {
                                        proc: proc.name.clone(),
                                        index: label,
                                    })?;
                            pc = *target as usize;
                            walk.clear();
                        }
                        Flow::Return(v) => return Ok(v),
                    }
                }
            }
        }
    }
}
