//! Execution-stack slots.
//!
//! The paper's interpreter keeps "a small execution stack \[whose\] elements
//! use a union of the basic machine types" (§5). [`Slot`] is that union:
//! 64 raw bits read back as `i32`/`u32`/`f32` (low half) or `f64` (all of
//! it), exactly like a C `union { int i; unsigned u; float f; double d; }`
//! on a little-endian machine.

use std::fmt;

/// One evaluation-stack slot: a 64-bit union of the machine types.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Slot(u64);

impl Slot {
    /// The all-zero slot (also the "void" return value).
    pub const ZERO: Slot = Slot(0);

    /// Wrap an unsigned integer (zero-extended).
    pub fn from_u(v: u32) -> Slot {
        Slot(u64::from(v))
    }

    /// Wrap a signed integer (stored in the low 32 bits).
    pub fn from_i(v: i32) -> Slot {
        Slot(u64::from(v as u32))
    }

    /// Wrap a float (its bits occupy the low 32 bits).
    pub fn from_f(v: f32) -> Slot {
        Slot(u64::from(v.to_bits()))
    }

    /// Wrap a double (its bits occupy the whole slot).
    pub fn from_d(v: f64) -> Slot {
        Slot(v.to_bits())
    }

    /// Construct from raw bits (e.g. when reloading a spilled slot).
    pub fn from_bits(bits: u64) -> Slot {
        Slot(bits)
    }

    /// The slot as an unsigned integer (low 32 bits).
    pub fn u(self) -> u32 {
        self.0 as u32
    }

    /// The slot as a signed integer (low 32 bits).
    pub fn i(self) -> i32 {
        self.0 as u32 as i32
    }

    /// The slot as a float (low 32 bits reinterpreted).
    pub fn f(self) -> f32 {
        f32::from_bits(self.0 as u32)
    }

    /// The slot as a double (all 64 bits reinterpreted).
    pub fn d(self) -> f64 {
        f64::from_bits(self.0)
    }

    /// The raw bits.
    pub fn bits(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Slot({:#x} u={} i={})", self.0, self.u(), self.i())
    }
}

impl From<u32> for Slot {
    fn from(v: u32) -> Slot {
        Slot::from_u(v)
    }
}

impl From<i32> for Slot {
    fn from(v: i32) -> Slot {
        Slot::from_i(v)
    }
}

impl From<f32> for Slot {
    fn from(v: f32) -> Slot {
        Slot::from_f(v)
    }
}

impl From<f64> for Slot {
    fn from(v: f64) -> Slot {
        Slot::from_d(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_views_share_bits() {
        let s = Slot::from_i(-1);
        assert_eq!(s.u(), u32::MAX);
        assert_eq!(s.i(), -1);
        let s = Slot::from_u(0x8000_0000);
        assert_eq!(s.i(), i32::MIN);
    }

    #[test]
    fn float_roundtrips() {
        let s = Slot::from_f(3.5);
        assert_eq!(s.f(), 3.5);
        // Low 32 bits only; the double view sees the float's bit pattern
        // as a tiny denormal, exactly like the C union would.
        assert_eq!(s.bits() >> 32, 0);
        let s = Slot::from_d(-2.25);
        assert_eq!(s.d(), -2.25);
    }

    #[test]
    fn zero_is_zero_everywhere() {
        assert_eq!(Slot::ZERO.u(), 0);
        assert_eq!(Slot::ZERO.i(), 0);
        assert_eq!(Slot::ZERO.f(), 0.0);
        assert_eq!(Slot::ZERO.d(), 0.0);
    }

    #[test]
    fn from_impls_match_constructors() {
        assert_eq!(Slot::from(7u32), Slot::from_u(7));
        assert_eq!(Slot::from(-7i32), Slot::from_i(-7));
        assert_eq!(Slot::from(1.5f32), Slot::from_f(1.5));
        assert_eq!(Slot::from(1.5f64), Slot::from_d(1.5));
        assert_eq!(Slot::from_bits(42).bits(), 42);
    }
}
