//! The interpreter generator and the size model.
//!
//! The paper's system emits the compressed-bytecode interpreter from the
//! original interpreter plus the expanded grammar (§2, Fig. 1): "each
//! instruction of the new interpreter implements an entire rule in the
//! expanded grammar", realized as a driver (`interpNT`) over "a table
//! \[that\] encodes for each rule the sequence of terminals and
//! non-terminals on the rule's right-hand side" (§5).
//!
//! This module emits compilable-style C for the three artifacts —
//! `interp1.c` (the original switch interpreter), `tables.c` (the rule
//! tables), and `interp_nt.c` (the driver) — and prices them with a
//! deterministic per-construct object-size model. The paper's absolute
//! numbers (7,855 B initial, 18,962 B compressed, 10,525 B of grammar)
//! came from MSVC-compiled x86 objects; our model preserves the
//! *relations* those numbers exhibit: a small fixed driver cost, and a
//! delta dominated by the grammar tables.

use crate::natives::Native;
use pgr_bytecode::{Opcode, StackKind, TypeSuffix};
use pgr_grammar::encode::grammar_size;
use pgr_grammar::{Grammar, Nt, Symbol, Terminal};
use std::fmt::Write as _;

/// Modeled object bytes of the interpreter scaffolding shared by both
/// interpreters: `istate`, the fetch loop, frame handling, trampoline
/// glue, and the native-call shims.
pub const SCAFFOLD_BYTES: usize = 3000;

/// Modeled object bytes of the `interpNT` driver the compressed
/// interpreter adds on top (the rule walk and the split `GET`).
pub const NT_DRIVER_BYTES: usize = 620;

/// Modeled object bytes of one opcode's case in the switch.
pub fn case_bytes(op: Opcode) -> usize {
    use Opcode::*;
    match op {
        // Indirect calls marshal arguments and dispatch on the address
        // ranges, the costliest handlers.
        CALLD | CALLF | CALLU => 110,
        CALLV => 104,
        LocalCALLD | LocalCALLF | LocalCALLU => 100,
        LocalCALLV => 96,
        // Block operations loop over memory.
        ASGNB => 90,
        ARGB => 80,
        BrTrue => 56,
        JUMPV => 30,
        LIT1 => 36,
        LIT2 => 40,
        LIT3 => 44,
        LIT4 => 48,
        ADDRFP | ADDRGP | ADDRLP => 48,
        RETV => 24,
        LABELV => 6,
        _ => match (op.kind(), op.suffix()) {
            (StackKind::V2, _) => 48,
            (StackKind::V1, TypeSuffix::C | TypeSuffix::S | TypeSuffix::U)
                if op.name().starts_with("INDIR") =>
            {
                44
            }
            (StackKind::V1, TypeSuffix::D | TypeSuffix::F) if op.name().starts_with("INDIR") => 44,
            (StackKind::V1, _) if op.name().starts_with("CV") => 36,
            (StackKind::V1, _) => 32, // NEG*, BCOMU
            (StackKind::X2, _) => 44, // ASGN scalar
            (StackKind::X1, _) if op.name().starts_with("ARG") => 40,
            (StackKind::X1, _) if op.name().starts_with("POP") => 12,
            (StackKind::X1, _) if op.name().starts_with("RET") => 40,
            _ => 40,
        },
    }
}

/// The modeled sizes reported by the §6 interpreter-size experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterpreterSizes {
    /// The initial, uncompressed-bytecode interpreter.
    pub initial: usize,
    /// The generated compressed-bytecode interpreter, including its rule
    /// tables.
    pub compressed: usize,
    /// The serialized grammar alone (it "accounts for most of the
    /// difference in interpreter size", §6).
    pub grammar: usize,
}

impl InterpreterSizes {
    /// Extra bytes the compressed interpreter costs over the initial one.
    pub fn delta(&self) -> usize {
        self.compressed - self.initial
    }
}

/// Price both interpreters for a given expanded grammar.
pub fn interpreter_sizes(grammar: &Grammar) -> InterpreterSizes {
    let initial = SCAFFOLD_BYTES + Opcode::ALL.iter().map(|&op| case_bytes(op)).sum::<usize>();
    let grammar_bytes = grammar_size(grammar);
    InterpreterSizes {
        initial,
        compressed: initial + NT_DRIVER_BYTES + grammar_bytes,
        grammar: grammar_bytes,
    }
}

fn case_body(op: Opcode) -> String {
    use StackKind::*;
    let name = op.name();
    let pops = op.kind().pops();
    let mut body = String::new();
    for (i, var) in ["b", "a"].iter().take(pops).enumerate() {
        let _ = i;
        let _ = writeln!(body, "        val {var} = istate->stack[istate->top--];");
    }
    match op.kind() {
        V0 => {
            let _ = writeln!(
                body,
                "        istate->stack[++istate->top].u = GET({});",
                op.operand_bytes()
            );
        }
        V1 | V2 => {
            let _ = writeln!(
                body,
                "        istate->stack[++istate->top] = op_{name}(istate{});",
                if pops == 2 { ", a, b" } else { ", b" }
            );
        }
        X0 | X1 | X2 => {
            let operand = if op.operand_bytes() > 0 {
                format!("GET({})", op.operand_bytes())
            } else {
                "0".to_string()
            };
            let args = match pops {
                2 => ", a, b".to_string(),
                1 => ", b".to_string(),
                _ => String::new(),
            };
            let _ = writeln!(body, "        op_{name}(istate, {operand}{args});");
        }
        Label => {
            let _ = writeln!(body, "        /* branch target marker */");
        }
    }
    body
}

/// Emit C source for the initial interpreter's switch (`interpret1`) and
/// fetch loop (`interp`), in the shape of §5.
pub fn interp1_source() -> String {
    let mut out = String::new();
    out.push_str(
        "/* interp1.c -- generated: the initial bytecode interpreter (paper SS5). */\n\
         #include \"istate.h\"\n\n\
         void interpret1(unsigned char op, istate *istate) {\n\
         \tswitch (op) {\n",
    );
    for &op in Opcode::ALL {
        let _ = writeln!(out, "\tcase {}: {{", op.name());
        out.push_str(&case_body(op));
        out.push_str("        return;\n\t}\n");
    }
    out.push_str(
        "\t}\n}\n\n\
         void interp(istate *istate) {\n\
         \twhile (1)\n\
         \t\tinterpret1(istate->code[istate->pc++], istate);\n\
         }\n",
    );
    // Native shims, so the emitted artifact is self-describing.
    out.push_str("\n/* native library shims */\n");
    for &n in Native::ALL {
        let _ = writeln!(out, "/* extern: {n:?}, {} arg bytes */", n.arg_bytes());
    }
    out
}

/// Emit C source for the expanded grammar's rule tables: per
/// non-terminal, an index of rule offsets and a flat symbol stream, using
/// the same symbol encoding as [`pgr_grammar::encode`].
pub fn rule_tables_source(grammar: &Grammar) -> String {
    let mut out = String::new();
    out.push_str("/* tables.c -- generated: expanded-grammar rule tables (paper SS5). */\n\n");
    let nts = grammar.nt_count();
    for nt in 0..nts {
        let nt = Nt(nt as u16);
        let mut stream: Vec<u8> = Vec::new();
        let mut offsets: Vec<usize> = Vec::new();
        for &id in grammar.rules_of(nt) {
            offsets.push(stream.len());
            let rule = grammar.rule(id);
            stream.push(rule.rhs.len() as u8);
            for &sym in &rule.rhs {
                match sym {
                    Symbol::N(n) => stream.push(n.0 as u8),
                    Symbol::T(Terminal::Op(op)) => stream.push((nts + op as usize) as u8),
                    Symbol::T(Terminal::Byte(b)) => {
                        let v = nts + Opcode::COUNT + b as usize;
                        if v < 255 {
                            stream.push(v as u8);
                        } else {
                            stream.push(255);
                            stream.push(b);
                        }
                    }
                }
            }
        }
        let name = grammar.nt_name(nt);
        let _ = writeln!(
            out,
            "static const unsigned short nt_{name}_offsets[{}] = {{",
            offsets.len()
        );
        for chunk in offsets.chunks(12) {
            let row: Vec<String> = chunk.iter().map(|o| o.to_string()).collect();
            let _ = writeln!(out, "\t{},", row.join(", "));
        }
        out.push_str("};\n");
        let _ = writeln!(
            out,
            "static const unsigned char nt_{name}_rules[{}] = {{",
            stream.len()
        );
        for chunk in stream.chunks(16) {
            let row: Vec<String> = chunk.iter().map(|b| b.to_string()).collect();
            let _ = writeln!(out, "\t{},", row.join(", "));
        }
        out.push_str("};\n\n");
    }
    out
}

/// Emit C source for the Appendix 3 packaging of a program: per
/// procedure the `_f_code[]`/`_f_labels[]` vectors, the descriptor table
/// `_procs[]`, the global-address table `_globals[]`, and a trampoline
/// for every procedure whose address escapes ("for each procedure f, the
/// system creates two vectors … a global table of procedure descriptors
/// packages pointers to these vectors with the procedure's framesize").
pub fn packaging_source(program: &pgr_bytecode::Program) -> String {
    use pgr_bytecode::GlobalEntry;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* package.c -- generated: Appendix 3 packaging, {} procedures. */\n",
        program.procs.len()
    );
    for proc in &program.procs {
        let _ = writeln!(
            out,
            "static unsigned char _{}_code[{}] = {{",
            proc.name,
            proc.code.len().max(1)
        );
        for chunk in proc.code.chunks(16) {
            let row: Vec<String> = chunk.iter().map(|b| b.to_string()).collect();
            let _ = writeln!(out, "\t{},", row.join(", "));
        }
        out.push_str("};\n");
        let _ = writeln!(
            out,
            "static short _{}_labels[{}] = {{",
            proc.name,
            proc.labels.len().max(1)
        );
        for chunk in proc.labels.chunks(12) {
            let row: Vec<String> = chunk.iter().map(|l| l.to_string()).collect();
            let _ = writeln!(out, "\t{},", row.join(", "));
        }
        out.push_str("};\n\n");
    }

    out.push_str("proc _procs[] = {\n");
    for proc in &program.procs {
        let _ = writeln!(
            out,
            "\t{{ {}, _{}_code, _{}_labels }},",
            proc.frame_size, proc.name, proc.name
        );
    }
    out.push_str("};\n\n");

    out.push_str("void *_globals[] = {\n");
    for entry in &program.globals {
        match entry {
            GlobalEntry::Data { name, offset } => {
                let _ = writeln!(out, "\t_data + {offset}, /* {name} */");
            }
            GlobalEntry::Bss { name, offset } => {
                let _ = writeln!(out, "\t_bss + {offset}, /* {name} */");
            }
            GlobalEntry::Proc { proc_index } => {
                let _ = writeln!(
                    out,
                    "\t&{}, /* trampoline */",
                    program.procs[*proc_index as usize].name
                );
            }
            GlobalEntry::Native { name } => {
                let _ = writeln!(out, "\t&{name},");
            }
        }
    }
    out.push_str("};\n\n/* trampolines (only for address-taken procedures, SS3) */\n");
    for (idx, proc) in program.procs.iter().enumerate() {
        if !proc.needs_trampoline {
            continue;
        }
        let _ = writeln!(
            out,
            "int {}(unsigned arg1) {{\n\treturn interpret({idx}, &arg1).i;\n}}",
            proc.name
        );
    }
    out
}

/// Emit C source for the `interpNT` driver of §5.
pub fn interp_nt_source() -> String {
    "/* interp_nt.c -- generated: the compressed-bytecode interpreter (paper SS5). */\n\
     #include \"istate.h\"\n\
     #include \"tables.h\"\n\n\
     /* Fetch the next rule for `nt`, then advance across its right-hand\n\
      * side: execute terminals via interpret1 (literal operands may be\n\
      * burnt into the rule or read from the stream -- the GET split),\n\
      * and recurse on non-terminals. */\n\
     void interpNT(istate *istate, int nt) {\n\
     \tunsigned char b = istate->code[istate->pc++];\n\
     \tconst unsigned char *rhs = nt_rules(nt, b);\n\
     \tint n = *rhs++;\n\
     \tfor (int i = 0; i < n && !istate->jumped; i++) {\n\
     \t\tint sym = rhs[i];\n\
     \t\tif (sym < NT_COUNT)\n\
     \t\t\tinterpNT(istate, sym);\n\
     \t\telse if (sym < NT_COUNT + OP_COUNT)\n\
     \t\t\tinterpret1((unsigned char)(sym - NT_COUNT), istate);\n\
     \t\telse\n\
     \t\t\tget_push_literal(istate, rhs, &i);\n\
     \t}\n\
     }\n\n\
     void interp(istate *istate) {\n\
     \twhile (1) {\n\
     \t\tistate->jumped = 0;\n\
     \t\tinterpNT(istate, NT_start);\n\
     \t}\n\
     }\n"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgr_grammar::{InitialGrammar, RuleOrigin};

    #[test]
    fn initial_interpreter_is_small() {
        let ig = InitialGrammar::build();
        let sizes = interpreter_sizes(&ig.grammar);
        // The paper reports 7,855 bytes; the model should land in that
        // neighbourhood.
        assert!(
            (6_000..10_000).contains(&sizes.initial),
            "initial = {}",
            sizes.initial
        );
    }

    #[test]
    fn compressed_delta_is_driver_plus_grammar() {
        let ig = InitialGrammar::build();
        let sizes = interpreter_sizes(&ig.grammar);
        assert_eq!(sizes.delta(), NT_DRIVER_BYTES + sizes.grammar);
    }

    #[test]
    fn grammar_growth_flows_into_the_compressed_size() {
        let ig = InitialGrammar::build();
        let before = interpreter_sizes(&ig.grammar);
        let mut g = ig.grammar.clone();
        for _ in 0..50 {
            g.add_rule(
                ig.nt_start,
                vec![
                    Symbol::N(ig.nt_start),
                    Symbol::op(Opcode::JUMPV),
                    Symbol::byte(0),
                    Symbol::N(ig.nt_byte),
                ],
                RuleOrigin::Original,
            );
        }
        let after = interpreter_sizes(&g);
        assert_eq!(after.initial, before.initial);
        assert!(after.compressed > before.compressed);
        assert_eq!(
            after.delta() - before.delta(),
            after.grammar - before.grammar
        );
    }

    #[test]
    fn emitted_c_covers_every_opcode() {
        let src = interp1_source();
        for &op in Opcode::ALL {
            assert!(
                src.contains(&format!("case {}:", op.name())),
                "missing case for {}",
                op.name()
            );
        }
        assert!(src.contains("while (1)"));
    }

    #[test]
    fn packaging_emits_appendix_3_shapes() {
        let program = pgr_bytecode::asm::assemble(
            "proc main frame=12 args=0\n\tLIT1 1\n\tBrTrue 0\n\tlabel 0\n\tRETV\nendproc\n\
             proc helper frame=0 args=4\n\tADDRFP 0\n\tINDIRU\n\tRETU\nendproc\n\
             native putchar\nprocaddr helper\nentry main\n",
        )
        .unwrap();
        let src = packaging_source(&program);
        assert!(src.contains("static unsigned char _main_code["));
        assert!(src.contains("static short _main_labels["));
        assert!(src.contains("{ 12, _main_code, _main_labels }"));
        assert!(src.contains("&putchar"));
        assert!(src.contains("&helper, /* trampoline */"));
        // main is the entry and helper is address-taken: both get stubs.
        assert!(src.contains("int main(unsigned arg1)"));
        assert!(src.contains("int helper(unsigned arg1)"));
        assert!(src.contains("return interpret(1, &arg1).i"));
    }

    #[test]
    fn rule_tables_cover_every_nonterminal() {
        let ig = InitialGrammar::build();
        let src = rule_tables_source(&ig.grammar);
        for nt in 0..ig.grammar.nt_count() {
            let name = ig.grammar.nt_name(Nt(nt as u16));
            assert!(src.contains(&format!("nt_{name}_offsets")));
            assert!(src.contains(&format!("nt_{name}_rules")));
        }
        assert!(interp_nt_source().contains("interpNT"));
    }
}
