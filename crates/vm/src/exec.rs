//! Shared operator semantics.
//!
//! Both interpreters execute the same operators; they differ only in how
//! they fetch opcodes and literal operands. `interp1` reads both from the
//! code stream; `interp_nt` reads opcodes from rule right-hand sides and
//! operands from either burnt-in rule bytes or the compressed stream
//! (§5). This module is the single `switch` body they share — the
//! equivalent of the paper's `interpret1`/`interpret2` cases.

use crate::error::VmError;
use crate::machine::{FrameCtx, Stop, Vm};
use crate::value::Slot;
use pgr_bytecode::Opcode;

/// What an executed operator asks the driving loop to do next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Flow {
    /// Fall through to the next operator.
    Continue,
    /// Transfer control to the label-table entry.
    Branch(u16),
    /// Return from the current procedure with a value.
    Return(Slot),
}

impl<'p> Vm<'p> {
    /// Execute one operator against the evaluation stack.
    ///
    /// `operands` holds the operator's literal bytes (already fetched by
    /// the caller); `frame` locates the current procedure's argument and
    /// local areas.
    ///
    /// # Errors
    ///
    /// Runtime faults ([`VmError`]) and `exit()` requests propagate as
    /// [`Stop`].
    pub(crate) fn exec_op(
        &mut self,
        op: Opcode,
        operands: [u8; 4],
        frame: &FrameCtx,
        stack: &mut Vec<Slot>,
    ) -> Result<Flow, Stop> {
        use Opcode::*;

        macro_rules! pop {
            () => {
                stack.pop().ok_or_else(|| {
                    Stop::from(VmError::StackUnderflow {
                        proc: self.proc_name(frame),
                        opcode: op,
                    })
                })?
            };
        }
        macro_rules! bin_u {
            (|$a:ident, $b:ident| $e:expr) => {{
                let $b = pop!().u();
                let $a = pop!().u();
                stack.push(Slot::from_u($e));
            }};
        }
        macro_rules! bin_i {
            (|$a:ident, $b:ident| $e:expr) => {{
                let $b = pop!().i();
                let $a = pop!().i();
                stack.push(Slot::from_i($e));
            }};
        }
        macro_rules! bin_f {
            (|$a:ident, $b:ident| $e:expr) => {{
                let $b = pop!().f();
                let $a = pop!().f();
                stack.push(Slot::from_f($e));
            }};
        }
        macro_rules! bin_d {
            (|$a:ident, $b:ident| $e:expr) => {{
                let $b = pop!().d();
                let $a = pop!().d();
                stack.push(Slot::from_d($e));
            }};
        }
        macro_rules! cmp {
            ($view:ident, |$a:ident, $b:ident| $e:expr) => {{
                let $b = pop!().$view();
                let $a = pop!().$view();
                stack.push(Slot::from_u(u32::from($e)));
            }};
        }
        macro_rules! nonzero_i {
            ($v:expr) => {{
                let v = $v;
                if v == 0 {
                    return Err(Stop::from(VmError::DivideByZero {
                        proc: self.proc_name(frame),
                    }));
                }
                v
            }};
        }

        let operand_u16 = u16::from_le_bytes([operands[0], operands[1]]);
        let operand_u32 = u32::from_le_bytes(operands);

        match op {
            // ---- binary value operators (<v2>) ------------------------
            ADDD => bin_d!(|a, b| a + b),
            DIVD => bin_d!(|a, b| a / b),
            MULD => bin_d!(|a, b| a * b),
            SUBD => bin_d!(|a, b| a - b),
            ADDF => bin_f!(|a, b| a + b),
            DIVF => bin_f!(|a, b| a / b),
            MULF => bin_f!(|a, b| a * b),
            SUBF => bin_f!(|a, b| a - b),
            DIVI => bin_i!(|a, b| a.wrapping_div(nonzero_i!(b))),
            MODI => bin_i!(|a, b| a.wrapping_rem(nonzero_i!(b))),
            MULI => bin_i!(|a, b| a.wrapping_mul(b)),
            ADDU => bin_u!(|a, b| a.wrapping_add(b)),
            DIVU => bin_u!(|a, b| a / nonzero_i!(b)),
            MODU => bin_u!(|a, b| a % nonzero_i!(b)),
            MULU => bin_u!(|a, b| a.wrapping_mul(b)),
            SUBU => bin_u!(|a, b| a.wrapping_sub(b)),
            BANDU => bin_u!(|a, b| a & b),
            BORU => bin_u!(|a, b| a | b),
            BXORU => bin_u!(|a, b| a ^ b),
            EQD => cmp!(d, |a, b| a == b),
            GED => cmp!(d, |a, b| a >= b),
            GTD => cmp!(d, |a, b| a > b),
            LED => cmp!(d, |a, b| a <= b),
            LTD => cmp!(d, |a, b| a < b),
            NED => cmp!(d, |a, b| a != b),
            EQF => cmp!(f, |a, b| a == b),
            GEF => cmp!(f, |a, b| a >= b),
            GTF => cmp!(f, |a, b| a > b),
            LEF => cmp!(f, |a, b| a <= b),
            LTF => cmp!(f, |a, b| a < b),
            NEF => cmp!(f, |a, b| a != b),
            GEI => cmp!(i, |a, b| a >= b),
            GTI => cmp!(i, |a, b| a > b),
            LEI => cmp!(i, |a, b| a <= b),
            LTI => cmp!(i, |a, b| a < b),
            EQU => cmp!(u, |a, b| a == b),
            GEU => cmp!(u, |a, b| a >= b),
            GTU => cmp!(u, |a, b| a > b),
            LEU => cmp!(u, |a, b| a <= b),
            LTU => cmp!(u, |a, b| a < b),
            NEU => cmp!(u, |a, b| a != b),
            LSHI => bin_i!(|a, b| a.wrapping_shl(b as u32 & 31)),
            LSHU => bin_u!(|a, b| a.wrapping_shl(b & 31)),
            RSHI => bin_i!(|a, b| a.wrapping_shr(b as u32 & 31)),
            RSHU => bin_u!(|a, b| a.wrapping_shr(b & 31)),

            // ---- unary value operators (<v1>) -------------------------
            BCOMU => {
                let a = pop!().u();
                stack.push(Slot::from_u(!a));
            }
            CALLD | CALLF | CALLU | CALLV => {
                let addr = pop!().u();
                let ret = self.call_address(addr)?;
                if op != CALLV {
                    stack.push(ret);
                }
            }
            CVDF => {
                let v = pop!().d();
                stack.push(Slot::from_f(v as f32));
            }
            CVDI => {
                let v = pop!().d();
                stack.push(Slot::from_i(v as i32));
            }
            CVFD => {
                let v = pop!().f();
                stack.push(Slot::from_d(f64::from(v)));
            }
            CVFI => {
                let v = pop!().f();
                stack.push(Slot::from_i(v as i32));
            }
            CVID => {
                let v = pop!().i();
                stack.push(Slot::from_d(f64::from(v)));
            }
            CVIF => {
                let v = pop!().i();
                stack.push(Slot::from_f(v as f32));
            }
            CVI1I4 => {
                let v = pop!().u();
                stack.push(Slot::from_i(i32::from(v as u8 as i8)));
            }
            CVI2I4 => {
                let v = pop!().u();
                stack.push(Slot::from_i(i32::from(v as u16 as i16)));
            }
            CVU1U4 => {
                let v = pop!().u();
                stack.push(Slot::from_u(v & 0xFF));
            }
            CVU2U4 => {
                let v = pop!().u();
                stack.push(Slot::from_u(v & 0xFFFF));
            }
            INDIRC => {
                let p = pop!().u();
                stack.push(Slot::from_u(u32::from(self.mem.load_u8(p)?)));
            }
            INDIRS => {
                let p = pop!().u();
                stack.push(Slot::from_u(u32::from(self.mem.load_u16(p)?)));
            }
            INDIRU => {
                let p = pop!().u();
                stack.push(Slot::from_u(self.mem.load_u32(p)?));
            }
            INDIRF => {
                let p = pop!().u();
                stack.push(Slot::from_f(self.mem.load_f32(p)?));
            }
            INDIRD => {
                let p = pop!().u();
                stack.push(Slot::from_d(self.mem.load_f64(p)?));
            }
            NEGD => {
                let v = pop!().d();
                stack.push(Slot::from_d(-v));
            }
            NEGF => {
                let v = pop!().f();
                stack.push(Slot::from_f(-v));
            }
            NEGI => {
                let v = pop!().i();
                stack.push(Slot::from_i(v.wrapping_neg()));
            }

            // ---- value leaves (<v0>) ----------------------------------
            ADDRFP => stack.push(Slot::from_u(frame.args_base + u32::from(operand_u16))),
            ADDRLP => stack.push(Slot::from_u(frame.locals_base + u32::from(operand_u16))),
            ADDRGP => {
                let addr = self.global_address(operand_u16).ok_or_else(|| {
                    Stop::from(VmError::BadGlobal {
                        proc: self.proc_name(frame),
                        index: operand_u16,
                    })
                })?;
                stack.push(Slot::from_u(addr));
            }
            LocalCALLD | LocalCALLF | LocalCALLU | LocalCALLV => {
                let ret = self.call_descriptor(operand_u16)?;
                if op != LocalCALLV {
                    stack.push(ret);
                }
            }
            LIT1 | LIT2 | LIT3 | LIT4 => stack.push(Slot::from_u(operand_u32)),

            // ---- binary statements (<x2>) -----------------------------
            ASGNB => {
                let p = pop!().u();
                let q = pop!().u();
                let size = u32::from(operand_u16);
                if size > 0 {
                    self.mem.copy(p, q, size)?;
                }
            }
            ASGNC => {
                let p = pop!().u();
                let v = pop!().u();
                self.mem.store_u8(p, v as u8)?;
            }
            ASGNS => {
                let p = pop!().u();
                let v = pop!().u();
                self.mem.store_u16(p, v as u16)?;
            }
            ASGNU => {
                let p = pop!().u();
                let v = pop!().u();
                self.mem.store_u32(p, v)?;
            }
            ASGNF => {
                let p = pop!().u();
                let v = pop!();
                self.mem.store_u32(p, v.u())?; // float bits
            }
            ASGND => {
                let p = pop!().u();
                let v = pop!();
                self.mem.store_u64(p, v.bits())?;
            }

            // ---- unary statements (<x1>) ------------------------------
            ARGB => {
                let addr = pop!().u();
                let size = u32::from(operand_u16);
                let bytes = self.mem.load_bytes(addr, size)?.to_vec();
                self.arg_buf.extend_from_slice(&bytes);
            }
            ARGD => {
                let v = pop!();
                self.arg_buf.extend_from_slice(&v.bits().to_le_bytes());
            }
            ARGF | ARGU => {
                let v = pop!();
                self.arg_buf.extend_from_slice(&v.u().to_le_bytes());
            }
            BrTrue => {
                let flag = pop!().u();
                if flag != 0 {
                    return Ok(Flow::Branch(operand_u16));
                }
            }
            POPD | POPF | POPU => {
                let _ = pop!();
            }
            RETD | RETF | RETU => {
                let v = pop!();
                return Ok(Flow::Return(v));
            }

            // ---- leaf statements (<x0>) -------------------------------
            JUMPV => return Ok(Flow::Branch(operand_u16)),
            RETV => return Ok(Flow::Return(Slot::ZERO)),

            LABELV => {} // branch-target marker: a no-op when executed
        }
        Ok(Flow::Continue)
    }
}
