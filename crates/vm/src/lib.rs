//! # pgr-vm
//!
//! The two interpreters of *Bytecode Compression via Profiled Grammar
//! Rewriting* (Evans & Fraser, PLDI 2001, §5), plus the execution
//! substrate they share and the interpreter *generator*.
//!
//! * The **initial interpreter** (`interp1`) executes uncompressed
//!   bytecode: an infinite fetch loop around a switch with one case per
//!   operator, manipulating a small execution stack of machine-type
//!   unions.
//! * The **compressed-bytecode interpreter** (`interp_nt`) "adds another
//!   level of interpretation": each compressed byte selects a rule of the
//!   current non-terminal; the interpreter advances across the rule's
//!   right-hand side, executing terminals and recursing on non-terminals.
//!   Literal operands may be split between the rule (burnt-in bytes) and
//!   the instruction stream — the `GET` logic of §5. By default it runs
//!   over a [`ruleprog::RuleProgram`] snapshot — the grammar precompiled
//!   to flat micro-ops at load time — with a decoded-segment cache that
//!   replays loop back-edges without re-walking derivations; the
//!   reference rule walker stays selectable via
//!   [`VmConfig::reference_walker`] as the executable specification.
//!
//! Both interpreters share one operator semantics ([`exec`]) over one
//! machine model ([`Vm`]): a flat little-endian memory holding data, BSS,
//! a bump-allocated heap and a frame stack; a global-address table
//! resolved at load time (the "linker" of §3); trampoline-style indirect
//! calls that reach bytecode and native library routines through the same
//! mechanism (Appendix 3); and out-of-line label tables for branches.
//!
//! The [`cgen`] module emits C source for both interpreters and the rule
//! tables, and prices them with the deterministic size model used by the
//! §6 interpreter-size experiments.
//!
//! ## Example
//!
//! ```
//! use pgr_bytecode::asm::assemble;
//! use pgr_vm::{Vm, VmConfig};
//!
//! // print 'A' and return 7
//! let prog = assemble(
//!     "proc main frame=0 args=0\n\
//!      \tLIT1 65\n\tARGU\n\tADDRGP 0\n\tCALLU\n\tPOPU\n\
//!      \tLIT1 7\n\tRETU\nendproc\n\
//!      native putchar\n\
//!      entry main\n",
//! ).unwrap();
//! let mut vm = Vm::new(&prog, VmConfig::default()).unwrap();
//! let result = vm.run().unwrap();
//! assert_eq!(result.output, b"A");
//! assert_eq!(result.ret.u(), 7);
//! ```

#![warn(missing_docs)]

pub mod cgen;
pub mod error;
pub mod exec;
pub mod machine;
pub mod memory;
pub mod natives;
pub mod ruleprog;
pub mod tier;
pub mod value;

pub use error::VmError;
pub use machine::{RunResult, TraceEvent, Vm, VmConfig};
pub use tier::Tier2Stats;
pub use value::Slot;
