//! VM error type.

use pgr_bytecode::Opcode;
use std::fmt;

/// A runtime failure inside either interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// A memory access outside the mapped address space.
    BadAddress {
        /// Faulting address.
        addr: u32,
        /// Access width in bytes.
        size: u32,
    },
    /// The code stream did not decode (uncompressed interpreter).
    BadOpcode {
        /// Procedure name.
        proc: String,
        /// Byte offset of the bad opcode.
        offset: usize,
    },
    /// The evaluation stack ran dry (ill-formed code; the validator
    /// rejects this statically).
    StackUnderflow {
        /// Procedure name.
        proc: String,
        /// The operator that underflowed.
        opcode: Opcode,
    },
    /// Integer division or remainder by zero.
    DivideByZero {
        /// Procedure name.
        proc: String,
    },
    /// The instruction budget was exhausted.
    OutOfFuel,
    /// The run's `CancelToken` fired (the request deadline passed or
    /// the owner cancelled it). Like `OutOfFuel`, a resource decision:
    /// the program may well have completed given more time.
    Cancelled {
        /// Milliseconds between the token's creation (request arrival)
        /// and the cancellation check that fired.
        elapsed_ms: u64,
    },
    /// Call depth exceeded the configured limit.
    CallDepthExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// An indirect call's target is neither a trampoline nor a native.
    BadCallTarget {
        /// The popped address.
        addr: u32,
    },
    /// A branch named a label-table entry that does not exist.
    BadLabel {
        /// Procedure name.
        proc: String,
        /// The missing label index.
        index: u16,
    },
    /// A `LocalCALL` named a descriptor that does not exist.
    BadDescriptor {
        /// The missing descriptor index.
        index: u16,
    },
    /// A global-table entry names a native routine the VM does not
    /// provide (load-time error).
    UnknownNative {
        /// The unresolvable name.
        name: String,
    },
    /// `ADDRGP` referenced a global-table entry that does not exist.
    BadGlobal {
        /// Procedure name.
        proc: String,
        /// The missing global index.
        index: u16,
    },
    /// Control ran past the end of a procedure's code.
    FellOffEnd {
        /// Procedure name.
        proc: String,
    },
    /// The heap bump allocator is out of space.
    HeapExhausted {
        /// The allocation size that failed.
        requested: u32,
    },
    /// The frame stack region is out of space.
    StackOverflow,
    /// Fewer outgoing-argument bytes than the callee expects.
    ArgUnderflow {
        /// Callee name.
        proc: String,
        /// Bytes the callee expects.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A compressed stream byte named a rule its non-terminal does not
    /// have, or a rule violated the operand-layout invariant.
    CorruptDerivation {
        /// Procedure name.
        proc: String,
        /// Stream offset near the corruption.
        offset: usize,
        /// What went wrong.
        detail: &'static str,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::BadAddress { addr, size } => {
                write!(f, "bad {size}-byte access at {addr:#x}")
            }
            VmError::BadOpcode { proc, offset } => {
                write!(f, "{proc}+{offset}: undecodable opcode")
            }
            VmError::StackUnderflow { proc, opcode } => {
                write!(f, "{proc}: stack underflow at {opcode}")
            }
            VmError::DivideByZero { proc } => write!(f, "{proc}: division by zero"),
            VmError::OutOfFuel => write!(f, "instruction budget exhausted"),
            VmError::Cancelled { elapsed_ms } => {
                write!(f, "run cancelled after {elapsed_ms} ms")
            }
            VmError::CallDepthExceeded { limit } => {
                write!(f, "call depth exceeded {limit}")
            }
            VmError::BadCallTarget { addr } => write!(f, "bad call target {addr:#x}"),
            VmError::BadLabel { proc, index } => write!(f, "{proc}: no label {index}"),
            VmError::BadDescriptor { index } => write!(f, "no procedure descriptor {index}"),
            VmError::UnknownNative { name } => write!(f, "unknown native routine {name:?}"),
            VmError::BadGlobal { proc, index } => write!(f, "{proc}: no global {index}"),
            VmError::FellOffEnd { proc } => write!(f, "{proc}: control ran off the end"),
            VmError::HeapExhausted { requested } => {
                write!(f, "heap exhausted allocating {requested} bytes")
            }
            VmError::StackOverflow => write!(f, "frame stack overflow"),
            VmError::ArgUnderflow { proc, need, have } => {
                write!(
                    f,
                    "{proc}: needs {need} argument bytes, caller passed {have}"
                )
            }
            VmError::CorruptDerivation {
                proc,
                offset,
                detail,
            } => {
                write!(f, "{proc}+{offset}: corrupt compressed stream: {detail}")
            }
        }
    }
}

impl std::error::Error for VmError {}
