//! Native library routines.
//!
//! The bytecode inter-operates with "conventional code (a library
//! routine)" through the same indirect-call mechanism as trampolines
//! (§3): the global table maps a name to a synthetic native address, and
//! `CALL*` dispatches here. The set below is the small libc-ish surface
//! the mini-C corpus needs; every routine is deterministic so program
//! output can be compared across interpreters.

use crate::error::VmError;
use crate::machine::Vm;
use crate::value::Slot;

/// A native routine known to the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Native {
    /// `int putchar(int c)` — append a byte to the output.
    Putchar,
    /// `void putint(int v)` — append the decimal rendering of `v`.
    Putint,
    /// `void putuint(unsigned v)` — append the decimal rendering.
    Putuint,
    /// `void putstr(const char *s)` — append a NUL-terminated string.
    Putstr,
    /// `int getchar(void)` — next input byte or -1.
    Getchar,
    /// `void exit(int code)` — stop the program.
    Exit,
    /// `void abort(void)` — stop with code 134.
    Abort,
    /// `void *malloc(unsigned n)` — bump allocation, 8-byte aligned.
    Malloc,
    /// `void free(void *p)` — accepted and ignored (bump allocator).
    Free,
    /// `void *memcpy(void *d, const void *s, unsigned n)`.
    Memcpy,
    /// `void *memset(void *d, int c, unsigned n)`.
    Memset,
    /// `void srand(unsigned seed)` — seed the deterministic LCG.
    Srand,
    /// `int rand(void)` — next LCG value in `0..=32767`.
    Rand,
}

impl Native {
    /// Resolve a global-table name to a native routine.
    pub fn resolve(name: &str) -> Option<Native> {
        Some(match name {
            "putchar" => Native::Putchar,
            "putint" => Native::Putint,
            "putuint" => Native::Putuint,
            "putstr" => Native::Putstr,
            "getchar" => Native::Getchar,
            "exit" => Native::Exit,
            "abort" => Native::Abort,
            "malloc" => Native::Malloc,
            "free" => Native::Free,
            "memcpy" => Native::Memcpy,
            "memset" => Native::Memset,
            "srand" => Native::Srand,
            "rand" => Native::Rand,
            _ => return None,
        })
    }

    /// Incoming-argument bytes the routine consumes (the x86-style
    /// contiguous block of §3/Appendix 3).
    pub fn arg_bytes(self) -> usize {
        match self {
            Native::Getchar | Native::Rand | Native::Abort => 0,
            Native::Putchar
            | Native::Putint
            | Native::Putuint
            | Native::Putstr
            | Native::Exit
            | Native::Malloc
            | Native::Free
            | Native::Srand => 4,
            Native::Memset | Native::Memcpy => 12,
        }
    }

    /// All natives (for the C generator and docs).
    pub const ALL: &'static [Native] = &[
        Native::Putchar,
        Native::Putint,
        Native::Putuint,
        Native::Putstr,
        Native::Getchar,
        Native::Exit,
        Native::Abort,
        Native::Malloc,
        Native::Free,
        Native::Memcpy,
        Native::Memset,
        Native::Srand,
        Native::Rand,
    ];
}

fn arg_u32(args: &[u8], i: usize) -> u32 {
    u32::from_le_bytes(args[4 * i..4 * i + 4].try_into().expect("4 bytes"))
}

/// Outcome of a native call.
pub enum NativeOutcome {
    /// Normal return with a value (void routines return `Slot::ZERO`).
    Return(Slot),
    /// The program requested termination with this exit code.
    Exit(i32),
}

/// Execute a native routine against the VM state.
///
/// # Errors
///
/// Propagates memory faults and heap exhaustion.
pub fn call(vm: &mut Vm<'_>, native: Native, args: &[u8]) -> Result<NativeOutcome, VmError> {
    let ret = match native {
        Native::Putchar => {
            let c = arg_u32(args, 0);
            vm.output.push(c as u8);
            Slot::from_u(c)
        }
        Native::Putint => {
            let v = arg_u32(args, 0) as i32;
            vm.output.extend_from_slice(v.to_string().as_bytes());
            Slot::ZERO
        }
        Native::Putuint => {
            let v = arg_u32(args, 0);
            vm.output.extend_from_slice(v.to_string().as_bytes());
            Slot::ZERO
        }
        Native::Putstr => {
            let addr = arg_u32(args, 0);
            let s = vm.mem.load_cstr(addr, 1 << 16)?.to_vec();
            vm.output.extend_from_slice(&s);
            Slot::ZERO
        }
        Native::Getchar => {
            let v = vm.input.pop_front().map(i32::from).unwrap_or(-1);
            Slot::from_i(v)
        }
        Native::Exit => return Ok(NativeOutcome::Exit(arg_u32(args, 0) as i32)),
        Native::Abort => return Ok(NativeOutcome::Exit(134)),
        Native::Malloc => {
            let n = arg_u32(args, 0);
            Slot::from_u(vm.heap_alloc(n)?)
        }
        Native::Free => Slot::ZERO,
        Native::Memcpy => {
            let d = arg_u32(args, 0);
            let s = arg_u32(args, 1);
            let n = arg_u32(args, 2);
            if n > 0 {
                vm.mem.copy(d, s, n)?;
            }
            Slot::from_u(d)
        }
        Native::Memset => {
            let d = arg_u32(args, 0);
            let c = arg_u32(args, 1) as u8;
            let n = arg_u32(args, 2);
            if n > 0 {
                let buf = vec![c; n as usize];
                vm.mem.store_bytes(d, &buf)?;
            }
            Slot::from_u(d)
        }
        Native::Srand => {
            vm.rng_state = u64::from(arg_u32(args, 0));
            Slot::ZERO
        }
        Native::Rand => {
            // The classic C LCG, returning 0..=32767.
            vm.rng_state = vm
                .rng_state
                .wrapping_mul(1_103_515_245)
                .wrapping_add(12_345)
                & 0x7FFF_FFFF;
            Slot::from_u(((vm.rng_state >> 16) & 0x7FFF) as u32)
        }
    };
    Ok(NativeOutcome::Return(ret))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_covers_the_registry() {
        for &n in Native::ALL {
            // Every native resolves from some name and declares a sane
            // argument size.
            assert!(n.arg_bytes() % 4 == 0);
        }
        assert_eq!(Native::resolve("putchar"), Some(Native::Putchar));
        assert_eq!(Native::resolve("memcpy"), Some(Native::Memcpy));
        assert_eq!(Native::resolve("printf"), None);
    }
}
