//! Flat little-endian VM memory.
//!
//! Addresses are 32-bit offsets into one byte array, mirroring the
//! paper's x86 target. Address 0 is never mapped, so null dereferences
//! fault cleanly.

use crate::error::VmError;

/// The VM's linear memory.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Allocate `size` bytes of zeroed memory.
    pub fn new(size: u32) -> Memory {
        Memory {
            bytes: vec![0; size as usize],
        }
    }

    /// Mapped size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    fn check(&self, addr: u32, size: u32) -> Result<usize, VmError> {
        let end = addr as u64 + size as u64;
        if addr == 0 || end > self.bytes.len() as u64 {
            return Err(VmError::BadAddress { addr, size });
        }
        Ok(addr as usize)
    }

    /// Read `len` bytes.
    pub fn load_bytes(&self, addr: u32, len: u32) -> Result<&[u8], VmError> {
        let a = self.check(addr, len)?;
        Ok(&self.bytes[a..a + len as usize])
    }

    /// Write bytes.
    pub fn store_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), VmError> {
        let a = self.check(addr, data.len() as u32)?;
        self.bytes[a..a + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Copy `len` bytes within memory (overlap-safe).
    pub fn copy(&mut self, dst: u32, src: u32, len: u32) -> Result<(), VmError> {
        let s = self.check(src, len)?;
        let d = self.check(dst, len)?;
        self.bytes.copy_within(s..s + len as usize, d);
        Ok(())
    }

    /// Read one byte.
    pub fn load_u8(&self, addr: u32) -> Result<u8, VmError> {
        Ok(self.bytes[self.check(addr, 1)?])
    }

    /// Read a 16-bit little-endian value.
    pub fn load_u16(&self, addr: u32) -> Result<u16, VmError> {
        let a = self.check(addr, 2)?;
        Ok(u16::from_le_bytes([self.bytes[a], self.bytes[a + 1]]))
    }

    /// Read a 32-bit little-endian value.
    pub fn load_u32(&self, addr: u32) -> Result<u32, VmError> {
        let a = self.check(addr, 4)?;
        Ok(u32::from_le_bytes(
            self.bytes[a..a + 4].try_into().expect("4 bytes"),
        ))
    }

    /// Read a 64-bit little-endian value.
    pub fn load_u64(&self, addr: u32) -> Result<u64, VmError> {
        let a = self.check(addr, 8)?;
        Ok(u64::from_le_bytes(
            self.bytes[a..a + 8].try_into().expect("8 bytes"),
        ))
    }

    /// Write one byte.
    pub fn store_u8(&mut self, addr: u32, v: u8) -> Result<(), VmError> {
        let a = self.check(addr, 1)?;
        self.bytes[a] = v;
        Ok(())
    }

    /// Write a 16-bit little-endian value.
    pub fn store_u16(&mut self, addr: u32, v: u16) -> Result<(), VmError> {
        self.store_bytes(addr, &v.to_le_bytes())
    }

    /// Write a 32-bit little-endian value.
    pub fn store_u32(&mut self, addr: u32, v: u32) -> Result<(), VmError> {
        self.store_bytes(addr, &v.to_le_bytes())
    }

    /// Write a 64-bit little-endian value.
    pub fn store_u64(&mut self, addr: u32, v: u64) -> Result<(), VmError> {
        self.store_bytes(addr, &v.to_le_bytes())
    }

    /// Read a float.
    pub fn load_f32(&self, addr: u32) -> Result<f32, VmError> {
        Ok(f32::from_bits(self.load_u32(addr)?))
    }

    /// Read a double.
    pub fn load_f64(&self, addr: u32) -> Result<f64, VmError> {
        Ok(f64::from_bits(self.load_u64(addr)?))
    }

    /// Read a NUL-terminated string (for natives like `putstr`).
    pub fn load_cstr(&self, addr: u32, max: u32) -> Result<&[u8], VmError> {
        let start = self.check(addr, 1)?;
        let limit = (addr as u64 + max as u64).min(self.bytes.len() as u64) as usize;
        match self.bytes[start..limit].iter().position(|&b| b == 0) {
            Some(n) => Ok(&self.bytes[start..start + n]),
            None => Err(VmError::BadAddress {
                addr: limit as u32,
                size: 1,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_stores_roundtrip() {
        let mut m = Memory::new(64);
        m.store_u8(8, 0xAB).unwrap();
        assert_eq!(m.load_u8(8).unwrap(), 0xAB);
        m.store_u16(10, 0x1234).unwrap();
        assert_eq!(m.load_u16(10).unwrap(), 0x1234);
        m.store_u32(12, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.load_u32(12).unwrap(), 0xDEAD_BEEF);
        m.store_u64(16, 0x0123_4567_89AB_CDEF).unwrap();
        assert_eq!(m.load_u64(16).unwrap(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new(16);
        m.store_u32(4, 0x0102_0304).unwrap();
        assert_eq!(m.load_bytes(4, 4).unwrap(), &[0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn null_and_oob_fault() {
        let mut m = Memory::new(16);
        assert!(m.load_u8(0).is_err());
        assert!(m.store_u32(0, 1).is_err());
        assert!(m.load_u32(14).is_err());
        assert!(m.load_u8(16).is_err());
        // Address arithmetic must not wrap.
        assert!(m.load_u32(u32::MAX - 1).is_err());
    }

    #[test]
    fn overlapping_copy_is_memmove() {
        let mut m = Memory::new(32);
        m.store_bytes(4, &[1, 2, 3, 4, 5]).unwrap();
        m.copy(6, 4, 5).unwrap();
        assert_eq!(m.load_bytes(6, 5).unwrap(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn cstr_reading() {
        let mut m = Memory::new(32);
        m.store_bytes(4, b"hi\0junk").unwrap();
        assert_eq!(m.load_cstr(4, 16).unwrap(), b"hi");
        // Unterminated within max -> error.
        m.store_bytes(20, &[65; 12]).unwrap();
        assert!(m.load_cstr(20, 8).is_err());
    }
}
