//! End-to-end tests for the grammar registry and the request server:
//! content-addressed round-trips, stale-id rejection, and a concurrent
//! serve session with mixed per-request budgets.

use pgr_bytecode::asm::assemble;
use pgr_bytecode::{read_program_tagged, write_program, write_program_tagged, ImageKind};
use pgr_grammar::{GrammarFile, InitialGrammar};
use pgr_registry::{
    base64_decode, base64_encode, GrammarId, Registry, RegistryError, ServeConfig, Server,
};
use pgr_telemetry::json::{self, Value};
use pgr_telemetry::{names, Recorder};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};

/// A throwaway directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("pgr-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sample_grammar() -> GrammarFile {
    let ig = InitialGrammar::build();
    GrammarFile::new(ig.grammar, ig.nt_start, ig.nt_byte)
}

const SAMPLE: &str = r#"
proc f frame=8 args=0
    ADDRLP 0
    INDIRU
    LIT1 1
    ADDU
    ADDRLP 0
    ASGNU
    label 0
    ADDRLP 0
    INDIRU
    LIT1 1
    ADDU
    ADDRLP 0
    ASGNU
    LIT1 1
    BrTrue 0
    RETV
endproc
entry f
"#;

// ---- registry ----------------------------------------------------------

#[test]
fn store_load_roundtrip_is_byte_identical() {
    let scratch = Scratch::new("roundtrip");
    let registry = Registry::open(scratch.path("reg")).unwrap();
    let file = sample_grammar();
    let bytes = file.to_bytes();

    let manifest = registry.store(&file, "initial grammar").unwrap();
    assert_eq!(manifest.id, GrammarId::of_bytes(&bytes));
    assert_eq!(manifest.bytes, bytes.len() as u64);
    assert_eq!(manifest.nt_count, file.grammar.nt_count() as u64);
    assert_eq!(manifest.label, "initial grammar");

    // Byte-identical load, and an identical re-store is idempotent.
    assert_eq!(registry.load_bytes(&manifest.id).unwrap(), bytes);
    let again = registry.store_bytes(&bytes, "different label").unwrap();
    assert_eq!(again.id, manifest.id);
    assert_eq!(again.label, "initial grammar"); // first store wins

    // Listing and prefix resolution see it.
    let listed = registry.list().unwrap();
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0].id, manifest.id);
    let prefix = &manifest.id.to_hex()[..8];
    assert_eq!(registry.resolve(prefix).unwrap(), manifest.id);
    assert!(matches!(
        registry.resolve("ffff").unwrap_err(),
        RegistryError::NotFound { .. }
    ));
}

#[test]
fn stale_objects_are_rejected_and_gc_prunes_them() {
    let scratch = Scratch::new("stale");
    let registry = Registry::open(scratch.path("reg")).unwrap();
    let manifest = registry.store(&sample_grammar(), "").unwrap();
    let id = manifest.id;

    // Tamper with the stored object: the id no longer matches the
    // content, so the registry must refuse to serve it.
    let object = scratch.path(&format!("reg/objects/{}.pgrg", id.to_hex()));
    let mut bytes = std::fs::read(&object).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&object, &bytes).unwrap();

    match registry.load_bytes(&id).unwrap_err() {
        RegistryError::Corrupt { id: bad, found } => {
            assert_eq!(bad, id.to_hex());
            assert_ne!(found, id.to_hex());
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    assert!(registry.load(&id).is_err());

    // gc removes the corrupt entry (and nothing else).
    let good = {
        let mut file = sample_grammar();
        file.start = file.byte_nt; // any distinct-but-valid variant
        registry.store(&file, "survivor").unwrap()
    };
    let report = registry.gc(&[]).unwrap();
    assert_eq!(report.pruned_corrupt, vec![id.to_hex()]);
    assert!(report.removed.is_empty());
    assert_eq!(registry.ids().unwrap(), vec![good.id]);

    // A keep-list evicts everything it does not name.
    let report = registry.gc(&[GrammarId::of_bytes(b"unrelated")]).unwrap();
    assert_eq!(report.removed, vec![good.id]);
    assert!(registry.ids().unwrap().is_empty());
}

// ---- serve -------------------------------------------------------------

/// One NDJSON request/response exchange over an existing connection.
fn exchange(stream: &mut UnixStream, request: &str) -> Value {
    writeln!(stream, "{request}").expect("send request");
    stream.flush().expect("flush request");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    json::parse(&line).expect("response is JSON")
}

fn connect(socket: &Path) -> UnixStream {
    // The server binds the socket before its accept loop starts, but
    // give the spawn a moment on slow machines.
    for _ in 0..100 {
        if let Ok(stream) = UnixStream::connect(socket) {
            return stream;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("server socket never came up at {}", socket.display());
}

#[test]
fn concurrent_serve_with_mixed_budgets() {
    let scratch = Scratch::new("serve");
    let registry = Registry::open(scratch.path("reg")).unwrap();
    let manifest = registry.store(&sample_grammar(), "serve test").unwrap();
    let id_hex = manifest.id.to_hex();

    let socket = scratch.path("pgr.sock");
    let server = Server::bind(
        &socket,
        ServeConfig {
            registry_root: scratch.path("reg"),
            // A real ceiling (not UNLIMITED), so an extravagant request
            // demonstrably gets clamped while still succeeding.
            max_budget: pgr_core::EarleyBudget {
                max_items: 1_000_000,
                max_columns: 10_000,
            },
            threads: 2,
            recorder: Recorder::new(),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let program = assemble(SAMPLE).expect("assemble sample");
    let image_b64 = base64_encode(&write_program(&program, ImageKind::Uncompressed));
    // The starved client gets a program with different operand bytes:
    // the engine's derivation cache is shared across requests, so if it
    // compressed the same segments a warm cache would (correctly) hand
    // it successful derivations without ever consulting its budget.
    let starved_program = assemble(&SAMPLE.replace("LIT1 1", "LIT1 9")).expect("assemble variant");
    let starved_b64 = base64_encode(&write_program(&starved_program, ImageKind::Uncompressed));

    // Fan out mixed-budget compress requests concurrently: ample (and
    // over-ceiling, so clamped) requests must compress cleanly while a
    // starved neighbour degrades to verbatim fallback — on the same
    // shared engine, at the same time.
    let mut clients = Vec::new();
    for i in 0..4 {
        let socket = socket.clone();
        let id_hex = id_hex.clone();
        let starved = i == 0;
        let image_b64 = if starved {
            starved_b64.clone()
        } else {
            image_b64.clone()
        };
        clients.push(std::thread::spawn(move || {
            let budget = if starved {
                r#","budget":{"max_items":1,"max_columns":1}"#.to_string()
            } else {
                // Far above the server ceiling: admission must clamp it.
                r#","budget":{"max_items":18446744073709551615}"#.to_string()
            };
            let mut stream = connect(&socket);
            let resp = exchange(
                &mut stream,
                &format!(
                    r#"{{"op":"compress","grammar":"{id_hex}","image":"{image_b64}"{budget}}}"#
                ),
            );
            assert_eq!(
                resp.get("ok").and_then(Value::as_bool),
                Some(true),
                "compress failed: {resp:?}"
            );
            let fallback = resp
                .get("fallback_segments")
                .and_then(Value::as_u64)
                .unwrap();
            let clamped = resp.get("clamped").and_then(Value::as_bool) == Some(true);
            let image = resp
                .get("image")
                .and_then(Value::as_str)
                .unwrap()
                .to_string();
            (starved, fallback, clamped, image)
        }));
    }
    let results: Vec<(bool, u64, bool, String)> =
        clients.into_iter().map(|c| c.join().unwrap()).collect();

    let mut clean_image = None;
    for (starved, fallback, clamped, image) in &results {
        if *starved {
            // The budget admitted one chart item per segment: every
            // segment degrades to a verbatim escape, but the request
            // still succeeds.
            assert!(*fallback > 0, "starved request should degrade");
            assert!(!clamped, "a tiny budget is admitted as-is");
        } else {
            assert_eq!(*fallback, 0, "ample request must not degrade");
            assert!(*clamped, "over-ceiling budget must be clamped");
            clean_image = Some(image.clone());
        }
    }

    // Every produced image — degraded or not — decompresses back to its
    // canonical original, resolved purely from the image's embedded
    // grammar id (no "grammar" field).
    let canonical_image = write_program(
        &pgr_core::canonicalize_program(&program).unwrap(),
        ImageKind::Uncompressed,
    );
    let starved_canonical_image = write_program(
        &pgr_core::canonicalize_program(&starved_program).unwrap(),
        ImageKind::Uncompressed,
    );
    let mut stream = connect(&socket);
    for (starved, _, _, image) in &results {
        let resp = exchange(
            &mut stream,
            &format!(r#"{{"op":"decompress","image":"{image}"}}"#),
        );
        let back = base64_decode(resp.get("image").and_then(Value::as_str).unwrap()).unwrap();
        let expected = if *starved {
            &starved_canonical_image
        } else {
            &canonical_image
        };
        assert_eq!(&back, expected, "round-trip must be byte-identical");
        assert_eq!(
            resp.get("grammar").and_then(Value::as_str),
            Some(id_hex.as_str())
        );
    }

    // The compressed image header names the grammar.
    let compressed = base64_decode(&clean_image.unwrap()).unwrap();
    let (_, kind, header_id) = read_program_tagged(&compressed).unwrap();
    assert_eq!(kind, ImageKind::Compressed);
    assert_eq!(header_id, Some(*manifest.id.as_bytes()));

    // `run` executes a compressed image via the registry grammar,
    // resolved from the image header alone.
    let halting = assemble("proc main frame=0 args=0\n\tRETV\nendproc\nentry main\n").unwrap();
    let halting_b64 = base64_encode(&write_program(&halting, ImageKind::Uncompressed));
    let resp = exchange(
        &mut stream,
        &format!(r#"{{"op":"compress","grammar":"{id_hex}","image":"{halting_b64}"}}"#),
    );
    let halting_compressed = resp
        .get("image")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    let resp = exchange(
        &mut stream,
        &format!(r#"{{"op":"run","image":"{halting_compressed}"}}"#),
    );
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "{resp:?}"
    );
    assert_eq!(resp.get("exit_code").and_then(Value::as_u64), Some(0));

    // Errors are in-band and do not poison the connection.
    let resp = exchange(&mut stream, r#"{"op":"compress","grammar":"beef"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    assert!(resp.get("error").and_then(Value::as_str).is_some());

    // Stats: pinned serve metrics are present, including the request
    // latency histograms and the stats request's own latency.
    let resp = exchange(&mut stream, r#"{"op":"stats"}"#);
    let metrics = resp.get("metrics").expect("metrics object");
    let counters = metrics.get("counters").expect("counters");
    assert!(
        counters
            .get(names::SERVE_REQUESTS)
            .and_then(Value::as_u64)
            .unwrap()
            >= 7
    );
    assert!(
        counters
            .get(names::SERVE_ERRORS)
            .and_then(Value::as_u64)
            .unwrap()
            >= 1
    );
    assert_eq!(
        counters
            .get(names::SERVE_BUDGET_CLAMPED)
            .and_then(Value::as_u64),
        Some(3)
    );
    let hists = metrics.get("histograms").expect("histograms");
    for name in [
        names::SERVE_REQUEST_COMPRESS_MICROS,
        names::SERVE_REQUEST_DECOMPRESS_MICROS,
        names::SERVE_REQUEST_RUN_MICROS,
        names::SERVE_REQUEST_STATS_MICROS,
    ] {
        assert!(
            hists.get(name).is_some(),
            "stats response missing histogram {name}"
        );
    }
    assert_eq!(
        metrics
            .get("gauges")
            .and_then(|g| g.get(names::SERVE_GRAMMARS_LOADED))
            .and_then(Value::as_u64),
        Some(1)
    );

    // Shut down and join; the socket file is gone afterwards.
    let resp = exchange(&mut stream, r#"{"op":"shutdown"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    server_thread.join().unwrap();
    assert!(!socket.exists());
}

#[test]
fn serve_rejects_unknown_grammars_and_bad_payloads() {
    let scratch = Scratch::new("serve-errs");
    Registry::open(scratch.path("reg")).unwrap();
    let socket = scratch.path("pgr.sock");
    let server = Server::bind(
        &socket,
        ServeConfig {
            registry_root: scratch.path("reg"),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());
    let mut stream = connect(&socket);

    for bad in [
        "this is not json",
        r#"{"op":"frobnicate"}"#,
        r#"{"op":"compress"}"#,
        r#"{"op":"compress","image":"!!!","grammar":"abcd"}"#,
        r#"{"op":"decompress","image":"AAAA"}"#,
    ] {
        let resp = exchange(&mut stream, bad);
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(false),
            "request {bad:?} must fail in-band"
        );
        assert!(resp.get("error").and_then(Value::as_str).is_some());
    }

    // A compressed image whose header names an absent grammar reports a
    // registry miss, with the id in the message.
    let program = assemble(SAMPLE).unwrap();
    let fake_id = [0xabu8; 32];
    let image = write_program_tagged(&program, ImageKind::Compressed, Some(&fake_id));
    let resp = exchange(
        &mut stream,
        &format!(
            r#"{{"op":"decompress","image":"{}"}}"#,
            base64_encode(&image)
        ),
    );
    let error = resp.get("error").and_then(Value::as_str).unwrap();
    assert!(
        error.contains("abab"),
        "error should name the missing id: {error}"
    );

    exchange(&mut stream, r#"{"op":"shutdown"}"#);
    server_thread.join().unwrap();
}

#[test]
fn serve_traces_requests_and_dumps_slow_span_trees() {
    let scratch = Scratch::new("serve-trace");
    let registry = Registry::open(scratch.path("reg")).unwrap();
    let manifest = registry.store(&sample_grammar(), "trace test").unwrap();
    let id_hex = manifest.id.to_hex();

    let socket = scratch.path("pgr.sock");
    let slow_log = scratch.path("slow.ndjson");
    let server = Server::bind(
        &socket,
        ServeConfig {
            registry_root: scratch.path("reg"),
            recorder: Recorder::new(),
            // Threshold 0: every request is "slow", so each one dumps
            // its span tree to the NDJSON log.
            slow_ms: Some(0),
            slow_trace: Some(slow_log.clone()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());
    let mut stream = connect(&socket);

    let trace_of = |resp: &Value| -> String {
        let hex = resp
            .get("trace")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("response lacks trace id: {resp:?}"))
            .to_string();
        assert_eq!(hex.len(), 16, "trace id is 16 hex chars: {hex}");
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        hex
    };
    let mut seen = Vec::new();

    // Successful requests carry a per-request trace id. (A halting
    // program — SAMPLE spins forever, which `run` would not survive.)
    let program = assemble("proc main frame=0 args=0\n\tRETV\nendproc\nentry main\n").unwrap();
    let image_b64 = base64_encode(&write_program(&program, ImageKind::Uncompressed));
    let resp = exchange(
        &mut stream,
        &format!(r#"{{"op":"compress","grammar":"{id_hex}","image":"{image_b64}"}}"#),
    );
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    seen.push(trace_of(&resp));
    let compressed = resp
        .get("image")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();

    let resp = exchange(
        &mut stream,
        &format!(r#"{{"op":"run","image":"{compressed}"}}"#),
    );
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    seen.push(trace_of(&resp));

    // Errors carry the trace id and elapsed micros in-band, and bump the
    // per-op error counter.
    let resp = exchange(&mut stream, r#"{"op":"compress","grammar":"beef"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    seen.push(trace_of(&resp));
    assert!(
        resp.get("micros").and_then(Value::as_u64).is_some(),
        "error response lacks elapsed micros: {resp:?}"
    );

    // Stats: sliding-window aggregates with per-op quantiles, uptime,
    // the slow-request counter, and the per-op error counter.
    let resp = exchange(&mut stream, r#"{"op":"stats"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    seen.push(trace_of(&resp));
    assert!(resp.get("uptime_secs").and_then(Value::as_u64).is_some());
    let window = resp.get("window").expect("stats carries window object");
    assert!(window.get("window_secs").and_then(Value::as_u64).is_some());
    assert!(window.get("requests").and_then(Value::as_u64).unwrap() >= 3);
    assert!(window.get("errors").and_then(Value::as_u64).unwrap() >= 1);
    let ops = window.get("ops").expect("window carries per-op stats");
    let compress_win = ops.get("compress").expect("compress window entry");
    for field in ["count", "p50", "p90", "p95", "p99", "max"] {
        assert!(
            compress_win.get(field).and_then(Value::as_u64).is_some(),
            "window op entry lacks {field}: {compress_win:?}"
        );
    }
    assert!(
        window
            .get("grammars")
            .and_then(|g| g.get(&id_hex))
            .is_some(),
        "window lacks per-grammar entry for {id_hex}"
    );
    let counters = resp.get("metrics").and_then(|m| m.get("counters")).unwrap();
    assert!(
        counters
            .get(names::SERVE_SLOW_REQUESTS)
            .and_then(Value::as_u64)
            .unwrap()
            >= 3
    );
    assert!(
        counters
            .get(&pgr_telemetry::names::serve_request_errors("compress"))
            .and_then(Value::as_u64)
            .unwrap()
            >= 1
    );

    exchange(&mut stream, r#"{"op":"shutdown"}"#);
    server_thread.join().unwrap();

    // The slow log holds one header line per retired request followed by
    // that request's span events, all parseable NDJSON, and the header
    // trace ids match the ids the client saw in its responses.
    let text = std::fs::read_to_string(&slow_log).expect("slow trace NDJSON exists");
    let mut headers = Vec::new();
    let mut pending_events = 0u64;
    for line in text.lines() {
        let value = json::parse(line).expect("slow-log line parses as JSON");
        if pending_events == 0 {
            let trace = value.get("trace").and_then(Value::as_str).unwrap();
            assert!(value.get("op").and_then(Value::as_str).is_some());
            assert!(value.get("micros").and_then(Value::as_u64).is_some());
            pending_events = value.get("events").and_then(Value::as_u64).unwrap();
            headers.push(trace.to_string());
        } else {
            // Span events of the request the preceding header announced.
            assert!(value.get("name").and_then(Value::as_str).is_some());
            assert!(value.get("ph").and_then(Value::as_str).is_some());
            pending_events -= 1;
        }
    }
    assert_eq!(pending_events, 0, "slow log ends mid-request");
    assert!(headers.len() >= seen.len(), "every request dumps a tree");
    for id in &seen {
        assert!(
            headers.contains(id),
            "response trace {id} missing from slow log headers {headers:?}"
        );
    }
}

// ---- reactor: batching, backpressure, eviction, drain ------------------

/// Pipeline several request lines in one write (so they arrive in one
/// readiness sweep) and read back exactly as many responses, in order.
fn pipeline(stream: &mut UnixStream, requests: &[String]) -> Vec<Value> {
    let mut wire = String::new();
    for r in requests {
        wire.push_str(r);
        wire.push('\n');
    }
    stream.write_all(wire.as_bytes()).expect("pipeline write");
    stream.flush().expect("pipeline flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut responses = Vec::with_capacity(requests.len());
    for _ in requests {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        assert!(!line.is_empty(), "connection closed mid-pipeline");
        responses.push(json::parse(&line).expect("response is JSON"));
    }
    responses
}

#[test]
fn batched_compresses_are_byte_identical_to_serial_dispatch() {
    let scratch = Scratch::new("serve-batch");
    let registry = Registry::open(scratch.path("reg")).unwrap();
    let manifest = registry.store(&sample_grammar(), "").unwrap();
    let id_hex = manifest.id.to_hex();
    let socket = scratch.path("pgr.sock");
    let server = Server::bind(
        &socket,
        ServeConfig {
            registry_root: scratch.path("reg"),
            threads: 1,
            workers: 1,
            batch_window_us: 200_000,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let a = assemble(SAMPLE).unwrap();
    let b = assemble(&SAMPLE.replace("LIT1 1", "LIT1 7")).unwrap();
    let a64 = base64_encode(&write_program(&a, ImageKind::Uncompressed));
    let b64 = base64_encode(&write_program(&b, ImageKind::Uncompressed));
    let req_a = format!(r#"{{"op":"compress","grammar":"{id_hex}","image":"{a64}"}}"#);
    let req_b = format!(r#"{{"op":"compress","grammar":"{id_hex}","image":"{b64}"}}"#);

    // Serial reference: one request at a time, each its own dispatch.
    let mut serial = connect(&socket);
    let serial_a = exchange(&mut serial, &req_a);
    let serial_b = exchange(&mut serial, &req_b);
    let image_of = |resp: &Value| {
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "{resp:?}"
        );
        resp.get("image")
            .and_then(Value::as_str)
            .unwrap()
            .to_string()
    };
    let serial_a_image = image_of(&serial_a);
    let serial_b_image = image_of(&serial_b);

    // Occupy the single worker so the pipelined burst is *held* and
    // coalesced rather than adaptively flushed one by one.
    writeln!(serial, "{req_a}").unwrap();
    serial.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(5));

    // Three same-grammar compresses (two identical lines) in one burst:
    // one engine dispatch, three responses, in request order.
    let mut burst = connect(&socket);
    let responses = pipeline(&mut burst, &[req_a.clone(), req_b.clone(), req_a.clone()]);
    // The occupied worker's own response still arrives.
    let mut reader = BufReader::new(serial.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(image_of(&json::parse(&line).unwrap()), serial_a_image);

    let expected = [&serial_a_image, &serial_b_image, &serial_a_image];
    let mut traces = std::collections::HashSet::new();
    for (resp, want) in responses.iter().zip(expected) {
        assert_eq!(
            &image_of(resp),
            want,
            "batched compress must be byte-identical to serial dispatch"
        );
        let trace = resp.get("trace").and_then(Value::as_str).unwrap();
        assert!(traces.insert(trace.to_string()), "trace ids stay distinct");
    }

    // The stats response proves a real multi-request dispatch happened.
    let resp = exchange(&mut serial, r#"{"op":"stats"}"#);
    let batch_size = resp
        .get("metrics")
        .and_then(|m| m.get("histograms"))
        .and_then(|h| h.get(names::SERVE_BATCH_SIZE))
        .expect("serve.batch.size histogram");
    assert!(
        batch_size.get("max").and_then(Value::as_u64).unwrap() >= 3,
        "burst of three must coalesce: {batch_size:?}"
    );
    let window = resp.get("window").expect("window");
    assert!(window.get("batch_size").is_some());
    assert!(window.get("batch_wait").is_some());
    assert!(
        resp.get("queue_depth").and_then(Value::as_u64).is_some(),
        "stats must expose live queue depth"
    );
    assert_eq!(resp.get("engines").and_then(Value::as_u64), Some(1));

    let resp = exchange(&mut serial, r#"{"op":"shutdown"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    server_thread.join().unwrap();
    assert!(!socket.exists());
}

#[test]
fn mixed_grammar_requests_never_share_a_batch() {
    let scratch = Scratch::new("serve-mixed");
    let registry = Registry::open(scratch.path("reg")).unwrap();
    let first = registry.store(&sample_grammar(), "a").unwrap();
    let second = {
        let mut file = sample_grammar();
        file.start = file.byte_nt; // distinct bytes, distinct id
        registry.store(&file, "b").unwrap()
    };
    let socket = scratch.path("pgr.sock");
    let server = Server::bind(
        &socket,
        ServeConfig {
            registry_root: scratch.path("reg"),
            threads: 1,
            workers: 1,
            batch_window_us: 200_000,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let image = base64_encode(&write_program(
        &assemble(SAMPLE).unwrap(),
        ImageKind::Uncompressed,
    ));
    let req = |hex: &str| format!(r#"{{"op":"compress","grammar":"{hex}","image":"{image}"}}"#);
    let a_hex = first.id.to_hex();
    let b_hex = second.id.to_hex();

    // Interleave the two grammars in one burst: each response must name
    // the grammar its request asked for, whatever got batched with what.
    let mut stream = connect(&socket);
    let requests = [req(&a_hex), req(&b_hex), req(&a_hex), req(&b_hex)];
    let responses = pipeline(&mut stream, &requests);
    for (i, resp) in responses.iter().enumerate() {
        let want = if i % 2 == 0 { &a_hex } else { &b_hex };
        // Grammar B's start symbol is degenerate, so its compresses may
        // degrade or fail — but never cross into A's batch: a response
        // that names a grammar must name the right one.
        if resp.get("ok").and_then(Value::as_bool) == Some(true) {
            assert_eq!(
                resp.get("grammar").and_then(Value::as_str),
                Some(want.as_str()),
                "response {i} answered with the wrong grammar"
            );
        }
    }
    assert_eq!(
        responses[0].get("image").and_then(Value::as_str),
        responses[2].get("image").and_then(Value::as_str),
        "same request, same batch key, same bytes"
    );

    let resp = exchange(&mut stream, r#"{"op":"shutdown"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    server_thread.join().unwrap();
}

#[test]
fn queue_saturation_answers_overloaded_in_band_without_dropping_connections() {
    let scratch = Scratch::new("serve-overload");
    let registry = Registry::open(scratch.path("reg")).unwrap();
    let manifest = registry.store(&sample_grammar(), "").unwrap();
    let id_hex = manifest.id.to_hex();
    let socket = scratch.path("pgr.sock");
    let server = Server::bind(
        &socket,
        ServeConfig {
            registry_root: scratch.path("reg"),
            threads: 1,
            workers: 1,
            // A long window and a tiny queue: pipelining 4x the queue
            // bound must trip admission control, not grow a backlog.
            batch_window_us: 300_000,
            max_queue: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let image = base64_encode(&write_program(
        &assemble(SAMPLE).unwrap(),
        ImageKind::Uncompressed,
    ));
    let req = format!(r#"{{"op":"compress","grammar":"{id_hex}","image":"{image}"}}"#);
    let mut stream = connect(&socket);
    let burst: Vec<String> = std::iter::repeat_with(|| req.clone()).take(8).collect();
    let responses = pipeline(&mut stream, &burst);

    let (mut ok, mut overloaded) = (0, 0);
    for resp in &responses {
        if resp.get("ok").and_then(Value::as_bool) == Some(true) {
            ok += 1;
        } else {
            assert_eq!(
                resp.get("error").and_then(Value::as_str),
                Some("overloaded"),
                "rejections must be the fixed overloaded token: {resp:?}"
            );
            assert!(
                resp.get("retry_after_ms").and_then(Value::as_u64).unwrap() >= 1,
                "overloaded responses carry a backoff hint"
            );
            assert!(resp.get("trace").and_then(Value::as_str).is_some());
            overloaded += 1;
        }
    }
    assert_eq!(ok, 2, "exactly the queue bound is admitted");
    assert_eq!(overloaded, 6, "the rest is refused in-band");

    // The connection survived saturation; stats sees the rejections.
    let resp = exchange(&mut stream, r#"{"op":"stats"}"#);
    assert_eq!(
        resp.get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get(names::SERVE_REJECTED_OVERLOAD))
            .and_then(Value::as_u64),
        Some(6)
    );
    assert_eq!(
        resp.get("window")
            .and_then(|w| w.get("rejected"))
            .and_then(Value::as_u64),
        Some(6)
    );

    let resp = exchange(&mut stream, r#"{"op":"shutdown"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    server_thread.join().unwrap();
}

#[test]
fn burst_past_pipeline_bound_completes_without_hanging() {
    let scratch = Scratch::new("serve-burst");
    let registry = Registry::open(scratch.path("reg")).unwrap();
    let manifest = registry.store(&sample_grammar(), "").unwrap();
    let id_hex = manifest.id.to_hex();
    let socket = scratch.path("pgr.sock");
    let server = Server::bind(
        &socket,
        ServeConfig {
            registry_root: scratch.path("reg"),
            threads: 1,
            workers: 1,
            // max_queue=4 puts the per-connection pipeline bound at its
            // floor of 16: a 20-line burst overruns it, so the last
            // lines sit framed-but-undispatched until responses drain.
            // Regression: when the bound-lifting completions all landed
            // in one wake (one flushed batch), those lines were stranded
            // forever — the reactor ingested before applying completions
            // and then had nothing left to wake it.
            max_queue: 4,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let image = base64_encode(&write_program(
        &assemble(SAMPLE).unwrap(),
        ImageKind::Uncompressed,
    ));
    let req = format!(r#"{{"op":"compress","grammar":"{id_hex}","image":"{image}"}}"#);
    let mut stream = connect(&socket);
    // A hang must fail the test, not wedge the suite.
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let burst: Vec<String> = std::iter::repeat_with(|| req.clone()).take(20).collect();
    let responses = pipeline(&mut stream, &burst);

    assert_eq!(responses.len(), 20, "every pipelined request is answered");
    let mut ok = 0;
    for resp in &responses {
        if resp.get("ok").and_then(Value::as_bool) == Some(true) {
            ok += 1;
        } else {
            assert_eq!(
                resp.get("error").and_then(Value::as_str),
                Some("overloaded"),
                "failures past the bound must be in-band rejections: {resp:?}"
            );
        }
    }
    assert!(
        ok >= 4,
        "at least one full batch beyond the stranded tail must succeed, got {ok}"
    );

    let resp = exchange(&mut stream, r#"{"op":"shutdown"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    server_thread.join().unwrap();
}

#[test]
fn aborted_connections_are_reaped_and_do_not_erode_capacity() {
    let scratch = Scratch::new("serve-abort");
    let registry = Registry::open(scratch.path("reg")).unwrap();
    let manifest = registry.store(&sample_grammar(), "").unwrap();
    let id_hex = manifest.id.to_hex();
    let socket = scratch.path("pgr.sock");
    let server = Server::bind(
        &socket,
        ServeConfig {
            registry_root: scratch.path("reg"),
            threads: 1,
            workers: 1,
            // One connection slot: a leaked entry for the aborted client
            // would lock every later client out as overloaded.
            max_connections: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let image = base64_encode(&write_program(
        &assemble(SAMPLE).unwrap(),
        ImageKind::Uncompressed,
    ));
    // Pipeline two requests and hang up before reading either response:
    // the first response's write fails against the closed peer, and the
    // second completes only afterwards. Regression: the connection-table
    // entry leaked (a completion below the skipped-ahead write cursor
    // parked forever), permanently consuming the only slot.
    {
        let mut aborted = connect(&socket);
        write!(
            aborted,
            "{{\"op\":\"stats\"}}\n{{\"op\":\"compress\",\"grammar\":\"{id_hex}\",\"image\":\"{image}\"}}\n"
        )
        .unwrap();
        aborted.flush().unwrap();
    } // dropped: peer aborts mid-pipeline

    // Give both requests time to complete against the dead connection.
    std::thread::sleep(std::time::Duration::from_millis(500));

    let mut stream = connect(&socket);
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let resp = exchange(&mut stream, r#"{"op":"stats"}"#);
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "the aborted connection must have been reaped, freeing its slot: {resp:?}"
    );

    let resp = exchange(&mut stream, r#"{"op":"shutdown"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    server_thread.join().unwrap();
}

#[test]
fn shutdown_drains_in_flight_and_batched_requests() {
    let scratch = Scratch::new("serve-drain");
    let registry = Registry::open(scratch.path("reg")).unwrap();
    let manifest = registry.store(&sample_grammar(), "").unwrap();
    let id_hex = manifest.id.to_hex();
    let socket = scratch.path("pgr.sock");
    let server = Server::bind(
        &socket,
        ServeConfig {
            registry_root: scratch.path("reg"),
            threads: 1,
            // Two workers: one can carry a slow compress while the other
            // takes the shutdown.
            workers: 2,
            // A long window: the second compress is still *held* (not
            // even dispatched) when shutdown lands, and must drain too.
            batch_window_us: 500_000,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    // A slow request: many distinct segments, compressed fresh.
    let mut big = String::from("proc f frame=8 args=0\n");
    for i in 0..120 {
        big.push_str(&format!(
            "\tADDRLP {}\n\tINDIRU\n\tLIT1 {}\n\tADDU\n\tADDRLP 0\n\tASGNU\n",
            i % 8,
            (i * 7) % 250 + 1,
        ));
    }
    big.push_str("\tRETV\nendproc\nentry f\n");
    let slow64 = base64_encode(&write_program(
        &assemble(&big).unwrap(),
        ImageKind::Uncompressed,
    ));

    let mut slow_conn = connect(&socket);
    writeln!(
        slow_conn,
        r#"{{"op":"compress","grammar":"{id_hex}","image":"{slow64}"}}"#
    )
    .unwrap();
    slow_conn.flush().unwrap();
    // Give the reactor a beat to dispatch it, then park one more in the
    // batcher behind the long window.
    std::thread::sleep(std::time::Duration::from_millis(10));
    let small64 = base64_encode(&write_program(
        &assemble(SAMPLE).unwrap(),
        ImageKind::Uncompressed,
    ));
    let mut held_conn = connect(&socket);
    writeln!(
        held_conn,
        r#"{{"op":"compress","grammar":"{id_hex}","image":"{small64}"}}"#
    )
    .unwrap();
    held_conn.flush().unwrap();

    // Shutdown while the slow request is in flight and the small one is
    // still held in its batch window.
    let mut shutdown_conn = connect(&socket);
    let resp = exchange(&mut shutdown_conn, r#"{"op":"shutdown"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));

    // Both outstanding requests still get their responses.
    for conn in [&mut slow_conn, &mut held_conn] {
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).expect("drained response");
        assert!(!line.is_empty(), "response must arrive before shutdown");
        let resp = json::parse(&line).expect("response is JSON");
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "in-flight request must complete during drain: {resp:?}"
        );
    }
    server_thread.join().unwrap();
    assert!(!socket.exists());
}

#[test]
fn engine_eviction_bounds_resident_engines() {
    let scratch = Scratch::new("serve-evict");
    let registry = Registry::open(scratch.path("reg")).unwrap();
    let mut hexes = Vec::new();
    hexes.push(registry.store(&sample_grammar(), "g0").unwrap().id.to_hex());
    for variant in 0..2 {
        let mut file = sample_grammar();
        if variant == 0 {
            file.start = file.byte_nt;
        } else {
            file.byte_nt = file.start;
        }
        hexes.push(registry.store(&file, "gx").unwrap().id.to_hex());
    }
    let socket = scratch.path("pgr.sock");
    let server = Server::bind(
        &socket,
        ServeConfig {
            registry_root: scratch.path("reg"),
            threads: 1,
            max_engines: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    // Touch more grammars than may stay resident (success not required —
    // an engine loads before its request can fail), then loop back to
    // the first: it must reload transparently after eviction.
    let image = base64_encode(&write_program(
        &assemble(SAMPLE).unwrap(),
        ImageKind::Uncompressed,
    ));
    let mut stream = connect(&socket);
    for hex in hexes.iter().chain([&hexes[0]]) {
        let _ = exchange(
            &mut stream,
            &format!(r#"{{"op":"compress","grammar":"{hex}","image":"{image}"}}"#),
        );
    }
    let resp = exchange(
        &mut stream,
        &format!(
            r#"{{"op":"compress","grammar":"{}","image":"{image}"}}"#,
            hexes[0]
        ),
    );
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "evicted grammar must reload on demand: {resp:?}"
    );

    let resp = exchange(&mut stream, r#"{"op":"stats"}"#);
    assert_eq!(
        resp.get("engines").and_then(Value::as_u64),
        Some(1),
        "resident engines stay at the bound"
    );
    assert!(
        resp.get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get(names::SERVE_ENGINES_EVICTED))
            .and_then(Value::as_u64)
            .unwrap()
            >= 3,
        "each over-bound load evicts"
    );

    let resp = exchange(&mut stream, r#"{"op":"shutdown"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    server_thread.join().unwrap();
}
