//! Robustness tests for the serve loop: request deadlines with
//! cooperative cancellation, idle-connection eviction, request-line
//! byte bounds, slow-log rotation, and a seeded socket-level chaos run.
//!
//! The contract under test: a stuck or adversarial peer costs the
//! server *one request slot for one deadline*, never a worker, never a
//! connection-table slot, and never a neighbor's latency.

use pgr_bytecode::asm::assemble;
use pgr_bytecode::{write_program, ImageKind};
use pgr_grammar::{GrammarFile, InitialGrammar};
use pgr_registry::{base64_encode, ChaosConfig, ChaosProxy, Registry, ServeConfig, Server};
use pgr_telemetry::json::{self, Value};
use pgr_telemetry::names;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("pgr-robust-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sample_grammar() -> GrammarFile {
    let ig = InitialGrammar::build();
    GrammarFile::new(ig.grammar, ig.nt_start, ig.nt_byte)
}

/// A program that never halts: `run` on it can only end by deadline (or
/// fuel, far later).
const SPIN: &str =
    "proc main frame=0 args=0\n\tlabel 0\n\tLIT1 1\n\tBrTrue 0\n\tRETV\nendproc\nentry main\n";
/// A program that halts immediately.
const HALT: &str = "proc main frame=0 args=0\n\tRETV\nendproc\nentry main\n";

fn image_b64(asm: &str) -> String {
    base64_encode(&write_program(
        &assemble(asm).expect("assemble"),
        ImageKind::Uncompressed,
    ))
}

fn connect(socket: &Path) -> UnixStream {
    for _ in 0..100 {
        if let Ok(stream) = UnixStream::connect(socket) {
            return stream;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("server socket never came up at {}", socket.display());
}

fn exchange(stream: &mut UnixStream, request: &str) -> Value {
    writeln!(stream, "{request}").expect("send request");
    stream.flush().expect("flush request");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(!line.is_empty(), "connection closed instead of answering");
    json::parse(&line).expect("response is JSON")
}

/// Bind a server with robustness knobs and run it on a thread.
fn spawn_server(
    scratch: &Scratch,
    tweak: impl FnOnce(&mut ServeConfig),
) -> (PathBuf, std::thread::JoinHandle<()>, String) {
    let registry = Registry::open(scratch.path("reg")).unwrap();
    let manifest = registry.store(&sample_grammar(), "robustness").unwrap();
    let socket = scratch.path("pgr.sock");
    let mut config = ServeConfig {
        registry_root: scratch.path("reg"),
        threads: 1,
        ..ServeConfig::default()
    };
    tweak(&mut config);
    let server = Server::bind(&socket, config).unwrap();
    let thread = std::thread::spawn(move || server.run().unwrap());
    (socket, thread, manifest.id.to_hex())
}

#[test]
fn server_deadline_fails_the_stuck_request_in_band_while_neighbors_proceed() {
    let scratch = Scratch::new("deadline");
    let (socket, server_thread, id_hex) = spawn_server(&scratch, |c| {
        c.request_timeout_ms = Some(300);
        c.workers = 2;
    });

    // The stuck request: a spinning program under the 300 ms server
    // ceiling. Cooperative cancellation must answer it in-band well
    // within 2× the deadline — the watchdog's force-expiry bound.
    let spin64 = image_b64(SPIN);
    let mut stuck = connect(&socket);
    stuck
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    writeln!(stuck, r#"{{"op":"run","image":"{spin64}"}}"#).unwrap();
    stuck.flush().unwrap();

    // A neighbor on its own connection is served while the spin burns.
    let mut neighbor = connect(&socket);
    let halt64 = image_b64(HALT);
    let resp = exchange(
        &mut neighbor,
        &format!(r#"{{"op":"compress","grammar":"{id_hex}","image":"{halt64}"}}"#),
    );
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "neighbor must be served while a deadline burns: {resp:?}"
    );

    let mut reader = BufReader::new(stuck.try_clone().unwrap());
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("deadline answer arrives");
    let elapsed = started.elapsed();
    let resp = json::parse(&line).unwrap();
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        resp.get("error").and_then(Value::as_str),
        Some("deadline_exceeded"),
        "{resp:?}"
    );
    assert!(
        elapsed <= Duration::from_millis(2 * 300 + 400),
        "in-band expiry must land within ~2x the deadline, took {elapsed:?}"
    );
    // The connection survived its own request's death.
    let resp = exchange(&mut stuck, r#"{"op":"stats"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    let counters = resp.get("metrics").and_then(|m| m.get("counters")).unwrap();
    assert!(
        counters
            .get(names::SERVE_DEADLINE_EXCEEDED)
            .and_then(Value::as_u64)
            .unwrap()
            >= 1,
        "deadline metric must count the expiry"
    );
    assert!(
        resp.get("window")
            .and_then(|w| w.get("deadline_exceeded"))
            .and_then(Value::as_u64)
            .unwrap()
            >= 1,
        "sliding window must see the expiry"
    );

    exchange(&mut stuck, r#"{"op":"shutdown"}"#);
    server_thread.join().unwrap();
}

#[test]
fn per_request_timeout_is_honored_and_clamped_to_the_server_ceiling() {
    let scratch = Scratch::new("deadline-req");
    let (socket, server_thread, _) = spawn_server(&scratch, |c| {
        c.request_timeout_ms = Some(5_000);
        c.workers = 2;
    });

    // A request-supplied 200 ms deadline under a 5 s ceiling: the
    // request's own deadline governs.
    let spin64 = image_b64(SPIN);
    let mut stream = connect(&socket);
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    let resp = exchange(
        &mut stream,
        &format!(r#"{{"op":"run","timeout_ms":200,"image":"{spin64}"}}"#),
    );
    let elapsed = started.elapsed();
    assert_eq!(
        resp.get("error").and_then(Value::as_str),
        Some("deadline_exceeded"),
        "{resp:?}"
    );
    assert!(
        elapsed < Duration::from_secs(3),
        "the request's 200 ms deadline must govern, not the 5 s ceiling: {elapsed:?}"
    );
    // Expiry reports how long the request ran: cooperative expiry
    // carries `micros`, watchdog force-expiry carries `elapsed_ms`.
    assert!(
        resp.get("micros").and_then(Value::as_u64).is_some()
            || resp.get("elapsed_ms").and_then(Value::as_u64).is_some(),
        "expiry reports elapsed time: {resp:?}"
    );

    exchange(&mut stream, r#"{"op":"shutdown"}"#);
    server_thread.join().unwrap();
}

#[test]
fn idle_connections_are_evicted_and_active_ones_are_not() {
    let scratch = Scratch::new("idle");
    let (socket, server_thread, _) = spawn_server(&scratch, |c| {
        c.idle_timeout_ms = Some(150);
    });

    // An idle connection is closed after the timeout...
    let idle = connect(&socket);
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(idle.try_clone().unwrap());
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read EOF from eviction");
    assert_eq!(n, 0, "idle connection must be closed, got {line:?}");

    // ...while a connection that keeps talking (each exchange well
    // within the idle window) stays up across several windows' worth of
    // wall time.
    let mut active = connect(&socket);
    for _ in 0..6 {
        std::thread::sleep(Duration::from_millis(80));
        let resp = exchange(&mut active, r#"{"op":"stats"}"#);
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    }
    let resp = exchange(&mut active, r#"{"op":"stats"}"#);
    let counters = resp.get("metrics").and_then(|m| m.get("counters")).unwrap();
    assert!(
        counters
            .get(names::SERVE_CONN_IDLE_CLOSED)
            .and_then(Value::as_u64)
            .unwrap()
            >= 1,
        "eviction must be counted"
    );
    assert!(
        resp.get("window")
            .and_then(|w| w.get("idle_closed"))
            .and_then(Value::as_u64)
            .unwrap()
            >= 1
    );

    exchange(&mut active, r#"{"op":"shutdown"}"#);
    server_thread.join().unwrap();
}

#[test]
fn oversized_lines_are_answered_in_band_and_the_slot_is_reclaimed() {
    let scratch = Scratch::new("linebound");
    let (socket, server_thread, _) = spawn_server(&scratch, |c| {
        c.max_line_bytes = 1024;
        // One slot: a leaked entry for the bounced connection would lock
        // the follow-up client out.
        c.max_connections = 1;
    });

    let mut fat = connect(&socket);
    fat.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // 4 KiB of valid JSON on one line — four times the bound. The
    // server may answer and close mid-send (it needs only the first
    // 1 KiB to know), so a broken pipe here is fine: the in-band
    // answer is already queued on our side.
    let padding = "x".repeat(4096);
    let line = format!("{{\"op\":\"stats\",\"pad\":\"{padding}\"}}\n");
    match fat.write_all(line.as_bytes()) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
        Err(e) => panic!("send oversized line: {e}"),
    }
    let mut reader = BufReader::new(fat.try_clone().unwrap());
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("in-band overflow answer");
    let resp = json::parse(&line).unwrap();
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    let error = resp.get("error").and_then(Value::as_str).unwrap();
    assert!(
        error.contains("1024"),
        "overflow answer names the bound: {error}"
    );
    // After the answer, the connection is closed.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "then closed");

    // The slot came back: the next client is served normally.
    let mut next = connect(&socket);
    next.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let resp = exchange(&mut next, r#"{"op":"stats"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    let counters = resp.get("metrics").and_then(|m| m.get("counters")).unwrap();
    assert!(
        counters
            .get(names::SERVE_LINE_OVERFLOW)
            .and_then(Value::as_u64)
            .unwrap()
            >= 1
    );

    exchange(&mut next, r#"{"op":"shutdown"}"#);
    server_thread.join().unwrap();
}

#[test]
fn peer_closing_mid_batch_with_flush_deadline_pending_does_not_wedge_the_flush() {
    let scratch = Scratch::new("midbatch");
    let (socket, server_thread, id_hex) = spawn_server(&scratch, |c| {
        c.workers = 1;
        // A long window so the second request is still *held* in the
        // batcher (flush deadline pending) when its peer hangs up.
        c.batch_window_us = 300_000;
    });

    let halt64 = image_b64(HALT);
    let req = format!(r#"{{"op":"compress","grammar":"{id_hex}","image":"{halt64}"}}"#);

    // Occupy the single worker so batches queue rather than flush
    // adaptively.
    let mut busy = connect(&socket);
    busy.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    writeln!(busy, "{req}").unwrap();
    busy.flush().unwrap();
    std::thread::sleep(Duration::from_millis(20));

    // A second peer parks a request in the batch window, then vanishes
    // before the flush deadline fires.
    {
        let mut doomed = connect(&socket);
        writeln!(doomed, "{req}").unwrap();
        doomed.flush().unwrap();
    } // dropped: peer closes with its request still held

    // The busy connection's own response arrives, and the server keeps
    // answering afterwards — the orphaned batch member's completion hit
    // a closed connection and was discarded, not wedged on.
    let mut reader = BufReader::new(busy.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("busy response");
    assert_eq!(
        json::parse(&line)
            .unwrap()
            .get("ok")
            .and_then(Value::as_bool),
        Some(true)
    );
    std::thread::sleep(Duration::from_millis(400)); // past the flush deadline
    let resp = exchange(&mut busy, r#"{"op":"stats"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));

    exchange(&mut busy, r#"{"op":"shutdown"}"#);
    server_thread.join().unwrap();
}

#[test]
fn slow_log_rotates_at_the_byte_cap_instead_of_growing_without_bound() {
    let scratch = Scratch::new("slowlog");
    let slow_log = scratch.path("slow.ndjson");
    let cap: u64 = 4096;
    let (socket, server_thread, _) = {
        let log = slow_log.clone();
        spawn_server(&scratch, move |c| {
            c.slow_ms = Some(0); // every request is "slow"
            c.slow_trace = Some(log);
            c.slow_trace_max_bytes = cap;
        })
    };

    // Enough traced requests to overflow a 4 KiB cap several times.
    let mut stream = connect(&socket);
    for _ in 0..120 {
        let resp = exchange(&mut stream, r#"{"op":"stats"}"#);
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    }
    exchange(&mut stream, r#"{"op":"shutdown"}"#);
    server_thread.join().unwrap();

    let current = std::fs::metadata(&slow_log).expect("slow log exists").len();
    let rotated = slow_log.with_extension("ndjson.old");
    let old = std::fs::metadata(&rotated)
        .expect("rotation produced .old")
        .len();
    // One record may straddle the cap, so allow a record's worth of
    // slack — but the total on disk must be bounded by ~2× the cap, not
    // by the request count.
    let slack = 2048;
    assert!(
        current <= cap + slack,
        "current generation stays near the cap: {current} > {cap} + {slack}"
    );
    assert!(
        old <= cap + slack,
        "rotated generation stays near the cap: {old}"
    );
    // Both generations hold parseable NDJSON.
    for path in [&slow_log, &rotated] {
        let text = std::fs::read_to_string(path).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            json::parse(line).unwrap_or_else(|e| panic!("{}: bad line {e}", path.display()));
        }
    }
}

#[test]
fn seeded_chaos_never_hangs_the_server_and_healthy_peers_stay_byte_identical() {
    let scratch = Scratch::new("chaos");
    let (socket, server_thread, id_hex) = spawn_server(&scratch, |c| {
        c.workers = 2;
        c.request_timeout_ms = Some(2_000);
        c.max_connections = 32;
        c.max_line_bytes = 1 << 20;
    });

    // The fault proxy fronts the real socket; chaos clients go through
    // it, healthy clients go direct.
    let front = scratch.path("chaos.sock");
    let proxy = ChaosProxy::start(
        &front,
        &socket,
        ChaosConfig {
            seed: 1337,
            partial_write_per_1024: 256,
            reset_per_1024: 128,
            stall_per_1024: 128,
            stall_ms: 10,
            garbage_per_1024: 128,
        },
    )
    .unwrap();

    // Healthy reference: what a compress of HALT must always return.
    let halt64 = image_b64(HALT);
    let req = format!(r#"{{"op":"compress","grammar":"{id_hex}","image":"{halt64}"}}"#);
    let mut reference = connect(&socket);
    reference
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let golden = exchange(&mut reference, &req)
        .get("image")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();

    // Chaos churn: 24 connections through the proxy, each trying a few
    // requests; resets and garbage are expected, hangs are not.
    let churn = {
        let front = front.clone();
        let req = req.clone();
        std::thread::spawn(move || {
            for _ in 0..24 {
                let Ok(stream) = UnixStream::connect(&front) else {
                    continue;
                };
                stream
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut w = stream;
                for _ in 0..4 {
                    if w.write_all(format!("{req}\n").as_bytes()).is_err() {
                        break;
                    }
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break; // reset; that connection is done
                    }
                }
            }
        })
    };

    // Healthy clients in parallel, direct to the server: every answer
    // must be ok and byte-identical to the golden image.
    let mut healthy = Vec::new();
    for _ in 0..3 {
        let socket = socket.clone();
        let req = req.clone();
        let golden = golden.clone();
        healthy.push(std::thread::spawn(move || {
            let mut stream = connect(&socket);
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            for _ in 0..10 {
                let resp = exchange(&mut stream, &req);
                assert_eq!(
                    resp.get("ok").and_then(Value::as_bool),
                    Some(true),
                    "healthy peer failed during chaos: {resp:?}"
                );
                assert_eq!(
                    resp.get("image").and_then(Value::as_str),
                    Some(golden.as_str()),
                    "healthy peer got non-identical bytes during chaos"
                );
            }
        }));
    }
    for h in healthy {
        h.join().expect("healthy client panicked");
    }
    churn.join().expect("chaos churn panicked");
    proxy.stop();

    // Every chaos connection's slot came back: the connection table can
    // still seat a full house.
    let mut full_house = Vec::new();
    for _ in 0..8 {
        let mut stream = connect(&socket);
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let resp = exchange(&mut stream, r#"{"op":"stats"}"#);
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "slot not reclaimed after chaos: {resp:?}"
        );
        full_house.push(stream);
    }
    drop(full_house);

    let mut stream = connect(&socket);
    exchange(&mut stream, r#"{"op":"shutdown"}"#);
    server_thread.join().unwrap();
    assert!(!socket.exists());
}
