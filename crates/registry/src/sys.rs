//! Minimal Linux `epoll` + `eventfd` bindings via direct syscalls.
//!
//! The build environment vendors no external crates, so there is no
//! `libc` to lean on; the reactor needs exactly four kernel facilities —
//! `epoll_create1`, `epoll_ctl`, `epoll_pwait`/`epoll_pwait2`, and
//! `eventfd2` — and this module provides them with inline `syscall`
//! instructions, gated to the architectures the project builds on
//! (x86-64 and aarch64 Linux). Everything socket-shaped still goes
//! through `std::os::unix::net` in nonblocking mode; only readiness
//! notification and the cross-thread wake primitive live here.
//!
//! `epoll_pwait2` (nanosecond timeouts, kernel ≥ 5.11) is preferred so
//! sub-millisecond batch windows don't round up to whole-millisecond
//! sleeps; on `ENOSYS` the poller downgrades once to `epoll_pwait` with
//! ceiling-rounded milliseconds and remembers.

use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

// Syscall numbers for the supported architectures.
#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
    pub const EPOLL_PWAIT2: usize = 441;
}
#[cfg(target_arch = "aarch64")]
mod nr {
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const CLOSE: usize = 57;
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const EPOLL_PWAIT2: usize = 441;
}

const EPOLL_CLOEXEC: usize = 0x80000;
const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;

/// Readiness bits (subset of the kernel's `EPOLL*` mask).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EFD_NONBLOCK: usize = 0x800;
const EFD_CLOEXEC: usize = 0x80000;

const ENOSYS: i32 = 38;
const EINTR: i32 = 4;
const EAGAIN: i32 = 11;

/// One readiness notification. x86-64 packs the struct (kernel ABI);
/// other architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// `EPOLL*` readiness bits.
    pub events: u32,
    /// The caller's token, round-tripped verbatim.
    pub data: u64,
}

impl EpollEvent {
    /// The token this event is for.
    pub fn token(&self) -> u64 {
        // A copy, not a reference: the field may be unaligned on x86-64.
        self.data
    }

    /// The readiness bits.
    pub fn readiness(&self) -> u32 {
        self.events
    }
}

/// `struct timespec` as `epoll_pwait2` expects it.
#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

/// Raw 6-argument syscall. Lower-arity calls pass zeros; the kernel only
/// reads the arguments each syscall declares.
///
/// # Safety
///
/// The caller must uphold the invariants of the specific syscall:
/// pointers valid for the kernel's declared access, fds owned.
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") n as isize => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        in("r8") a5,
        in("r9") a6,
        out("rcx") _,
        out("r11") _,
        options(nostack),
    );
    ret
}

/// See the x86-64 variant.
///
/// # Safety
///
/// As above.
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc #0",
        in("x8") n,
        inlateout("x0") a1 => ret,
        in("x1") a2,
        in("x2") a3,
        in("x3") a4,
        in("x4") a5,
        in("x5") a6,
        options(nostack),
    );
    ret
}

/// Fold a raw syscall return into `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

fn close_fd(fd: RawFd) {
    // SAFETY: `fd` is an fd this module opened and owns.
    let _ = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
}

/// What a registered fd should be watched for. Level-triggered; error
/// and hang-up conditions are always reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Watch for readable data (and peer read-side hang-up).
    pub readable: bool,
    /// Watch for writable space.
    pub writable: bool,
}

impl Interest {
    fn mask(self) -> u32 {
        let mut m = 0;
        if self.readable {
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// An epoll instance: register fds with tokens, wait for readiness.
pub struct Poller {
    epfd: RawFd,
    /// Whether `epoll_pwait2` came back `ENOSYS` (pre-5.11 kernel).
    no_pwait2: AtomicBool,
}

impl Poller {
    /// Create a close-on-exec epoll instance.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: no pointers involved.
        let epfd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Poller {
            epfd: epfd as RawFd,
            no_pwait2: AtomicBool::new(false),
        })
    }

    fn ctl(&self, op: usize, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let ptr = event
            .as_ref()
            .map_or(std::ptr::null(), |e| e as *const EpollEvent);
        // SAFETY: `ptr` is null (DEL) or points at a live EpollEvent for
        // the duration of the call; epfd and fd are owned by the caller.
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.epfd as usize,
                op,
                fd as usize,
                ptr as usize,
                0,
                0,
            )
        })?;
        Ok(())
    }

    /// Register `fd` under `token`.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Change what `fd` is watched for.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Deregister `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Wait for readiness, filling `events` from the front; returns how
    /// many fired. `None` blocks indefinitely; `Some(d)` wakes after at
    /// most `d` (nanosecond precision where the kernel supports
    /// `epoll_pwait2`, ceiling-rounded milliseconds otherwise).
    ///
    /// Signal interruptions are absorbed: the wait re-arms with the
    /// remaining time until the deadline genuinely passes (or forever
    /// for `None`). The old behaviour — reporting `EINTR` as zero
    /// events — fabricated a spurious timeout, which with `None` told
    /// an indefinitely-blocking caller that a deadline it never set had
    /// expired.
    pub fn wait(&self, events: &mut [EpollEvent], timeout: Option<Duration>) -> io::Result<usize> {
        if events.is_empty() {
            // maxevents must be positive, and rounding it up to 1 would
            // license the kernel to write past a zero-length slice.
            return Ok(0);
        }
        let start = std::time::Instant::now();
        loop {
            let remaining = match remaining_after(timeout, start.elapsed()) {
                Some(r) => r,
                // The deadline passed while we were being interrupted:
                // now it really is a timeout.
                None => return Ok(0),
            };
            match self.wait_once(events, remaining) {
                Err(e) if e.raw_os_error() == Some(EINTR) => continue,
                other => return other,
            }
        }
    }

    /// One `epoll_pwait2`/`epoll_pwait` round; `EINTR` surfaces to the
    /// caller ([`Poller::wait`] re-arms with the remaining time).
    fn wait_once(&self, events: &mut [EpollEvent], timeout: Option<Duration>) -> io::Result<usize> {
        let ptr = events.as_mut_ptr() as usize;
        let cap = events.len();
        if !self.no_pwait2.load(Ordering::Relaxed) {
            let ts = timeout.map(|d| Timespec {
                tv_sec: d.as_secs() as i64,
                tv_nsec: i64::from(d.subsec_nanos()),
            });
            let ts_ptr = ts.as_ref().map_or(0, |t| t as *const Timespec as usize);
            // SAFETY: `ptr` addresses `cap` writable EpollEvents; the
            // timespec (if any) outlives the call; sigmask is null.
            let ret =
                unsafe { syscall6(nr::EPOLL_PWAIT2, self.epfd as usize, ptr, cap, ts_ptr, 0, 8) };
            match check(ret) {
                Ok(n) => return Ok(n),
                Err(e) if e.raw_os_error() == Some(ENOSYS) => {
                    self.no_pwait2.store(true, Ordering::Relaxed);
                }
                Err(e) => return Err(e),
            }
        }
        let ms: usize = match timeout {
            None => usize::MAX, // -1 as the kernel's int timeout: block
            Some(d) => {
                let whole = d.as_millis();
                let ceil = whole + u128::from(u8::from(d.subsec_nanos() % 1_000_000 != 0));
                ceil.min(i32::MAX as u128) as usize
            }
        };
        // SAFETY: as above; timeout is by value.
        let ret = unsafe { syscall6(nr::EPOLL_PWAIT, self.epfd as usize, ptr, cap, ms, 0, 8) };
        check(ret)
    }

    /// Pretend `epoll_pwait2` already came back `ENOSYS`, forcing every
    /// subsequent wait down the millisecond `epoll_pwait` path.
    #[cfg(test)]
    fn force_ms_fallback(&self) {
        self.no_pwait2.store(true, Ordering::Relaxed);
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        close_fd(self.epfd);
    }
}

/// How much wait time is left after a signal interruption `elapsed`
/// into a wait armed with `timeout`. `None` means the deadline already
/// passed (a genuine timeout); `Some(None)` means keep blocking
/// indefinitely — an interrupted infinite wait must never report as a
/// timeout.
fn remaining_after(timeout: Option<Duration>, elapsed: Duration) -> Option<Option<Duration>> {
    match timeout {
        None => Some(None),
        Some(d) => {
            let left = d.checked_sub(elapsed)?;
            if left.is_zero() {
                return None;
            }
            Some(Some(left))
        }
    }
}

/// A nonblocking `eventfd` used to wake the reactor from worker threads
/// (and to request shutdown) — the explicit replacement for the old
/// racy connect-to-self wake.
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    /// Create the eventfd (counter semantics, nonblocking, cloexec).
    pub fn new() -> io::Result<WakeFd> {
        // SAFETY: no pointers involved.
        let fd =
            check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_NONBLOCK | EFD_CLOEXEC, 0, 0, 0, 0) })?;
        Ok(WakeFd { fd: fd as RawFd })
    }

    /// The fd to register with a [`Poller`].
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Make the fd readable. Safe from any thread; an already-pending
    /// wake (counter at max) is as good as another one, so `EAGAIN` is
    /// ignored.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a live stack variable to an owned fd.
        let _ = unsafe {
            syscall6(
                nr::WRITE,
                self.fd as usize,
                &one as *const u64 as usize,
                8,
                0,
                0,
                0,
            )
        };
    }

    /// Consume pending wakes so level-triggered polling quiesces.
    pub fn drain(&self) {
        let mut buf = 0u64;
        loop {
            // SAFETY: reads 8 bytes into a live stack variable from an
            // owned fd.
            let ret = unsafe {
                syscall6(
                    nr::READ,
                    self.fd as usize,
                    &mut buf as *mut u64 as usize,
                    8,
                    0,
                    0,
                    0,
                )
            };
            if ret < 0 {
                let errno = -ret as i32;
                if errno == EINTR {
                    continue;
                }
                debug_assert!(errno == EAGAIN, "eventfd read failed: errno {errno}");
                return;
            }
            // Counter semantics: one successful read clears it.
            return;
        }
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

// SAFETY: WakeFd is an fd; write(2) on an eventfd is thread-safe.
unsafe impl Send for WakeFd {}
// SAFETY: as above.
unsafe impl Sync for WakeFd {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    #[test]
    fn poller_reports_readability_and_tokens() {
        let poller = Poller::new().expect("epoll_create1");
        let (mut a, mut b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        poller
            .add(
                b.as_raw_fd(),
                7,
                Interest {
                    readable: true,
                    writable: false,
                },
            )
            .expect("epoll_ctl add");

        let mut events = [EpollEvent::default(); 8];
        // Nothing readable yet: a zero timeout returns promptly.
        let n = poller
            .wait(&mut events, Some(Duration::ZERO))
            .expect("epoll_wait");
        assert_eq!(n, 0);

        a.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("epoll_wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);

        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 4);
    }

    #[test]
    fn wakefd_wakes_across_threads_and_drains() {
        let poller = Poller::new().expect("epoll_create1");
        let wake = std::sync::Arc::new(WakeFd::new().expect("eventfd2"));
        poller
            .add(
                wake.as_raw_fd(),
                1,
                Interest {
                    readable: true,
                    writable: false,
                },
            )
            .expect("epoll_ctl add");

        let peer = std::sync::Arc::clone(&wake);
        let handle = std::thread::spawn(move || peer.wake());
        let mut events = [EpollEvent::default(); 4];
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("epoll_wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 1);
        handle.join().unwrap();

        wake.drain();
        let n = poller
            .wait(&mut events, Some(Duration::ZERO))
            .expect("epoll_wait");
        assert_eq!(n, 0, "drained wake must quiesce level-triggered polling");
    }

    #[test]
    fn ms_fallback_path_reports_readiness_and_timeouts() {
        // Force the pre-5.11 `epoll_pwait` millisecond path and re-run
        // the basic readiness contract through it.
        let poller = Poller::new().expect("epoll_create1");
        poller.force_ms_fallback();
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        poller
            .add(
                b.as_raw_fd(),
                42,
                Interest {
                    readable: true,
                    writable: false,
                },
            )
            .expect("epoll_ctl add");

        let mut events = [EpollEvent::default(); 4];
        // Sub-millisecond timeouts ceiling-round to 1ms on this path;
        // either way the wait must return promptly with no events.
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_micros(300)))
            .expect("epoll_wait (ms fallback, sub-ms timeout)");
        assert_eq!(n, 0);
        assert!(start.elapsed() < Duration::from_millis(250));

        a.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("epoll_wait (ms fallback, readable)");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);
    }

    #[test]
    fn remaining_after_rearms_correctly() {
        // An interrupted infinite wait keeps blocking indefinitely —
        // this is the spurious-timeout bug the re-arm loop fixes.
        assert_eq!(remaining_after(None, Duration::from_secs(999)), Some(None));

        // Mid-wait interruption re-arms with the time left.
        assert_eq!(
            remaining_after(Some(Duration::from_millis(100)), Duration::from_millis(30)),
            Some(Some(Duration::from_millis(70)))
        );

        // Interruption at or past the deadline is a genuine timeout.
        assert_eq!(
            remaining_after(Some(Duration::from_millis(100)), Duration::from_millis(100)),
            None
        );
        assert_eq!(
            remaining_after(Some(Duration::from_millis(100)), Duration::from_millis(250)),
            None
        );

        // A zero timeout polls once and reports timeout on interruption.
        assert_eq!(remaining_after(Some(Duration::ZERO), Duration::ZERO), None);
    }

    #[test]
    fn sub_millisecond_timeouts_do_not_block() {
        let poller = Poller::new().expect("epoll_create1");
        let start = Instant::now();
        let mut events = [EpollEvent::default(); 1];
        let n = poller
            .wait(&mut events, Some(Duration::from_micros(300)))
            .expect("epoll_wait");
        assert_eq!(n, 0);
        assert!(
            start.elapsed() < Duration::from_millis(250),
            "a 300µs timeout must not block for long: {:?}",
            start.elapsed()
        );
    }
}
