//! The epoll-driven serve core: one event thread, a fixed worker pool,
//! per-connection NDJSON framing, same-grammar batching, and in-band
//! backpressure.
//!
//! The event thread owns every socket. It accepts on the (nonblocking)
//! listener, reads whatever bytes are ready, frames complete request
//! lines, and *routes* them — `compress` lines naming a grammar go to
//! the [`Batcher`], everything else is queued to the worker pool
//! directly. Workers never touch a socket: they hand finished
//! [`Done`] responses back through a completion list and wake the
//! event thread over an eventfd ([`WakeFd`]), which writes each
//! response on its connection in request (`seq`) order — a protocol
//! invariant pipelined clients rely on, upheld for rejections too.
//!
//! Batching is adaptive. A pending batch flushes immediately while a
//! worker sits idle with an empty queue — a lone request never pays the
//! window — and otherwise waits out
//! [`ReactorConfig::batch_window`] for company, the deadline doubling
//! as the epoll timeout. Backpressure is layered and always in-band:
//! beyond [`ReactorConfig::max_connections`] a new connection gets one
//! `overloaded` line and is closed; beyond [`ReactorConfig::max_queue`]
//! pending same-grammar requests (or four times that across the whole
//! queue for singles), a request is answered
//! `{"ok":false,"error":"overloaded","retry_after_ms":N}` without
//! touching an engine. A client that keeps pipelining past its own
//! unanswered requests has its reads paused until responses drain, so
//! per-connection buffers stay bounded as well.
//!
//! Shutdown is a drain, not a cliff: once a worker handles a `shutdown`
//! request the event thread stops accepting, pauses every read, force-
//! flushes held batches, and keeps polling until every dispatched
//! request has produced a response and every response byte is written —
//! then joins the pool and returns.

use crate::batch::{Batcher, Done, PendingRequest};
use crate::serve::{handle_batch, handle_single, State};
use crate::sys::{
    EpollEvent, Interest, Poller, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use pgr_telemetry::{names, CancelToken, TraceId};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Reactor-specific knobs, split off [`crate::serve::ServeConfig`] by
/// [`crate::Server::run`].
pub(crate) struct ReactorConfig {
    /// Worker threads handling requests (0 = one per CPU).
    pub workers: usize,
    /// How long a pending batch may wait for company.
    pub batch_window: Duration,
    /// Connection-table bound.
    pub max_connections: usize,
    /// Per-grammar pending-batch bound; ×4, the global bound on queued
    /// single requests.
    pub max_queue: usize,
    /// Evict connections silent this long with nothing in flight.
    pub idle_timeout: Option<Duration>,
    /// Per-connection request-line byte bound; overflow is answered
    /// in-band and the connection closed.
    pub max_line_bytes: usize,
}

/// How far past its deadline a request's worker may run before the
/// watchdog force-expires the request from the reactor side. Cooperative
/// cancellation (the worker polling its token) answers almost every
/// deadline; the watchdog is the backstop for a worker wedged between
/// cancellation points, so the *connection slot* is released even when
/// the worker is not.
const WATCHDOG_GRACE_FACTOR: u32 = 2;

/// Epoll token of the listener.
const LISTENER: u64 = 0;
/// Epoll token of the worker-completion eventfd.
const WAKE: u64 = 1;
/// First connection token.
const FIRST_CONN: u64 = 2;

/// `retry_after_ms` hint when the connection table is full — new
/// connections, unlike queued requests, have no batch window to key off.
const CONN_RETRY_AFTER_MS: u64 = 100;

/// One unit of work for the pool.
enum Work {
    /// A request handled on its own (`decompress`, `run`, `stats`, …).
    Single(PendingRequest),
    /// A flushed same-grammar compress batch: one engine dispatch.
    Batch(crate::batch::Batch),
    /// Poison pill: the reactor is done, exit the worker loop.
    Shutdown,
}

/// What the event thread shares with the workers.
struct Pool {
    queue: Mutex<VecDeque<Work>>,
    available: Condvar,
    /// Workers currently handling a work item (for the adaptive flush
    /// heuristic: flush early only when someone is free to start now).
    busy: AtomicUsize,
    /// Requests handed to the pool whose responses have not yet been
    /// collected by the event thread — the shutdown-drain counter.
    outstanding: AtomicU64,
    /// Finished responses, drained by the event thread on wake.
    completions: Mutex<Vec<Done>>,
    wake: Arc<WakeFd>,
    state: Arc<State>,
}

impl Pool {
    fn push(&self, work: Work) {
        let requests = match &work {
            Work::Single(_) => 1,
            Work::Batch(batch) => batch.requests.len() as u64,
            Work::Shutdown => 0,
        };
        self.outstanding.fetch_add(requests, Ordering::Relaxed);
        self.queue.lock().expect("work queue lock").push_back(work);
        self.available.notify_one();
    }

    /// Whether dispatching right now would start immediately: the queue
    /// is empty and at least one worker is free.
    fn can_start_now(&self, workers: usize) -> bool {
        self.busy.load(Ordering::Relaxed) < workers
            && self.queue.lock().expect("work queue lock").is_empty()
    }
}

/// The worker loop: pop, handle, hand the response back, wake the
/// event thread.
fn worker(pool: &Pool) {
    loop {
        let work = {
            let mut queue = pool.queue.lock().expect("work queue lock");
            loop {
                if let Some(work) = queue.pop_front() {
                    break work;
                }
                queue = pool.available.wait(queue).expect("work queue lock");
            }
        };
        pool.busy.fetch_add(1, Ordering::Relaxed);
        let done = match work {
            Work::Single(req) => {
                pool.state.queue_depth.fetch_sub(1, Ordering::Relaxed);
                vec![handle_single(&pool.state, req)]
            }
            Work::Batch(batch) => {
                pool.state
                    .queue_depth
                    .fetch_sub(batch.requests.len() as u64, Ordering::Relaxed);
                handle_batch(&pool.state, batch)
            }
            Work::Shutdown => {
                pool.busy.fetch_sub(1, Ordering::Relaxed);
                return;
            }
        };
        pool.completions
            .lock()
            .expect("completion list lock")
            .extend(done);
        pool.busy.fetch_sub(1, Ordering::Relaxed);
        pool.wake.wake();
    }
}

/// One connection's reactor-side state.
struct Conn {
    /// This connection's epoll token — the address completions carry.
    token: u64,
    stream: UnixStream,
    /// Bytes read but not yet framed into a complete line.
    read_buf: Vec<u8>,
    /// Serialized responses waiting for the socket to accept them.
    write_buf: Vec<u8>,
    /// How much of `write_buf` is already written.
    write_pos: usize,
    /// Next sequence number to assign to an arriving request.
    next_seq: u64,
    /// The sequence number the next written response must carry.
    next_write: u64,
    /// Out-of-order completions parked until their turn.
    ready: BTreeMap<u64, String>,
    /// Peer sent EOF (or the read side failed): no more requests.
    read_closed: bool,
    /// What the poller currently watches this fd for.
    registered: Interest,
    /// Last moment the peer showed signs of life (bytes read, response
    /// written) — the idle-timeout clock.
    last_activity: Instant,
    /// Seqs the watchdog already answered with a synthesized
    /// `deadline_exceeded`; the worker's late completion for one of
    /// these must be discarded, not written as a duplicate response.
    expired: HashSet<u64>,
}

impl Conn {
    /// Requests accepted from this connection and not yet answered on
    /// the wire.
    fn in_flight(&self) -> u64 {
        self.next_seq - self.next_write
    }

    /// Whether every accepted request has been answered and flushed.
    fn flushed(&self) -> bool {
        self.in_flight() == 0 && self.write_pos == self.write_buf.len()
    }
}

/// Extract the string value of a top-level `"key":"value"` pair by
/// lexical scan — no allocation, no parse. Only trustworthy on lines
/// with **no backslash** (checked by the caller): without escapes, a
/// JSON string cannot contain `"`, so quote-delimited tokens are exact.
/// Returns `None` on anything surprising; the caller then falls back to
/// the single-request path, which does a full parse.
fn scan_str_field<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let bytes = line.as_bytes();
    let needle = format!("\"{key}\"");
    let mut from = 0;
    while let Some(at) = line[from..].find(&needle) {
        let mut i = from + at + needle.len();
        while i < bytes.len() && (bytes[i] as char).is_ascii_whitespace() {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b':' {
            i += 1;
            while i < bytes.len() && (bytes[i] as char).is_ascii_whitespace() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'"' {
                let start = i + 1;
                let end = line[start..].find('"')? + start;
                return Some(&line[start..end]);
            }
            // A key match with a non-string value: not what we want.
            return None;
        }
        // Matched a string *value* spelled like the key; keep looking.
        from = from + at + needle.len();
    }
    None
}

/// Extract the unsigned-integer value of a top-level `"key":123` pair by
/// lexical scan, under the same no-backslash contract as
/// [`scan_str_field`]. Returns `None` on anything surprising; the full
/// parse in the worker then arms the deadline instead.
fn scan_num_field(line: &str, key: &str) -> Option<u64> {
    let bytes = line.as_bytes();
    let needle = format!("\"{key}\"");
    let mut from = 0;
    while let Some(at) = line[from..].find(&needle) {
        let mut i = from + at + needle.len();
        while i < bytes.len() && (bytes[i] as char).is_ascii_whitespace() {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b':' {
            i += 1;
            while i < bytes.len() && (bytes[i] as char).is_ascii_whitespace() {
                i += 1;
            }
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i == start {
                return None; // key present but not a plain integer
            }
            return line[start..i].parse().ok();
        }
        // Matched a string *value* spelled like the key; keep looking.
        from = from + at + needle.len();
    }
    None
}

/// One in-flight request the watchdog is timing: where its synthesized
/// answer would go, when to give up on the worker, and the token to
/// fire when doing so.
struct Watched {
    /// Force-expiry moment: `received + grace × deadline`.
    expire_at: Instant,
    /// The request's arrival, for the synthesized response's elapsed
    /// figure.
    received: Instant,
    cancel: CancelToken,
    trace_hex: String,
}

/// The reactor-side deadline watchdog: every request admitted with a
/// deadline is tracked from intake to completion, and one whose worker
/// misses the deadline by [`WATCHDOG_GRACE_FACTOR`] is answered
/// in-band from the event thread — the connection's slot frees even if
/// the worker never reports back.
#[derive(Default)]
struct Watchdog {
    entries: HashMap<(u64, u64), Watched>,
}

impl Watchdog {
    /// Start timing request (`conn`, `seq`).
    fn register(
        &mut self,
        conn: u64,
        seq: u64,
        received: Instant,
        deadline: Duration,
        cancel: CancelToken,
        trace_hex: String,
    ) {
        let grace = deadline.saturating_mul(WATCHDOG_GRACE_FACTOR);
        self.entries.insert(
            (conn, seq),
            Watched {
                expire_at: received + grace,
                received,
                cancel,
                trace_hex,
            },
        );
    }

    /// The request completed (or its connection vanished): stop timing.
    fn resolve(&mut self, conn: u64, seq: u64) {
        self.entries.remove(&(conn, seq));
    }

    /// Drop every entry belonging to a closed connection.
    fn forget_conn(&mut self, conn: u64) {
        self.entries.retain(|&(c, _), _| c != conn);
    }

    /// The earliest force-expiry moment, for the poll timeout.
    fn next_deadline(&self) -> Option<Instant> {
        self.entries.values().map(|w| w.expire_at).min()
    }

    /// Every entry due at `now`, removed and returned.
    fn take_due(&mut self, now: Instant) -> Vec<((u64, u64), Watched)> {
        let due: Vec<(u64, u64)> = self
            .entries
            .iter()
            .filter(|(_, w)| w.expire_at <= now)
            .map(|(&k, _)| k)
            .collect();
        due.into_iter()
            .filter_map(|k| self.entries.remove(&k).map(|w| (k, w)))
            .collect()
    }
}

/// Where a framed request line should go.
enum Route<'l> {
    /// A compress naming this grammar: batchable.
    Batch(&'l str),
    /// Everything else — including anything the scan cannot vouch for.
    Single,
}

/// Classify a line with [`scan_str_field`]. Conservative by design:
/// misrouting *into* a batch is caught by `handle_batch`'s full parse
/// (it diverts mismatches back to the single path), and misrouting out
/// of one only forgoes coalescing.
fn route(line: &str) -> Route<'_> {
    if line.contains('\\') {
        // Escapes defeat the lexical scan; let the real parser decide.
        return Route::Single;
    }
    match (scan_str_field(line, "op"), scan_str_field(line, "grammar")) {
        (Some("compress"), Some(grammar)) => Route::Batch(grammar),
        _ => Route::Single,
    }
}

/// The reactor proper. Runs on the calling thread until shutdown has
/// fully drained; returns early only on unrecoverable poller errors.
pub(crate) fn run(state: Arc<State>, listener: UnixListener, cfg: ReactorConfig) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let wake = Arc::new(WakeFd::new()?);
    let read_only = Interest {
        readable: true,
        writable: false,
    };
    poller.add(listener.as_raw_fd(), LISTENER, read_only)?;
    poller.add(wake.as_raw_fd(), WAKE, read_only)?;

    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.workers
    };
    let pool = Arc::new(Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        busy: AtomicUsize::new(0),
        outstanding: AtomicU64::new(0),
        completions: Mutex::new(Vec::new()),
        wake: Arc::clone(&wake),
        state: Arc::clone(&state),
    });
    let mut pool_handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let pool = Arc::clone(&pool);
        pool_handles.push(std::thread::spawn(move || worker(&pool)));
    }

    let mut batcher = Batcher::new(cfg.batch_window, cfg.max_queue.max(1));
    // The bound on one connection's unanswered pipeline; past it the
    // reactor stops reading that socket until responses drain.
    let pipeline_bound = (cfg.max_queue.saturating_mul(4)).max(16) as u64;
    // The bound on queued single requests, across all connections.
    let singles_bound = (cfg.max_queue.saturating_mul(4)).max(1) as u64;
    let queue_retry_ms = (cfg.batch_window.as_millis() as u64).max(1);

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut watchdog = Watchdog::default();
    let mut next_token = FIRST_CONN;
    let mut listening = true;
    let mut draining = false;
    let mut events = vec![EpollEvent::default(); 64];

    loop {
        let timeout = if draining {
            // Completions wake us; this is only a safety tick.
            Some(Duration::from_millis(20))
        } else {
            // Sleep until whichever fires first: a batch window, a
            // watchdog force-expiry, or an idle eviction.
            let mut next = batcher.next_deadline();
            if let Some(at) = watchdog.next_deadline() {
                next = Some(next.map_or(at, |n| n.min(at)));
            }
            if let Some(idle) = cfg.idle_timeout {
                if let Some(oldest) = conns.values().map(|c| c.last_activity).min() {
                    let at = oldest + idle;
                    next = Some(next.map_or(at, |n| n.min(at)));
                }
            }
            next.map(|deadline| deadline.saturating_duration_since(Instant::now()))
        };
        let fired = poller.wait(&mut events, timeout)?;

        for event in &events[..fired] {
            let readiness = event.readiness();
            match event.token() {
                LISTENER => accept_ready(
                    &state,
                    &poller,
                    &listener,
                    &mut conns,
                    &mut next_token,
                    &cfg,
                    read_only,
                ),
                WAKE => wake.drain(),
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue; // closed earlier this sweep
                    };
                    if readiness & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
                        read_ready(conn);
                    }
                    if readiness & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0 {
                        write_some(conn);
                    }
                }
            }
        }

        // Apply worker completions before ingesting: park each response
        // under its seq, then write everything now in order. Ingest runs
        // after, so pipeline capacity these responses free up is usable
        // this very sweep — ingesting first could strand a burst's
        // framed-but-over-bound lines in read_buf with nothing left to
        // wake the poller (the completions that lifted the bound already
        // fired their one wake).
        let done = std::mem::take(&mut *pool.completions.lock().expect("completion list lock"));
        pool.outstanding
            .fetch_sub(done.len() as u64, Ordering::Relaxed);
        for d in done {
            watchdog.resolve(d.conn, d.seq);
            if let Some(conn) = conns.get_mut(&d.conn) {
                // A request the watchdog already force-expired was
                // answered from the event thread; the worker's late
                // completion must be discarded, not written twice.
                if conn.expired.remove(&d.seq) {
                    continue;
                }
                // The write path skips next_write past requests it gave
                // up on (peer died mid-pipeline); a completion arriving
                // for such a seq must be discarded — promote_ready never
                // visits seqs below next_write, so parking it would hold
                // `ready` non-empty and block reaping forever.
                if d.seq >= conn.next_write {
                    conn.ready.insert(d.seq, d.response);
                }
            }
            // A vanished connection means the peer hung up before its
            // answer: nothing to write to.
        }
        for conn in conns.values_mut() {
            promote_ready(conn);
        }

        // A worker saw `shutdown`: stop accepting, stop reading, flush
        // every held batch, and drain.
        if !draining && !state.running.load(Ordering::SeqCst) {
            draining = true;
            if listening {
                let _ = poller.delete(listener.as_raw_fd());
                listening = false;
            }
        }

        // Frame and route whatever the reads produced — and whatever a
        // paused pipeline still holds buffered, now that completions
        // have been applied. After this pass a connection only keeps a
        // framed-but-undispatched line while at its pipeline bound, and
        // the completions that lift the bound always wake the poller.
        for conn in conns.values_mut() {
            ingest(
                &state,
                &pool,
                &mut batcher,
                &mut watchdog,
                conn,
                draining,
                pipeline_bound,
                singles_bound,
                queue_retry_ms,
                cfg.max_line_bytes,
            );
        }

        // Flush batches: due ones always; everything while a worker
        // could start it immediately (or the server is draining) —
        // holding a batch nobody is ahead of only adds latency.
        let now = Instant::now();
        let force = draining || pool.can_start_now(workers);
        for batch in batcher.take_due(now, force) {
            pool.push(Work::Batch(batch));
        }

        // Watchdog sweep: any request whose worker has blown through
        // the deadline *and* the grace window is answered from here —
        // the token is fired so the worker stops at its next
        // cancellation point, the synthesized response takes the
        // request's seq slot, and the worker's eventual completion is
        // discarded via `expired`.
        for ((conn_token, seq), w) in watchdog.take_due(now) {
            let Some(conn) = conns.get_mut(&conn_token) else {
                continue; // peer already gone; nothing to answer
            };
            if seq < conn.next_write || conn.ready.contains_key(&seq) {
                continue; // answered after all (or given up on)
            }
            w.cancel.cancel();
            let elapsed_ms = now.duration_since(w.received).as_millis() as u64;
            conn.ready.insert(
                seq,
                crate::proto::ResponseLine::deadline_exceeded(elapsed_ms, &w.trace_hex),
            );
            conn.expired.insert(seq);
            state.recorder.add(names::SERVE_DEADLINE_FORCE_EXPIRED, 1);
            state
                .window
                .lock()
                .expect("window lock")
                .record_deadline(state.start.elapsed().as_secs(), true);
            promote_ready(conn);
        }

        // Sync each connection's epoll interest with what it can
        // currently make progress on, and reap finished connections —
        // including ones idle past the idle timeout with nothing in
        // flight.
        let mut closed: Vec<u64> = Vec::new();
        for (&token, conn) in &mut conns {
            let idle_expired = !draining
                && cfg.idle_timeout.is_some_and(|idle| {
                    conn.flushed() && now.duration_since(conn.last_activity) >= idle
                });
            if idle_expired {
                state.recorder.add(names::SERVE_CONN_IDLE_CLOSED, 1);
                state
                    .window
                    .lock()
                    .expect("window lock")
                    .record_idle_closed(state.start.elapsed().as_secs());
            }
            let gone = conn.read_closed && conn.flushed() && conn.ready.is_empty();
            if gone || idle_expired || (draining && conn.flushed()) {
                let _ = poller.delete(conn.stream.as_raw_fd());
                closed.push(token);
                continue;
            }
            let want = Interest {
                readable: !draining && !conn.read_closed && conn.in_flight() < pipeline_bound,
                writable: conn.write_pos < conn.write_buf.len(),
            };
            if want != conn.registered
                && poller.modify(conn.stream.as_raw_fd(), token, want).is_ok()
            {
                conn.registered = want;
            }
        }
        for token in closed {
            watchdog.forget_conn(token);
            conns.remove(&token);
        }

        if draining
            && pool.outstanding.load(Ordering::Relaxed) == 0
            && batcher.held() == 0
            && conns.values().all(Conn::flushed)
        {
            break;
        }
    }

    for _ in 0..workers {
        pool.push(Work::Shutdown);
    }
    pool.available.notify_all();
    for handle in pool_handles {
        let _ = handle.join();
    }
    Ok(())
}

/// Accept every pending connection; beyond the table bound, answer one
/// `overloaded` line best-effort and close.
#[allow(clippy::too_many_arguments)]
fn accept_ready(
    state: &State,
    poller: &Poller,
    listener: &UnixListener,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    cfg: &ReactorConfig,
    read_only: Interest,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if conns.len() >= cfg.max_connections.max(1) {
                    reject_connection(state, stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let token = *next_token;
                *next_token += 1;
                if poller.add(stream.as_raw_fd(), token, read_only).is_err() {
                    continue;
                }
                state.recorder.add(names::SERVE_CONNECTIONS, 1);
                conns.insert(
                    token,
                    Conn {
                        token,
                        stream,
                        read_buf: Vec::new(),
                        write_buf: Vec::new(),
                        write_pos: 0,
                        next_seq: 0,
                        next_write: 0,
                        ready: BTreeMap::new(),
                        read_closed: false,
                        registered: read_only,
                        last_activity: Instant::now(),
                        expired: HashSet::new(),
                    },
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Turn away a connection the table has no room for: one in-band
/// `overloaded` line (best effort — the socket buffer is empty, so a
/// short nonblocking write only fails if the peer is already gone).
fn reject_connection(state: &State, stream: UnixStream) {
    let mut stream = stream;
    record_rejection(state);
    let line =
        crate::proto::ResponseLine::overloaded(CONN_RETRY_AFTER_MS, &TraceId::mint().to_hex());
    let _ = stream.set_nonblocking(true);
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// Count one admission-control rejection everywhere it is observable.
fn record_rejection(state: &State) {
    state.recorder.add(names::SERVE_REQUESTS, 1);
    state.recorder.add(names::SERVE_ERRORS, 1);
    state.recorder.add(names::SERVE_REJECTED_OVERLOAD, 1);
    state
        .window
        .lock()
        .expect("window lock")
        .record_rejected(state.start.elapsed().as_secs());
}

/// Read whatever is available into the connection's buffer. EOF and
/// read errors both mean "no more requests"; queued responses still get
/// written.
fn read_ready(conn: &mut Conn) {
    if conn.read_closed {
        return;
    }
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                return;
            }
            Ok(n) => {
                conn.read_buf.extend_from_slice(&chunk[..n]);
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.read_closed = true;
                return;
            }
        }
    }
}

/// Frame complete lines out of the read buffer and route each, up to
/// the connection's pipeline bound. Every admitted request gets a
/// [`CancelToken`] armed with its effective deadline (the request's own
/// `timeout_ms`, clamped to the server ceiling) and, when a deadline
/// exists, a watchdog entry for reactor-side force expiry.
#[allow(clippy::too_many_arguments)]
fn ingest(
    state: &Arc<State>,
    pool: &Pool,
    batcher: &mut Batcher,
    watchdog: &mut Watchdog,
    conn: &mut Conn,
    draining: bool,
    pipeline_bound: u64,
    singles_bound: u64,
    queue_retry_ms: u64,
    max_line_bytes: usize,
) {
    if draining {
        // Lines still buffered when shutdown lands were never accepted;
        // only already-dispatched requests are owed responses.
        return;
    }
    while conn.in_flight() < pipeline_bound {
        let nl = conn.read_buf.iter().position(|&b| b == b'\n');
        // One request line past the byte bound — framed or still
        // accumulating — is answered in-band and the connection closed:
        // an unbounded read buffer is how one adversarial peer balloons
        // the reactor's memory.
        let oversized = max_line_bytes > 0
            && match nl {
                Some(nl) => nl > max_line_bytes,
                None => conn.read_buf.len() > max_line_bytes,
            };
        if oversized {
            line_overflow(state, conn, max_line_bytes);
            return;
        }
        let Some(nl) = nl else {
            return;
        };
        let line_bytes: Vec<u8> = conn.read_buf.drain(..=nl).collect();
        let Ok(text) = std::str::from_utf8(&line_bytes[..nl]) else {
            // Not UTF-8, so not JSON either; let the normal handler
            // produce the parse-error response (lossily decoded).
            let text = String::from_utf8_lossy(&line_bytes[..nl]).into_owned();
            let seq = conn.next_seq;
            conn.next_seq += 1;
            dispatch_single(
                state,
                pool,
                conn,
                PendingRequest {
                    conn: conn.token,
                    seq,
                    line: text,
                    received: Instant::now(),
                    trace: TraceId::mint(),
                    cancel: CancelToken::new(),
                },
                singles_bound,
                queue_retry_ms,
            );
            continue;
        };
        let line = text.trim();
        if line.is_empty() {
            continue;
        }
        let received = Instant::now();
        let trace = TraceId::mint();
        let cancel = CancelToken::new();
        // Effective deadline: the scanned `timeout_ms` clamped to the
        // server ceiling. Escaped lines defeat the lexical scan; they
        // get the ceiling here and their own `timeout_ms` when the
        // worker's full parse tightens the token (no watchdog entry for
        // that tightening — cooperative cancellation still holds).
        let requested = if line.contains('\\') {
            None
        } else {
            scan_num_field(line, "timeout_ms")
        };
        let deadline = state
            .effective_timeout_ms(requested)
            .map(Duration::from_millis);
        if let Some(d) = deadline {
            cancel.set_deadline(d);
        }
        match route(line) {
            Route::Batch(grammar) => {
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let request = PendingRequest {
                    conn: conn.token,
                    seq,
                    line: line.to_string(),
                    received,
                    trace,
                    cancel: cancel.clone(),
                };
                let grammar = grammar.to_string();
                match batcher.push(&grammar, request) {
                    Ok(()) => {
                        bump_queue_depth(state);
                        if let Some(d) = deadline {
                            watchdog.register(conn.token, seq, received, d, cancel, trace.to_hex());
                        }
                    }
                    Err(bounced) => {
                        record_rejection(state);
                        conn.ready.insert(
                            bounced.seq,
                            crate::proto::ResponseLine::overloaded(
                                queue_retry_ms,
                                &bounced.trace.to_hex(),
                            ),
                        );
                    }
                }
            }
            Route::Single => {
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let queued = dispatch_single(
                    state,
                    pool,
                    conn,
                    PendingRequest {
                        conn: conn.token,
                        seq,
                        line: line.to_string(),
                        received,
                        trace,
                        cancel: cancel.clone(),
                    },
                    singles_bound,
                    queue_retry_ms,
                );
                if queued {
                    if let Some(d) = deadline {
                        watchdog.register(conn.token, seq, received, d, cancel, trace.to_hex());
                    }
                }
            }
        }
        promote_ready(conn);
    }
}

/// Answer a request line that blew the byte bound and close the
/// connection: the in-band error takes the next seq slot (pipelined
/// responses ahead of it still drain in order), reads stop, and the
/// buffered oversize data is dropped.
fn line_overflow(state: &Arc<State>, conn: &mut Conn, max_line_bytes: usize) {
    let seq = conn.next_seq;
    conn.next_seq += 1;
    state.recorder.add(names::SERVE_LINE_OVERFLOW, 1);
    state
        .window
        .lock()
        .expect("window lock")
        .record_line_overflow(state.start.elapsed().as_secs());
    conn.ready.insert(
        seq,
        crate::proto::ResponseLine::err_traced(
            &format!("request line exceeds the {max_line_bytes}-byte bound"),
            &TraceId::mint().to_hex(),
            0,
        ),
    );
    conn.read_buf.clear();
    conn.read_buf.shrink_to_fit();
    conn.read_closed = true;
    promote_ready(conn);
}

/// Queue one request for individual handling, applying the global
/// singles bound (stats and shutdown are exempt: operators must be able
/// to observe and stop an overloaded server). Returns whether the
/// request reached the pool (`false` = rejected in-band).
fn dispatch_single(
    state: &Arc<State>,
    pool: &Pool,
    conn: &mut Conn,
    req: PendingRequest,
    singles_bound: u64,
    queue_retry_ms: u64,
) -> bool {
    // Match the actual `op` field, not a whole-line substring — a
    // payload merely *containing* "stats" must not bypass the bound.
    // Escapes defeat the lexical scan (see `route`), but no plain
    // stats/shutdown request needs them; an unscannable line simply
    // gets no exemption.
    let op = if req.line.contains('\\') {
        None
    } else {
        scan_str_field(&req.line, "op")
    };
    let exempt = matches!(op, Some("stats" | "shutdown"));
    if !exempt && state.queue_depth.load(Ordering::Relaxed) >= singles_bound {
        record_rejection(state);
        conn.ready.insert(
            req.seq,
            crate::proto::ResponseLine::overloaded(queue_retry_ms, &req.trace.to_hex()),
        );
        return false;
    }
    bump_queue_depth(state);
    pool.push(Work::Single(req));
    true
}

/// Count a request into the queue-depth gauge.
fn bump_queue_depth(state: &State) {
    let depth = state.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
    state.recorder.gauge_max(names::SERVE_QUEUE_DEPTH, depth);
}

/// Move responses whose turn has come from the parking map into the
/// write buffer, then push bytes.
fn promote_ready(conn: &mut Conn) {
    while let Some(response) = conn.ready.remove(&conn.next_write) {
        conn.write_buf.extend_from_slice(response.as_bytes());
        conn.write_buf.push(b'\n');
        conn.next_write += 1;
    }
    write_some(conn);
}

/// Write as much buffered response data as the socket accepts.
fn write_some(conn: &mut Conn) {
    while conn.write_pos < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => break,
            Ok(n) => {
                conn.write_pos += n;
                // A freshly-written response resets the idle clock, so a
                // peer is never evicted the instant its slow answer
                // lands.
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Peer is gone: discard what it will never read so the
                // connection counts as flushed and can be reaped.
                conn.write_buf.clear();
                conn.write_pos = 0;
                conn.ready.clear();
                conn.next_write = conn.next_seq;
                conn.read_closed = true;
                return;
            }
        }
    }
    if conn.write_pos == conn.write_buf.len() {
        conn.write_buf.clear();
        conn.write_pos = 0;
    }
}
