//! The epoll-driven serve core: one event thread, a fixed worker pool,
//! per-connection NDJSON framing, same-grammar batching, and in-band
//! backpressure.
//!
//! The event thread owns every socket. It accepts on the (nonblocking)
//! listener, reads whatever bytes are ready, frames complete request
//! lines, and *routes* them — `compress` lines naming a grammar go to
//! the [`Batcher`], everything else is queued to the worker pool
//! directly. Workers never touch a socket: they hand finished
//! [`Done`] responses back through a completion list and wake the
//! event thread over an eventfd ([`WakeFd`]), which writes each
//! response on its connection in request (`seq`) order — a protocol
//! invariant pipelined clients rely on, upheld for rejections too.
//!
//! Batching is adaptive. A pending batch flushes immediately while a
//! worker sits idle with an empty queue — a lone request never pays the
//! window — and otherwise waits out
//! [`ReactorConfig::batch_window`] for company, the deadline doubling
//! as the epoll timeout. Backpressure is layered and always in-band:
//! beyond [`ReactorConfig::max_connections`] a new connection gets one
//! `overloaded` line and is closed; beyond [`ReactorConfig::max_queue`]
//! pending same-grammar requests (or four times that across the whole
//! queue for singles), a request is answered
//! `{"ok":false,"error":"overloaded","retry_after_ms":N}` without
//! touching an engine. A client that keeps pipelining past its own
//! unanswered requests has its reads paused until responses drain, so
//! per-connection buffers stay bounded as well.
//!
//! Shutdown is a drain, not a cliff: once a worker handles a `shutdown`
//! request the event thread stops accepting, pauses every read, force-
//! flushes held batches, and keeps polling until every dispatched
//! request has produced a response and every response byte is written —
//! then joins the pool and returns.

use crate::batch::{Batcher, Done, PendingRequest};
use crate::serve::{handle_batch, handle_single, State};
use crate::sys::{
    EpollEvent, Interest, Poller, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use pgr_telemetry::{names, TraceId};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Reactor-specific knobs, split off [`crate::serve::ServeConfig`] by
/// [`crate::Server::run`].
pub(crate) struct ReactorConfig {
    /// Worker threads handling requests (0 = one per CPU).
    pub workers: usize,
    /// How long a pending batch may wait for company.
    pub batch_window: Duration,
    /// Connection-table bound.
    pub max_connections: usize,
    /// Per-grammar pending-batch bound; ×4, the global bound on queued
    /// single requests.
    pub max_queue: usize,
}

/// Epoll token of the listener.
const LISTENER: u64 = 0;
/// Epoll token of the worker-completion eventfd.
const WAKE: u64 = 1;
/// First connection token.
const FIRST_CONN: u64 = 2;

/// `retry_after_ms` hint when the connection table is full — new
/// connections, unlike queued requests, have no batch window to key off.
const CONN_RETRY_AFTER_MS: u64 = 100;

/// One unit of work for the pool.
enum Work {
    /// A request handled on its own (`decompress`, `run`, `stats`, …).
    Single(PendingRequest),
    /// A flushed same-grammar compress batch: one engine dispatch.
    Batch(crate::batch::Batch),
    /// Poison pill: the reactor is done, exit the worker loop.
    Shutdown,
}

/// What the event thread shares with the workers.
struct Pool {
    queue: Mutex<VecDeque<Work>>,
    available: Condvar,
    /// Workers currently handling a work item (for the adaptive flush
    /// heuristic: flush early only when someone is free to start now).
    busy: AtomicUsize,
    /// Requests handed to the pool whose responses have not yet been
    /// collected by the event thread — the shutdown-drain counter.
    outstanding: AtomicU64,
    /// Finished responses, drained by the event thread on wake.
    completions: Mutex<Vec<Done>>,
    wake: Arc<WakeFd>,
    state: Arc<State>,
}

impl Pool {
    fn push(&self, work: Work) {
        let requests = match &work {
            Work::Single(_) => 1,
            Work::Batch(batch) => batch.requests.len() as u64,
            Work::Shutdown => 0,
        };
        self.outstanding.fetch_add(requests, Ordering::Relaxed);
        self.queue.lock().expect("work queue lock").push_back(work);
        self.available.notify_one();
    }

    /// Whether dispatching right now would start immediately: the queue
    /// is empty and at least one worker is free.
    fn can_start_now(&self, workers: usize) -> bool {
        self.busy.load(Ordering::Relaxed) < workers
            && self.queue.lock().expect("work queue lock").is_empty()
    }
}

/// The worker loop: pop, handle, hand the response back, wake the
/// event thread.
fn worker(pool: &Pool) {
    loop {
        let work = {
            let mut queue = pool.queue.lock().expect("work queue lock");
            loop {
                if let Some(work) = queue.pop_front() {
                    break work;
                }
                queue = pool.available.wait(queue).expect("work queue lock");
            }
        };
        pool.busy.fetch_add(1, Ordering::Relaxed);
        let done = match work {
            Work::Single(req) => {
                pool.state.queue_depth.fetch_sub(1, Ordering::Relaxed);
                vec![handle_single(&pool.state, req)]
            }
            Work::Batch(batch) => {
                pool.state
                    .queue_depth
                    .fetch_sub(batch.requests.len() as u64, Ordering::Relaxed);
                handle_batch(&pool.state, batch)
            }
            Work::Shutdown => {
                pool.busy.fetch_sub(1, Ordering::Relaxed);
                return;
            }
        };
        pool.completions
            .lock()
            .expect("completion list lock")
            .extend(done);
        pool.busy.fetch_sub(1, Ordering::Relaxed);
        pool.wake.wake();
    }
}

/// One connection's reactor-side state.
struct Conn {
    /// This connection's epoll token — the address completions carry.
    token: u64,
    stream: UnixStream,
    /// Bytes read but not yet framed into a complete line.
    read_buf: Vec<u8>,
    /// Serialized responses waiting for the socket to accept them.
    write_buf: Vec<u8>,
    /// How much of `write_buf` is already written.
    write_pos: usize,
    /// Next sequence number to assign to an arriving request.
    next_seq: u64,
    /// The sequence number the next written response must carry.
    next_write: u64,
    /// Out-of-order completions parked until their turn.
    ready: BTreeMap<u64, String>,
    /// Peer sent EOF (or the read side failed): no more requests.
    read_closed: bool,
    /// What the poller currently watches this fd for.
    registered: Interest,
}

impl Conn {
    /// Requests accepted from this connection and not yet answered on
    /// the wire.
    fn in_flight(&self) -> u64 {
        self.next_seq - self.next_write
    }

    /// Whether every accepted request has been answered and flushed.
    fn flushed(&self) -> bool {
        self.in_flight() == 0 && self.write_pos == self.write_buf.len()
    }
}

/// Extract the string value of a top-level `"key":"value"` pair by
/// lexical scan — no allocation, no parse. Only trustworthy on lines
/// with **no backslash** (checked by the caller): without escapes, a
/// JSON string cannot contain `"`, so quote-delimited tokens are exact.
/// Returns `None` on anything surprising; the caller then falls back to
/// the single-request path, which does a full parse.
fn scan_str_field<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let bytes = line.as_bytes();
    let needle = format!("\"{key}\"");
    let mut from = 0;
    while let Some(at) = line[from..].find(&needle) {
        let mut i = from + at + needle.len();
        while i < bytes.len() && (bytes[i] as char).is_ascii_whitespace() {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b':' {
            i += 1;
            while i < bytes.len() && (bytes[i] as char).is_ascii_whitespace() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'"' {
                let start = i + 1;
                let end = line[start..].find('"')? + start;
                return Some(&line[start..end]);
            }
            // A key match with a non-string value: not what we want.
            return None;
        }
        // Matched a string *value* spelled like the key; keep looking.
        from = from + at + needle.len();
    }
    None
}

/// Where a framed request line should go.
enum Route<'l> {
    /// A compress naming this grammar: batchable.
    Batch(&'l str),
    /// Everything else — including anything the scan cannot vouch for.
    Single,
}

/// Classify a line with [`scan_str_field`]. Conservative by design:
/// misrouting *into* a batch is caught by `handle_batch`'s full parse
/// (it diverts mismatches back to the single path), and misrouting out
/// of one only forgoes coalescing.
fn route(line: &str) -> Route<'_> {
    if line.contains('\\') {
        // Escapes defeat the lexical scan; let the real parser decide.
        return Route::Single;
    }
    match (scan_str_field(line, "op"), scan_str_field(line, "grammar")) {
        (Some("compress"), Some(grammar)) => Route::Batch(grammar),
        _ => Route::Single,
    }
}

/// The reactor proper. Runs on the calling thread until shutdown has
/// fully drained; returns early only on unrecoverable poller errors.
pub(crate) fn run(state: Arc<State>, listener: UnixListener, cfg: ReactorConfig) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let wake = Arc::new(WakeFd::new()?);
    let read_only = Interest {
        readable: true,
        writable: false,
    };
    poller.add(listener.as_raw_fd(), LISTENER, read_only)?;
    poller.add(wake.as_raw_fd(), WAKE, read_only)?;

    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.workers
    };
    let pool = Arc::new(Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        busy: AtomicUsize::new(0),
        outstanding: AtomicU64::new(0),
        completions: Mutex::new(Vec::new()),
        wake: Arc::clone(&wake),
        state: Arc::clone(&state),
    });
    let mut pool_handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let pool = Arc::clone(&pool);
        pool_handles.push(std::thread::spawn(move || worker(&pool)));
    }

    let mut batcher = Batcher::new(cfg.batch_window, cfg.max_queue.max(1));
    // The bound on one connection's unanswered pipeline; past it the
    // reactor stops reading that socket until responses drain.
    let pipeline_bound = (cfg.max_queue.saturating_mul(4)).max(16) as u64;
    // The bound on queued single requests, across all connections.
    let singles_bound = (cfg.max_queue.saturating_mul(4)).max(1) as u64;
    let queue_retry_ms = (cfg.batch_window.as_millis() as u64).max(1);

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN;
    let mut listening = true;
    let mut draining = false;
    let mut events = vec![EpollEvent::default(); 64];

    loop {
        let timeout = if draining {
            // Completions wake us; this is only a safety tick.
            Some(Duration::from_millis(20))
        } else {
            batcher
                .next_deadline()
                .map(|deadline| deadline.saturating_duration_since(Instant::now()))
        };
        let fired = poller.wait(&mut events, timeout)?;

        for event in &events[..fired] {
            let readiness = event.readiness();
            match event.token() {
                LISTENER => accept_ready(
                    &state,
                    &poller,
                    &listener,
                    &mut conns,
                    &mut next_token,
                    &cfg,
                    read_only,
                ),
                WAKE => wake.drain(),
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue; // closed earlier this sweep
                    };
                    if readiness & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
                        read_ready(conn);
                    }
                    if readiness & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0 {
                        write_some(conn);
                    }
                }
            }
        }

        // Apply worker completions before ingesting: park each response
        // under its seq, then write everything now in order. Ingest runs
        // after, so pipeline capacity these responses free up is usable
        // this very sweep — ingesting first could strand a burst's
        // framed-but-over-bound lines in read_buf with nothing left to
        // wake the poller (the completions that lifted the bound already
        // fired their one wake).
        let done = std::mem::take(&mut *pool.completions.lock().expect("completion list lock"));
        pool.outstanding
            .fetch_sub(done.len() as u64, Ordering::Relaxed);
        for d in done {
            if let Some(conn) = conns.get_mut(&d.conn) {
                // The write path skips next_write past requests it gave
                // up on (peer died mid-pipeline); a completion arriving
                // for such a seq must be discarded — promote_ready never
                // visits seqs below next_write, so parking it would hold
                // `ready` non-empty and block reaping forever.
                if d.seq >= conn.next_write {
                    conn.ready.insert(d.seq, d.response);
                }
            }
            // A vanished connection means the peer hung up before its
            // answer: nothing to write to.
        }
        for conn in conns.values_mut() {
            promote_ready(conn);
        }

        // A worker saw `shutdown`: stop accepting, stop reading, flush
        // every held batch, and drain.
        if !draining && !state.running.load(Ordering::SeqCst) {
            draining = true;
            if listening {
                let _ = poller.delete(listener.as_raw_fd());
                listening = false;
            }
        }

        // Frame and route whatever the reads produced — and whatever a
        // paused pipeline still holds buffered, now that completions
        // have been applied. After this pass a connection only keeps a
        // framed-but-undispatched line while at its pipeline bound, and
        // the completions that lift the bound always wake the poller.
        for conn in conns.values_mut() {
            ingest(
                &state,
                &pool,
                &mut batcher,
                conn,
                draining,
                pipeline_bound,
                singles_bound,
                queue_retry_ms,
            );
        }

        // Flush batches: due ones always; everything while a worker
        // could start it immediately (or the server is draining) —
        // holding a batch nobody is ahead of only adds latency.
        let now = Instant::now();
        let force = draining || pool.can_start_now(workers);
        for batch in batcher.take_due(now, force) {
            pool.push(Work::Batch(batch));
        }

        // Sync each connection's epoll interest with what it can
        // currently make progress on, and reap finished connections.
        let mut closed: Vec<u64> = Vec::new();
        for (&token, conn) in &mut conns {
            let gone = conn.read_closed && conn.flushed() && conn.ready.is_empty();
            if gone || (draining && conn.flushed()) {
                let _ = poller.delete(conn.stream.as_raw_fd());
                closed.push(token);
                continue;
            }
            let want = Interest {
                readable: !draining && !conn.read_closed && conn.in_flight() < pipeline_bound,
                writable: conn.write_pos < conn.write_buf.len(),
            };
            if want != conn.registered
                && poller.modify(conn.stream.as_raw_fd(), token, want).is_ok()
            {
                conn.registered = want;
            }
        }
        for token in closed {
            conns.remove(&token);
        }

        if draining
            && pool.outstanding.load(Ordering::Relaxed) == 0
            && batcher.held() == 0
            && conns.values().all(Conn::flushed)
        {
            break;
        }
    }

    for _ in 0..workers {
        pool.push(Work::Shutdown);
    }
    pool.available.notify_all();
    for handle in pool_handles {
        let _ = handle.join();
    }
    Ok(())
}

/// Accept every pending connection; beyond the table bound, answer one
/// `overloaded` line best-effort and close.
#[allow(clippy::too_many_arguments)]
fn accept_ready(
    state: &State,
    poller: &Poller,
    listener: &UnixListener,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    cfg: &ReactorConfig,
    read_only: Interest,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if conns.len() >= cfg.max_connections.max(1) {
                    reject_connection(state, stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let token = *next_token;
                *next_token += 1;
                if poller.add(stream.as_raw_fd(), token, read_only).is_err() {
                    continue;
                }
                state.recorder.add(names::SERVE_CONNECTIONS, 1);
                conns.insert(
                    token,
                    Conn {
                        token,
                        stream,
                        read_buf: Vec::new(),
                        write_buf: Vec::new(),
                        write_pos: 0,
                        next_seq: 0,
                        next_write: 0,
                        ready: BTreeMap::new(),
                        read_closed: false,
                        registered: read_only,
                    },
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Turn away a connection the table has no room for: one in-band
/// `overloaded` line (best effort — the socket buffer is empty, so a
/// short nonblocking write only fails if the peer is already gone).
fn reject_connection(state: &State, stream: UnixStream) {
    let mut stream = stream;
    record_rejection(state);
    let line =
        crate::proto::ResponseLine::overloaded(CONN_RETRY_AFTER_MS, &TraceId::mint().to_hex());
    let _ = stream.set_nonblocking(true);
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// Count one admission-control rejection everywhere it is observable.
fn record_rejection(state: &State) {
    state.recorder.add(names::SERVE_REQUESTS, 1);
    state.recorder.add(names::SERVE_ERRORS, 1);
    state.recorder.add(names::SERVE_REJECTED_OVERLOAD, 1);
    state
        .window
        .lock()
        .expect("window lock")
        .record_rejected(state.start.elapsed().as_secs());
}

/// Read whatever is available into the connection's buffer. EOF and
/// read errors both mean "no more requests"; queued responses still get
/// written.
fn read_ready(conn: &mut Conn) {
    if conn.read_closed {
        return;
    }
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                return;
            }
            Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.read_closed = true;
                return;
            }
        }
    }
}

/// Frame complete lines out of the read buffer and route each, up to
/// the connection's pipeline bound.
#[allow(clippy::too_many_arguments)]
fn ingest(
    state: &Arc<State>,
    pool: &Pool,
    batcher: &mut Batcher,
    conn: &mut Conn,
    draining: bool,
    pipeline_bound: u64,
    singles_bound: u64,
    queue_retry_ms: u64,
) {
    if draining {
        // Lines still buffered when shutdown lands were never accepted;
        // only already-dispatched requests are owed responses.
        return;
    }
    while conn.in_flight() < pipeline_bound {
        let Some(nl) = conn.read_buf.iter().position(|&b| b == b'\n') else {
            return;
        };
        let line_bytes: Vec<u8> = conn.read_buf.drain(..=nl).collect();
        let Ok(text) = std::str::from_utf8(&line_bytes[..nl]) else {
            // Not UTF-8, so not JSON either; let the normal handler
            // produce the parse-error response (lossily decoded).
            let text = String::from_utf8_lossy(&line_bytes[..nl]).into_owned();
            dispatch_single(state, pool, conn, text, singles_bound, queue_retry_ms);
            continue;
        };
        let line = text.trim();
        if line.is_empty() {
            continue;
        }
        match route(line) {
            Route::Batch(grammar) => {
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let request = PendingRequest {
                    conn: conn.token,
                    seq,
                    line: line.to_string(),
                    received: Instant::now(),
                    trace: TraceId::mint(),
                };
                let grammar = grammar.to_string();
                match batcher.push(&grammar, request) {
                    Ok(()) => bump_queue_depth(state),
                    Err(bounced) => {
                        record_rejection(state);
                        conn.ready.insert(
                            bounced.seq,
                            crate::proto::ResponseLine::overloaded(
                                queue_retry_ms,
                                &bounced.trace.to_hex(),
                            ),
                        );
                    }
                }
            }
            Route::Single => {
                dispatch_single(
                    state,
                    pool,
                    conn,
                    line.to_string(),
                    singles_bound,
                    queue_retry_ms,
                );
            }
        }
        promote_ready(conn);
    }
}

/// Queue one request for individual handling, applying the global
/// singles bound (stats and shutdown are exempt: operators must be able
/// to observe and stop an overloaded server).
fn dispatch_single(
    state: &Arc<State>,
    pool: &Pool,
    conn: &mut Conn,
    line: String,
    singles_bound: u64,
    queue_retry_ms: u64,
) {
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let trace = TraceId::mint();
    // Match the actual `op` field, not a whole-line substring — a
    // payload merely *containing* "stats" must not bypass the bound.
    // Escapes defeat the lexical scan (see `route`), but no plain
    // stats/shutdown request needs them; an unscannable line simply
    // gets no exemption.
    let op = if line.contains('\\') {
        None
    } else {
        scan_str_field(&line, "op")
    };
    let exempt = matches!(op, Some("stats" | "shutdown"));
    if !exempt && state.queue_depth.load(Ordering::Relaxed) >= singles_bound {
        record_rejection(state);
        conn.ready.insert(
            seq,
            crate::proto::ResponseLine::overloaded(queue_retry_ms, &trace.to_hex()),
        );
        return;
    }
    bump_queue_depth(state);
    pool.push(Work::Single(PendingRequest {
        conn: conn.token,
        seq,
        line,
        received: Instant::now(),
        trace,
    }));
}

/// Count a request into the queue-depth gauge.
fn bump_queue_depth(state: &State) {
    let depth = state.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
    state.recorder.gauge_max(names::SERVE_QUEUE_DEPTH, depth);
}

/// Move responses whose turn has come from the parking map into the
/// write buffer, then push bytes.
fn promote_ready(conn: &mut Conn) {
    while let Some(response) = conn.ready.remove(&conn.next_write) {
        conn.write_buf.extend_from_slice(response.as_bytes());
        conn.write_buf.push(b'\n');
        conn.next_write += 1;
    }
    write_some(conn);
}

/// Write as much buffered response data as the socket accepts.
fn write_some(conn: &mut Conn) {
    while conn.write_pos < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => break,
            Ok(n) => conn.write_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Peer is gone: discard what it will never read so the
                // connection counts as flushed and can be reaped.
                conn.write_buf.clear();
                conn.write_pos = 0;
                conn.ready.clear();
                conn.next_write = conn.next_seq;
                conn.read_closed = true;
                return;
            }
        }
    }
    if conn.write_pos == conn.write_buf.len() {
        conn.write_buf.clear();
        conn.write_pos = 0;
    }
}
