//! # pgr-registry
//!
//! The grammar registry and the `pgr` request server.
//!
//! The paper's pipeline trains one grammar per corpus, and everything
//! downstream — compression, decompression, the compressed interpreter —
//! is only correct against *that exact grammar*. Once several trained
//! grammars exist, "which grammar decodes this image?" must be answered
//! by the system, not by operator discipline. This crate answers it with
//! content addressing:
//!
//! * [`GrammarId`] — SHA-256 of a grammar's canonical `.pgrg` bytes; one
//!   grammar, one id, and the id doubles as the load-time integrity
//!   check.
//! * [`Registry`] — a directory of grammars keyed by id, with manifests
//!   ([`Manifest`]), prefix resolution, idempotent stores, stale-object
//!   rejection, and [`Registry::gc`].
//! * [`Server`] / [`serve`] — newline-delimited JSON over a Unix
//!   socket: `compress` / `decompress` / `run` / `stats` / `shutdown`
//!   requests dispatched onto shared per-grammar engines, with
//!   per-request [`EarleyBudget`](pgr_core::EarleyBudget) admission
//!   control and panic isolation.
//!
//! Compressed images produced here carry their grammar's id in the v2
//! image meta section (see `pgr_bytecode::write_program_tagged`), so a
//! stored image round-trips through any registry that holds its grammar
//! — no paths, no "I think it was trained last Tuesday".

#![warn(missing_docs)]

pub(crate) mod batch;
pub mod chaos;
pub mod id;
pub mod proto;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub(crate) mod reactor;
pub mod serve;
pub mod store;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub(crate) mod sys;
pub mod window;

pub use chaos::{ChaosConfig, ChaosCounters, ChaosProxy};
pub use id::{sha256, GrammarId, ID_LEN};
pub use proto::{base64_decode, base64_encode, ResponseLine};
pub use serve::{ServeConfig, ServeError, Server};
pub use store::{GcReport, Manifest, Registry, RegistryError, MANIFEST_VERSION};
pub use window::{op_of_hist_name, SlidingWindow, WindowStats, DEFAULT_WINDOW_SECS};
