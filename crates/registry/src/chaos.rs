//! A socket-level fault proxy for torturing the serve loop.
//!
//! [`ChaosProxy`] sits between clients and a live `pgr serve` socket and
//! injects the transport pathologies a healthy test network never
//! produces: partial writes (byte-at-a-time dribble), mid-frame
//! connection resets, stalls, and garbage bytes spliced into the request
//! stream. The server under test must keep its invariants — every
//! connection slot reclaimed, every healthy peer served, never a hang —
//! no matter which subset of these fire.
//!
//! Fault decisions follow the same discipline as
//! [`pgr_telemetry::faults`]: every verdict is a pure
//! [`splitmix64`] hash of `(seed, connection index, direction, chunk
//! index)`, so a failing chaos run replays exactly from its seed. There
//! is no wall-clock randomness anywhere in this module.
//!
//! The proxy is deliberately boring engineering: one thread per
//! direction per connection, blocking I/O, byte shuttling. It exists to
//! be *trustworthy*, not fast — the interesting concurrency lives on the
//! other side of the socket.

use pgr_telemetry::faults::splitmix64;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fault rates, each in 1024ths per forwarded chunk (1024 = always).
/// The default plan is tame enough that most requests round-trip and
/// vicious enough that every pathology fires in a short run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Reproducibility seed; every fault decision derives from it.
    pub seed: u64,
    /// Dribble a chunk byte-at-a-time instead of in one write.
    pub partial_write_per_1024: u16,
    /// Drop the connection mid-chunk (forward a prefix, then hang up).
    pub reset_per_1024: u16,
    /// Hold a chunk for [`ChaosConfig::stall_ms`] before forwarding.
    pub stall_per_1024: u16,
    /// Stall duration.
    pub stall_ms: u64,
    /// Splice a garbage line into the *request* stream ahead of the
    /// chunk (responses are never corrupted: the proxied client's own
    /// assertions stay meaningful).
    pub garbage_per_1024: u16,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            partial_write_per_1024: 64,
            reset_per_1024: 16,
            stall_per_1024: 32,
            stall_ms: 20,
            garbage_per_1024: 32,
        }
    }
}

/// Counters of what actually fired, for test assertions ("the run was
/// not accidentally fault-free") and the CLI's exit report.
#[derive(Debug, Default)]
pub struct ChaosCounters {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Chunks dribbled byte-at-a-time.
    pub partial_writes: AtomicU64,
    /// Connections reset mid-chunk.
    pub resets: AtomicU64,
    /// Chunks stalled.
    pub stalls: AtomicU64,
    /// Garbage lines spliced in.
    pub garbage: AtomicU64,
}

/// A running fault proxy; dropping it (or calling [`ChaosProxy::stop`])
/// unbinds the listen socket and stops accepting. Live shuttle threads
/// finish their connections and exit on their own.
pub struct ChaosProxy {
    listen: PathBuf,
    stop: Arc<AtomicBool>,
    counters: Arc<ChaosCounters>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start proxying `listen` → `upstream` with the given fault plan.
    ///
    /// # Errors
    ///
    /// When the listen socket cannot be bound.
    pub fn start(
        listen: &Path,
        upstream: &Path,
        config: ChaosConfig,
    ) -> std::io::Result<ChaosProxy> {
        let _ = std::fs::remove_file(listen);
        let listener = UnixListener::bind(listen)?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ChaosCounters::default());
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let upstream = upstream.to_path_buf();
            std::thread::spawn(move || {
                for (conn_index, incoming) in listener.incoming().enumerate() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = incoming else { break };
                    counters.connections.fetch_add(1, Ordering::SeqCst);
                    let Ok(server) = UnixStream::connect(&upstream) else {
                        // Upstream gone: drop the client; that *is* a
                        // fault from its point of view.
                        continue;
                    };
                    spawn_shuttles(client, server, config, conn_index as u64, &counters);
                }
            })
        };
        Ok(ChaosProxy {
            listen: listen.to_path_buf(),
            stop,
            counters,
            accept_thread: Some(accept_thread),
        })
    }

    /// What fired so far.
    pub fn counters(&self) -> &ChaosCounters {
        &self.counters
    }

    /// Stop accepting and unbind the listen socket.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection; the
        // socket file may already be gone, which is fine.
        let _ = UnixStream::connect(&self.listen);
        let _ = std::fs::remove_file(&self.listen);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

/// Direction tags folded into the fault hash so the two halves of one
/// connection draw independent verdicts.
const CLIENT_TO_SERVER: u64 = 0x1;
const SERVER_TO_CLIENT: u64 = 0x2;

fn spawn_shuttles(
    client: UnixStream,
    server: UnixStream,
    config: ChaosConfig,
    conn_index: u64,
    counters: &Arc<ChaosCounters>,
) {
    let (c_read, c_write) = (client.try_clone(), client);
    let (s_read, s_write) = (server.try_clone(), server);
    let (Ok(c_read), Ok(s_read)) = (c_read, s_read) else {
        return;
    };
    let up_counters = Arc::clone(counters);
    std::thread::spawn(move || {
        shuttle(
            c_read,
            s_write,
            config,
            conn_index,
            CLIENT_TO_SERVER,
            &up_counters,
        );
    });
    let down_counters = Arc::clone(counters);
    std::thread::spawn(move || {
        shuttle(
            s_read,
            c_write,
            config,
            conn_index,
            SERVER_TO_CLIENT,
            &down_counters,
        );
    });
}

/// Forward bytes `from` → `to`, rolling the fault dice per chunk.
/// Returns when either side closes or a reset fault fires.
fn shuttle(
    mut from: UnixStream,
    mut to: UnixStream,
    config: ChaosConfig,
    conn_index: u64,
    direction: u64,
    counters: &ChaosCounters,
) {
    let mut chunk_index = 0u64;
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let chunk = chunk_index;
        chunk_index += 1;
        let verdict = move |salt: u64| {
            splitmix64(
                config
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(conn_index << 32)
                    ^ (direction << 24)
                    ^ chunk
                    ^ (salt << 48),
            ) % 1024
        };
        if verdict(1) < u64::from(config.stall_per_1024) {
            counters.stalls.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(config.stall_ms));
        }
        if direction == CLIENT_TO_SERVER && verdict(2) < u64::from(config.garbage_per_1024) {
            counters.garbage.fetch_add(1, Ordering::SeqCst);
            // A complete junk line: the server must answer it in-band
            // (parse error) and keep the connection healthy.
            if to.write_all(b"\x7bgarbage chunk, not json\n").is_err() {
                break;
            }
        }
        if verdict(3) < u64::from(config.reset_per_1024) {
            counters.resets.fetch_add(1, Ordering::SeqCst);
            // Forward half the chunk, then vanish mid-frame.
            let _ = to.write_all(&buf[..n / 2]);
            let _ = to.shutdown(std::net::Shutdown::Both);
            let _ = from.shutdown(std::net::Shutdown::Both);
            break;
        }
        let dribble = verdict(4) < u64::from(config.partial_write_per_1024);
        if dribble {
            counters.partial_writes.fetch_add(1, Ordering::SeqCst);
            for byte in &buf[..n] {
                if to.write_all(std::slice::from_ref(byte)).is_err() {
                    return;
                }
            }
        } else if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    // Half-close so the peer's reader sees EOF even while the opposite
    // shuttle is still draining.
    let _ = to.shutdown(std::net::Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pgr-chaos-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// An upstream echo server: answers each request line with
    /// `{"ok":true,"echo":<len>}`.
    fn echo_upstream(socket: &Path) -> std::thread::JoinHandle<()> {
        let listener = UnixListener::bind(socket).unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut w = stream;
                    let mut line = String::new();
                    while let Ok(n) = reader.read_line(&mut line) {
                        if n == 0 {
                            break;
                        }
                        let reply = format!("{{\"ok\":true,\"echo\":{}}}\n", line.trim_end().len());
                        if w.write_all(reply.as_bytes()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        })
    }

    #[test]
    fn faultless_plan_is_a_transparent_pipe() {
        let dir = tmp("clean");
        let (up, front) = (dir.join("up.sock"), dir.join("front.sock"));
        let _server = echo_upstream(&up);
        let plan = ChaosConfig {
            seed: 1,
            partial_write_per_1024: 0,
            reset_per_1024: 0,
            stall_per_1024: 0,
            stall_ms: 0,
            garbage_per_1024: 0,
        };
        let proxy = ChaosProxy::start(&front, &up, plan).unwrap();
        let stream = UnixStream::connect(&front).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        for i in 0..10 {
            writeln!(w, "{{\"i\":{i}}}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), format!("{{\"ok\":true,\"echo\":{}}}", 7));
        }
        assert_eq!(proxy.counters().connections.load(Ordering::SeqCst), 1);
        assert_eq!(proxy.counters().resets.load(Ordering::SeqCst), 0);
        proxy.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_faults_are_deterministic_under_lockstep_traffic() {
        // Strictly lockstep traffic (one request in flight at a time)
        // with no connection-killing faults gives deterministic chunk
        // boundaries in both directions, so the same seed must draw the
        // same verdicts — exactly. Resets and garbage are excluded here
        // on purpose: a mid-frame reset races the in-flight reply, so
        // its *observable* chunk counts are inherently timing-dependent
        // (their verdicts are still pure hashes).
        let run = |tag: &str| {
            let dir = tmp(tag);
            let (up, front) = (dir.join("up.sock"), dir.join("front.sock"));
            let _server = echo_upstream(&up);
            let plan = ChaosConfig {
                seed: 42,
                partial_write_per_1024: 512,
                reset_per_1024: 0,
                stall_per_1024: 256,
                stall_ms: 1,
                garbage_per_1024: 0,
            };
            let proxy = ChaosProxy::start(&front, &up, plan).unwrap();
            let stream = UnixStream::connect(&front).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream;
            for i in 0..20 {
                // One write syscall per line: `writeln!` on a raw stream
                // may split the format fragments into separate writes,
                // which would make the proxy's chunk boundaries (and so
                // its per-chunk verdicts) timing-dependent.
                w.write_all(format!("{{\"i\":{i}}}\n").as_bytes()).unwrap();
                let mut line = String::new();
                assert!(reader.read_line(&mut line).unwrap() > 0);
            }
            let c = proxy.counters();
            let snapshot = (
                c.partial_writes.load(Ordering::SeqCst),
                c.stalls.load(Ordering::SeqCst),
            );
            proxy.stop();
            let _ = std::fs::remove_dir_all(&dir);
            snapshot
        };
        let first = run("det-a");
        let second = run("det-b");
        assert_eq!(first, second, "same seed, same traffic, same faults");
        assert!(
            first.0 > 0 && first.1 > 0,
            "an aggressive plan must actually fire: {first:?}"
        );
    }

    #[test]
    fn resets_and_garbage_fire_and_the_proxy_survives_them() {
        let dir = tmp("nasty");
        let (up, front) = (dir.join("up.sock"), dir.join("front.sock"));
        let _server = echo_upstream(&up);
        let plan = ChaosConfig {
            seed: 7,
            partial_write_per_1024: 0,
            reset_per_1024: 192,
            stall_per_1024: 0,
            stall_ms: 0,
            garbage_per_1024: 256,
        };
        let proxy = ChaosProxy::start(&front, &up, plan).unwrap();
        for conn in 0..16 {
            let Ok(stream) = UnixStream::connect(&front) else {
                continue;
            };
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream;
            for i in 0..6 {
                if writeln!(w, "{{\"conn\":{conn},\"i\":{i}}}").is_err() {
                    break;
                }
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    break; // reset fault killed this connection
                }
            }
        }
        let c = proxy.counters();
        assert!(c.resets.load(Ordering::SeqCst) > 0, "resets fired");
        assert!(c.garbage.load(Ordering::SeqCst) > 0, "garbage fired");
        assert_eq!(c.connections.load(Ordering::SeqCst), 16);
        proxy.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
