//! The `pgr` request server: NDJSON over a Unix socket, backed by the
//! grammar registry.
//!
//! One [`Server`] owns one [`Registry`] and a map of *engines* — a
//! loaded grammar plus a [`Compressor`] whose derivation cache is shared
//! by every request that names that grammar. Connections get a thread
//! each; inside a connection, requests are handled in order. Admission
//! control is per request: a declared [`EarleyBudget`] is clamped to the
//! server's ceiling before the compressor sees it, so one greedy request
//! degrades itself (to verbatim fallback) without starving neighbours,
//! and a worker panic surfaces as that request's error response, not a
//! dead server.
//!
//! Loaded grammars are intentionally leaked (`Box::leak`): the engine
//! map needs `&'static Grammar` for [`Compressor`]'s borrow, the leak is
//! bounded (once per distinct grammar id) and the server is a long-lived
//! process; its address space *is* the cache.
//!
//! Every request is minted a [`TraceId`] and handled under its trace
//! scope, so spans recorded anywhere below — engine workers, the Earley
//! parser, the VM's interpreter thread — attribute back to the request.
//! Responses (success and error alike) carry the id in a `"trace"`
//! field; error responses also carry elapsed `"micros"`. With
//! [`ServeConfig::slow_ms`] set, any request over the threshold has its
//! full span tree appended to an NDJSON slow-trace log.
//!
//! Request latency lands in the `serve.request.<op>.micros` histograms
//! (pre-registered at bind, so `stats` always reports quantiles for
//! every op); errors land in `serve.request.<op>.errors`; and a
//! [`SlidingWindow`] keeps rolling RPS / error-rate / per-op and
//! per-grammar quantiles for the trailing minute. A `stats` request
//! snapshots all of it, including itself.

use crate::id::GrammarId;
use crate::proto::{base64_decode, base64_encode, json_string, ResponseLine};
use crate::store::{Registry, RegistryError};
use crate::window::{SlidingWindow, DEFAULT_WINDOW_SECS};
use pgr_bytecode::{read_program_tagged, write_program_tagged, ImageKind, Program};
use pgr_core::{Compressor, CompressorConfig, EarleyBudget};
use pgr_grammar::{Grammar, Nt};
use pgr_telemetry::json::{self, Value};
use pgr_telemetry::{names, trace, Metrics, Recorder, Stopwatch, TraceId, DEFAULT_TRACE_CAPACITY};
use pgr_vm::{Vm, VmConfig};
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The operations the server understands (shutdown aside). Metric names
/// for each are pre-registered at bind.
pub const SERVE_OPS: [&str; 4] = ["compress", "decompress", "run", "stats"];

/// How a [`Server`] is put together.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Registry root directory (created if missing).
    pub registry_root: PathBuf,
    /// Per-request Earley budget ceiling; declared budgets above this
    /// are clamped down (and counted under `serve.budget.clamped`).
    pub max_budget: EarleyBudget,
    /// Compressor worker threads per engine (0 = one per CPU).
    pub threads: usize,
    /// Telemetry destination. Pass an enabled recorder — `stats`
    /// responses snapshot it.
    pub recorder: Recorder,
    /// Slow-request threshold in milliseconds: any request at or over it
    /// has its span tree appended to the slow-trace log. `None` disables
    /// per-request tracing entirely.
    pub slow_ms: Option<u64>,
    /// Where the slow-trace NDJSON log goes. Defaults to the socket path
    /// with a `.slow.ndjson` extension. Ignored unless `slow_ms` is set.
    pub slow_trace: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            registry_root: PathBuf::from("registry"),
            max_budget: EarleyBudget::UNLIMITED,
            threads: 0,
            recorder: Recorder::new(),
            slow_ms: None,
            slow_trace: None,
        }
    }
}

/// A failure to stand the server up. Per-request failures are in-band
/// error responses, never this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Binding the Unix socket failed.
    Bind {
        /// The socket path.
        path: String,
        /// The OS error text.
        message: String,
    },
    /// Opening the registry failed.
    Registry(RegistryError),
    /// Opening the slow-trace log failed.
    SlowLog {
        /// The log path.
        path: String,
        /// The OS error text.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { path, message } => {
                write!(f, "cannot bind socket {path}: {message}")
            }
            ServeError::Registry(_) => write!(f, "cannot open the grammar registry"),
            ServeError::SlowLog { path, message } => {
                write!(f, "cannot open slow-trace log {path}: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Registry(e) => Some(e),
            ServeError::Bind { .. } | ServeError::SlowLog { .. } => None,
        }
    }
}

impl From<RegistryError> for ServeError {
    fn from(e: RegistryError) -> ServeError {
        ServeError::Registry(e)
    }
}

/// One loaded grammar: the leaked grammar, its interpreter handles, and
/// a compressor whose derivation cache all requests for this grammar
/// share.
struct Engine {
    id: GrammarId,
    grammar: &'static Grammar,
    start: Nt,
    byte_nt: Nt,
    compressor: Compressor<'static>,
}

struct State {
    registry: Registry,
    engines: Mutex<HashMap<GrammarId, Arc<Engine>>>,
    max_budget: EarleyBudget,
    threads: usize,
    recorder: Recorder,
    running: AtomicBool,
    socket: PathBuf,
    /// Server start, the zero point for uptime and the sliding window.
    start: Instant,
    window: Mutex<SlidingWindow>,
    /// Slow-request threshold in micros, when slow tracing is on.
    slow_micros: Option<u64>,
    /// The open slow-trace NDJSON log, when slow tracing is on.
    slow_log: Option<Mutex<File>>,
}

/// What one request handler produced: the response under construction
/// (the dispatcher appends the trace id and closes it) and the grammar
/// the request resolved to, for per-grammar window accounting.
type Handled = (ResponseLine, Option<GrammarId>);

/// Render an error with its full `source()` chain, outermost first.
fn error_chain(e: &dyn std::error::Error) -> String {
    let mut out = e.to_string();
    let mut cur = e.source();
    while let Some(cause) = cur {
        out.push_str(": ");
        out.push_str(&cause.to_string());
        cur = cause.source();
    }
    out
}

impl State {
    /// Get (loading and caching if needed) the engine for a grammar id.
    fn engine_for(&self, id: GrammarId) -> Result<Arc<Engine>, RegistryError> {
        let mut engines = self.engines.lock().expect("engine map lock");
        if let Some(engine) = engines.get(&id) {
            return Ok(Arc::clone(engine));
        }
        let file = self.registry.load(&id)?;
        // Bounded leak: once per distinct grammar, for the life of the
        // process, in exchange for a 'static borrow the engine map and
        // every worker thread can share.
        let grammar: &'static Grammar = Box::leak(Box::new(file.grammar));
        let config = CompressorConfig::builder()
            .threads(self.threads)
            .earley_budget(self.max_budget)
            .build();
        let compressor =
            Compressor::with_recorder(grammar, file.start, config, self.recorder.clone());
        let engine = Arc::new(Engine {
            id,
            grammar,
            start: file.start,
            byte_nt: file.byte_nt,
            compressor,
        });
        engines.insert(id, Arc::clone(&engine));
        self.recorder
            .gauge_max(names::SERVE_GRAMMARS_LOADED, engines.len() as u64);
        Ok(engine)
    }

    /// Resolve the engine for a request: an explicit `"grammar"` field
    /// (full id or prefix) wins; otherwise the image's embedded grammar
    /// id is used.
    fn engine_of_request(
        &self,
        doc: &Value,
        header_id: Option<GrammarId>,
    ) -> Result<Arc<Engine>, String> {
        let id = match doc.get("grammar").and_then(Value::as_str) {
            Some(spec) => self.registry.resolve(spec).map_err(|e| error_chain(&e))?,
            None => header_id.ok_or(
                "no \"grammar\" field and the image carries no grammar id; \
                 pass one or re-compress with a registry grammar",
            )?,
        };
        self.engine_for(id).map_err(|e| error_chain(&e))
    }

    /// Clamp a request's declared budget to the server ceiling. Returns
    /// the admitted budget and whether clamping happened.
    fn admit_budget(&self, doc: &Value) -> (EarleyBudget, bool) {
        let Some(declared) = doc.get("budget") else {
            return (self.max_budget, false);
        };
        let field = |key: &str| {
            declared
                .get(key)
                .and_then(Value::as_u64)
                .map_or(usize::MAX, |v| usize::try_from(v).unwrap_or(usize::MAX))
        };
        let requested = EarleyBudget {
            max_items: field("max_items"),
            max_columns: field("max_columns"),
        };
        let admitted = EarleyBudget {
            max_items: requested.max_items.min(self.max_budget.max_items),
            max_columns: requested.max_columns.min(self.max_budget.max_columns),
        };
        let clamped = admitted != requested;
        if clamped {
            self.recorder.add(names::SERVE_BUDGET_CLAMPED, 1);
        }
        (admitted, clamped)
    }

    /// Retire a request's trace events: always drained (completed
    /// requests must not pool in the shared buffer), dumped to the
    /// slow-trace log only when the request was over threshold.
    fn retire_trace(&self, id: TraceId, op: &str, micros: u64) {
        let Some(log) = &self.slow_log else {
            return;
        };
        let events = self.recorder.drain_trace(id);
        let over = self.slow_micros.is_some_and(|t| micros >= t);
        if !over {
            return;
        }
        self.recorder.add(names::SERVE_SLOW_REQUESTS, 1);
        // Header line, then one line per event — all independently
        // parseable JSON, greppable by trace id.
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str(&format!(
            "{{\"trace\":\"{}\",\"op\":{},\"micros\":{micros},\"events\":{}}}\n",
            id.to_hex(),
            json_string(op),
            events.len(),
        ));
        for event in &events {
            out.push_str(&event.to_ndjson());
            out.push('\n');
        }
        let mut file = log.lock().expect("slow log lock");
        let _ = file.write_all(out.as_bytes());
        let _ = file.flush();
    }
}

/// Pull and decode the request's base64 `"image"` field.
fn image_of(doc: &Value) -> Result<(Program, ImageKind, Option<GrammarId>), String> {
    let text = doc
        .get("image")
        .and_then(Value::as_str)
        .ok_or("request needs a base64 \"image\" field")?;
    let bytes = base64_decode(text).ok_or("\"image\" is not valid base64")?;
    let (program, kind, raw_id) =
        read_program_tagged(&bytes).map_err(|e| format!("bad image: {}", error_chain(&e)))?;
    Ok((program, kind, raw_id.map(GrammarId::from_raw)))
}

fn handle_compress(state: &State, doc: &Value) -> Result<Handled, String> {
    let (program, kind, _) = image_of(doc)?;
    if kind == ImageKind::Compressed {
        return Err("image is already compressed".into());
    }
    let engine = state.engine_of_request(doc, None)?;
    let (budget, clamped) = state.admit_budget(doc);
    let (cp, stats) = engine
        .compressor
        .compress_budgeted(&program, budget)
        .map_err(|e| error_chain(&e))?;
    let image = write_program_tagged(
        &cp.program,
        ImageKind::Compressed,
        Some(engine.id.as_bytes()),
    );
    Ok((
        ResponseLine::ok()
            .str_field("grammar", &engine.id.to_hex())
            .str_field("image", &base64_encode(&image))
            .num_field("original_bytes", stats.original_code as u64)
            .num_field("compressed_bytes", stats.compressed_code as u64)
            .num_field("fallback_segments", stats.fallback_segments as u64)
            .bool_field("clamped", clamped),
        Some(engine.id),
    ))
}

fn handle_decompress(state: &State, doc: &Value) -> Result<Handled, String> {
    let (program, kind, header_id) = image_of(doc)?;
    if kind == ImageKind::Uncompressed {
        return Err("image is not compressed".into());
    }
    let engine = state.engine_of_request(doc, header_id)?;
    let cp = pgr_core::CompressedProgram { program };
    let back = pgr_core::compress::decompress_program(engine.grammar, engine.start, &cp)
        .map_err(|e| error_chain(&e))?;
    let image = write_program_tagged(&back, ImageKind::Uncompressed, None);
    Ok((
        ResponseLine::ok()
            .str_field("grammar", &engine.id.to_hex())
            .str_field("image", &base64_encode(&image))
            .num_field("bytes", back.code_size() as u64),
        Some(engine.id),
    ))
}

fn handle_run(state: &State, doc: &Value) -> Result<Handled, String> {
    let (program, kind, header_id) = image_of(doc)?;
    let input = match doc.get("input").and_then(Value::as_str) {
        Some(text) => base64_decode(text).ok_or("\"input\" is not valid base64")?,
        None => Vec::new(),
    };
    let config = VmConfig {
        input,
        recorder: state.recorder.clone(),
        ..VmConfig::default()
    };
    let (result, grammar) = match kind {
        ImageKind::Uncompressed => {
            let mut vm = Vm::new(&program, config).map_err(|e| error_chain(&e))?;
            (vm.run().map_err(|e| error_chain(&e))?, None)
        }
        ImageKind::Compressed => {
            let engine = state.engine_of_request(doc, header_id)?;
            let mut vm = Vm::new_compressed(
                &program,
                engine.grammar,
                engine.start,
                engine.byte_nt,
                config,
            )
            .map_err(|e| error_chain(&e))?;
            (vm.run().map_err(|e| error_chain(&e))?, Some(engine.id))
        }
    };
    Ok((
        ResponseLine::ok()
            .int_field(
                "exit_code",
                i64::from(result.exit_code.unwrap_or_else(|| result.ret.i())),
            )
            .str_field("output", &base64_encode(&result.output))
            .num_field("steps", result.steps),
        grammar,
    ))
}

/// `stats` records its own latency *before* snapshotting, so the
/// response's `serve.request.stats.micros` histogram includes the very
/// request that produced it.
fn handle_stats(state: &State, sw: Stopwatch) -> Result<Handled, String> {
    state.recorder.observe(
        names::SERVE_REQUEST_STATS_MICROS,
        sw.elapsed().as_micros() as u64,
    );
    let snapshot = state.recorder.snapshot();
    // `Metrics::to_json` pretty-prints across lines; NDJSON framing
    // needs the whole response on one. Metric names and values contain
    // no newlines, so dropping them is safe.
    let compact: String = snapshot.to_json().chars().filter(|c| *c != '\n').collect();
    let now_sec = state.start.elapsed().as_secs();
    let window = state.window.lock().expect("window lock").aggregate(now_sec);
    Ok((
        ResponseLine::ok()
            .raw_field("metrics", &compact)
            .raw_field("window", &window.to_json())
            .num_field("uptime_secs", now_sec),
        None,
    ))
}

/// Handle one request line, returning the response line.
fn handle_line(state: &State, line: &str) -> String {
    let sw = Stopwatch::start_if(true);
    // One trace id per request, installed as this thread's trace scope:
    // every span below — engine workers and the VM thread included, via
    // explicit propagation — attributes to this request.
    let id = TraceId::mint();
    let _attribution = trace::scope(id);
    state.recorder.add(names::SERVE_REQUESTS, 1);
    let parsed = json::parse(line);
    let op: String = parsed
        .as_ref()
        .ok()
        .and_then(|doc| doc.get("op").and_then(Value::as_str))
        .unwrap_or("")
        .to_string();
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| -> Result<Handled, String> {
        let doc = parsed.map_err(|e| format!("bad request JSON: {e}"))?;
        let span_name = format!(
            "serve.{}",
            if op.is_empty() {
                "request"
            } else {
                op.as_str()
            }
        );
        let _op_span = state.recorder.trace_span(&span_name);
        match op.as_str() {
            "compress" => handle_compress(state, &doc),
            "decompress" => handle_decompress(state, &doc),
            "run" => handle_run(state, &doc),
            "stats" => handle_stats(state, sw),
            "shutdown" => {
                state.running.store(false, Ordering::SeqCst);
                Ok((ResponseLine::ok().bool_field("shutdown", true), None))
            }
            other => Err(format!(
                "unknown op {other:?} (expected compress/decompress/run/stats/shutdown)"
            )),
        }
    }));
    let micros = sw.elapsed().as_micros() as u64;
    let known_op = SERVE_OPS.contains(&op.as_str());
    // stats records itself before snapshotting; the other ops land here.
    if known_op && op != "stats" {
        state
            .recorder
            .observe(&names::serve_request_micros(&op), micros);
    }
    let record_error = || {
        state.recorder.add(names::SERVE_ERRORS, 1);
        if known_op {
            state.recorder.add(&names::serve_request_errors(&op), 1);
        }
    };
    let (response, grammar, ok) = match outcome {
        Ok(Ok((line, grammar))) => (
            line.str_field("trace", &id.to_hex()).finish(),
            grammar,
            true,
        ),
        Ok(Err(message)) => {
            record_error();
            (
                ResponseLine::err_traced(&message, &id.to_hex(), micros),
                None,
                false,
            )
        }
        // A panic is this request's failure, not the server's: the
        // compressor already isolates worker panics, and this outer
        // guard keeps a handler bug from tearing the connection down.
        Err(_) => {
            record_error();
            (
                ResponseLine::err_traced(
                    "internal panic while handling request",
                    &id.to_hex(),
                    micros,
                ),
                None,
                false,
            )
        }
    };
    // Window accounting: known ops keep their name; everything else
    // (unknown ops, shutdown, unparseable lines) pools under "other" so
    // client typos can't grow the op map without bound.
    let window_op = if known_op { op.as_str() } else { "other" };
    let grammar_hex = grammar.map(|g| g.to_hex());
    state.window.lock().expect("window lock").record(
        state.start.elapsed().as_secs(),
        window_op,
        grammar_hex.as_deref(),
        micros,
        ok,
    );
    state.retire_trace(id, window_op, micros);
    response
}

/// Serve one connection: read request lines, write response lines.
fn connection(state: &State, stream: UnixStream) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(reader).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let shutting_down_before = !state.running.load(Ordering::SeqCst);
        let response = handle_line(state, &line);
        if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
            break;
        }
        if !state.running.load(Ordering::SeqCst) {
            // This request (or an earlier one) asked for shutdown: poke
            // the acceptor awake so `run` can stop listening.
            if !shutting_down_before {
                let _ = UnixStream::connect(&state.socket);
            }
            break;
        }
    }
}

/// A bound, not-yet-running request server.
pub struct Server {
    listener: UnixListener,
    state: Arc<State>,
}

impl Server {
    /// Bind `socket` (removing any stale socket file first), open the
    /// registry, and pre-register the serve metric names — every
    /// `serve.request.<op>.micros` histogram and `.errors` counter shows
    /// up in `stats` (quantiles and all) from the first response, not
    /// after the first request of each kind.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] / [`ServeError::Registry`] /
    /// [`ServeError::SlowLog`].
    pub fn bind(socket: impl AsRef<Path>, config: ServeConfig) -> Result<Server, ServeError> {
        let socket = socket.as_ref().to_path_buf();
        let registry = Registry::open(&config.registry_root)?;
        if socket.exists() {
            let _ = std::fs::remove_file(&socket);
        }
        let listener = UnixListener::bind(&socket).map_err(|e| ServeError::Bind {
            path: socket.display().to_string(),
            message: e.to_string(),
        })?;

        let mut pre = Metrics::new();
        for counter in [
            names::SERVE_CONNECTIONS,
            names::SERVE_REQUESTS,
            names::SERVE_ERRORS,
            names::SERVE_BUDGET_CLAMPED,
            names::SERVE_SLOW_REQUESTS,
        ] {
            pre.add(counter, 0);
        }
        for op in SERVE_OPS {
            pre.ensure_hist(names::serve_request_micros(op));
            pre.add(names::serve_request_errors(op), 0);
        }
        config.recorder.record(pre);

        let slow_log = match config.slow_ms {
            Some(_) => {
                // Per-request tracing rides on the metrics recorder; the
                // buffer is drained request-by-request, so capacity only
                // bounds concurrent in-flight spans.
                config.recorder.enable_tracing(DEFAULT_TRACE_CAPACITY);
                let path = config
                    .slow_trace
                    .clone()
                    .unwrap_or_else(|| socket.with_extension("slow.ndjson"));
                let file = File::options()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .map_err(|e| ServeError::SlowLog {
                        path: path.display().to_string(),
                        message: e.to_string(),
                    })?;
                Some(Mutex::new(file))
            }
            None => None,
        };

        Ok(Server {
            listener,
            state: Arc::new(State {
                registry,
                engines: Mutex::new(HashMap::new()),
                max_budget: config.max_budget,
                threads: config.threads,
                recorder: config.recorder,
                running: AtomicBool::new(true),
                socket,
                start: Instant::now(),
                window: Mutex::new(SlidingWindow::new(DEFAULT_WINDOW_SECS)),
                slow_micros: config.slow_ms.map(|ms| ms.saturating_mul(1000)),
                slow_log,
            }),
        })
    }

    /// The socket path the server is listening on.
    pub fn socket(&self) -> &Path {
        &self.state.socket
    }

    /// Accept and serve connections until a `shutdown` request arrives.
    /// Each connection gets a thread; all are joined before return, and
    /// the socket file is removed.
    pub fn run(self) -> Result<(), ServeError> {
        let mut workers = Vec::new();
        for conn in self.listener.incoming() {
            if !self.state.running.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            self.state.recorder.add(names::SERVE_CONNECTIONS, 1);
            let state = Arc::clone(&self.state);
            workers.push(std::thread::spawn(move || connection(&state, stream)));
        }
        for worker in workers {
            let _ = worker.join();
        }
        let _ = std::fs::remove_file(&self.state.socket);
        Ok(())
    }
}
