//! The `pgr` request server: NDJSON over a Unix socket, backed by the
//! grammar registry.
//!
//! One [`Server`] owns one [`Registry`] and a sharded map of *engines* —
//! a loaded grammar plus a [`Compressor`] whose derivation cache is
//! shared by every request that names that grammar. The default
//! transport is an epoll reactor (see [`crate::reactor`]): one event
//! thread owns every socket in nonblocking mode, frames NDJSON
//! incrementally, and hands complete requests to a fixed worker pool;
//! responses are written back in per-connection request order however
//! the pool completes them. Same-grammar `compress` requests arriving
//! within [`ServeConfig::batch_window_us`] coalesce into one engine
//! dispatch (see [`crate::batch`]); `decompress`/`run`/`stats` stay
//! per-request. [`ServeConfig::thread_per_conn`] selects the legacy
//! thread-per-connection transport (also the non-Linux fallback and the
//! benchmark baseline).
//!
//! Admission control is layered: per request, a declared
//! [`EarleyBudget`] is clamped to the server's ceiling before the
//! compressor sees it, so one greedy request degrades itself (to
//! verbatim fallback) without starving neighbours; per server,
//! [`ServeConfig::max_connections`] bounds the connection table and
//! [`ServeConfig::max_queue`] bounds each grammar's pending batch —
//! overflow is answered in-band with
//! `{"ok":false,"error":"overloaded","retry_after_ms":N}` rather than
//! queued unboundedly, counted under `serve.rejected.overload`. A worker
//! panic surfaces as that request's error response, not a dead server.
//!
//! Engines are evicted least-recently-used once
//! [`ServeConfig::max_engines`] are resident, and drop cleanly — the
//! grammar is a heap allocation the engine owns (no `Box::leak`), so a
//! many-tenant server's memory stays bounded.
//!
//! Every request is minted a [`TraceId`] and handled under its trace
//! scope, so spans recorded anywhere below — engine workers, the Earley
//! parser, the VM's interpreter thread — attribute back to the request.
//! Responses (success and error alike) carry the id in a `"trace"`
//! field; error responses also carry elapsed `"micros"`. With
//! [`ServeConfig::slow_ms`] set, any request over the threshold has its
//! full span tree appended to an NDJSON slow-trace log.
//!
//! Request latency lands in the `serve.request.<op>.micros` histograms
//! (pre-registered at bind, so `stats` always reports quantiles for
//! every op); errors land in `serve.request.<op>.errors`; and a
//! [`SlidingWindow`] keeps rolling RPS / error-rate / per-op and
//! per-grammar quantiles for the trailing minute. A `stats` request
//! snapshots all of it, including itself.

use crate::batch::{Batch, Done, PendingRequest};
use crate::id::GrammarId;
use crate::proto::{base64_decode, base64_encode, json_string, ResponseLine};
use crate::store::{Registry, RegistryError};
use crate::window::{SlidingWindow, DEFAULT_WINDOW_SECS};
use pgr_bytecode::{read_program_tagged, write_program_tagged, ImageKind, Program};
use pgr_core::{Compressor, CompressorConfig, EarleyBudget};
use pgr_grammar::{Grammar, Nt};
use pgr_telemetry::json::{self, Value};
use pgr_telemetry::{
    names, trace, CancelToken, Metrics, Recorder, Stopwatch, TraceId, DEFAULT_TRACE_CAPACITY,
};
use pgr_vm::{Vm, VmConfig, VmError};
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The operations the server understands (shutdown aside). Metric names
/// for each are pre-registered at bind.
pub const SERVE_OPS: [&str; 4] = ["compress", "decompress", "run", "stats"];

/// How a [`Server`] is put together.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Registry root directory (created if missing).
    pub registry_root: PathBuf,
    /// Per-request Earley budget ceiling; declared budgets above this
    /// are clamped down (and counted under `serve.budget.clamped`).
    pub max_budget: EarleyBudget,
    /// Compressor worker threads per engine (0 = one per CPU).
    pub threads: usize,
    /// Telemetry destination. Pass an enabled recorder — `stats`
    /// responses snapshot it.
    pub recorder: Recorder,
    /// Slow-request threshold in milliseconds: any request at or over it
    /// has its span tree appended to the slow-trace log. `None` disables
    /// per-request tracing entirely.
    pub slow_ms: Option<u64>,
    /// Where the slow-trace NDJSON log goes. Defaults to the socket path
    /// with a `.slow.ndjson` extension. Ignored unless `slow_ms` is set.
    pub slow_trace: Option<PathBuf>,
    /// Request-handling worker threads in the reactor's pool (0 = one
    /// per CPU). Distinct from `threads`, which sizes each engine's
    /// *segment-encoding* fan-out within one dispatch.
    pub workers: usize,
    /// How long a pending same-grammar compress batch may wait for
    /// company, in microseconds. The reactor flushes early whenever
    /// workers sit idle, so a lone request never pays the window.
    pub batch_window_us: u64,
    /// Connection-table bound; connections beyond it are answered with
    /// an in-band `overloaded` line and closed.
    pub max_connections: usize,
    /// Per-grammar pending-batch bound (and, ×4, the bound on queued
    /// non-compress requests). Overflow is answered `overloaded`.
    pub max_queue: usize,
    /// Resident-engine bound: loading a grammar beyond it evicts the
    /// least-recently-used engine (which reloads on next use).
    pub max_engines: usize,
    /// Use the legacy thread-per-connection transport instead of the
    /// reactor. Batching, queue bounds, and `max_connections` only apply
    /// to the reactor; this mode is the benchmark baseline and the
    /// fallback on platforms without epoll.
    pub thread_per_conn: bool,
    /// Server-wide request deadline ceiling in milliseconds. A request's
    /// own `timeout_ms` field is clamped down to this; requests that
    /// declare none inherit it. `None` means no server-imposed deadline
    /// (per-request `timeout_ms` is still honored). Expiry is answered
    /// in-band as `{"ok":false,"error":"deadline_exceeded"}`.
    pub request_timeout_ms: Option<u64>,
    /// Close connections that have been silent (no readable bytes, no
    /// requests in flight) this long, in milliseconds. `None` keeps
    /// idle connections forever. Reactor transport only.
    pub idle_timeout_ms: Option<u64>,
    /// Per-connection bound on one request line's length in bytes; a
    /// peer that exceeds it is answered in-band and closed. Reactor
    /// transport only.
    pub max_line_bytes: usize,
    /// Size cap on the slow-trace NDJSON log. At the cap the log
    /// rotates once to `<path>.old` (replacing any previous rotation),
    /// so disk usage stays bounded at roughly twice the cap.
    pub slow_trace_max_bytes: u64,
}

/// Default [`ServeConfig::max_line_bytes`]: generous enough for large
/// base64 bytecode images, small enough that one adversarial peer
/// cannot balloon the reactor's memory.
pub const DEFAULT_MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// Default [`ServeConfig::slow_trace_max_bytes`].
pub const DEFAULT_SLOW_TRACE_MAX_BYTES: u64 = 64 * 1024 * 1024;

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            registry_root: PathBuf::from("registry"),
            max_budget: EarleyBudget::UNLIMITED,
            threads: 0,
            recorder: Recorder::new(),
            slow_ms: None,
            slow_trace: None,
            workers: 0,
            batch_window_us: 200,
            max_connections: 1024,
            max_queue: 64,
            max_engines: 64,
            thread_per_conn: false,
            request_timeout_ms: None,
            idle_timeout_ms: None,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            slow_trace_max_bytes: DEFAULT_SLOW_TRACE_MAX_BYTES,
        }
    }
}

/// A failure to stand the server up. Per-request failures are in-band
/// error responses, never this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Binding the Unix socket failed.
    Bind {
        /// The socket path.
        path: String,
        /// The OS error text.
        message: String,
    },
    /// Opening the registry failed.
    Registry(RegistryError),
    /// Opening the slow-trace log failed.
    SlowLog {
        /// The log path.
        path: String,
        /// The OS error text.
        message: String,
    },
    /// The epoll reactor failed to stand up or died on a transport
    /// fault (never a per-request failure).
    Reactor {
        /// The OS error text.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { path, message } => {
                write!(f, "cannot bind socket {path}: {message}")
            }
            ServeError::Registry(_) => write!(f, "cannot open the grammar registry"),
            ServeError::SlowLog { path, message } => {
                write!(f, "cannot open slow-trace log {path}: {message}")
            }
            ServeError::Reactor { message } => {
                write!(f, "serve reactor failed: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Registry(e) => Some(e),
            ServeError::Bind { .. } | ServeError::SlowLog { .. } | ServeError::Reactor { .. } => {
                None
            }
        }
    }
}

impl From<RegistryError> for ServeError {
    fn from(e: RegistryError) -> ServeError {
        ServeError::Registry(e)
    }
}

/// One loaded grammar: the grammar allocation itself, its interpreter
/// handles, and a compressor whose derivation cache all requests for
/// this grammar share.
///
/// The struct is self-referential — `compressor` borrows the grammar
/// allocation — which is what lets an evicted engine *drop* instead of
/// leaking the way the old `Box::leak` map did. Soundness rests on
/// three invariants, all local to this type: the allocation is held as
/// a raw `Box::into_raw` pointer (a `Box` field would be *moved* into
/// the struct while borrowed, which invalidates derived references
/// under Stacked Borrows; a raw pointer is inert under moves); the
/// grammar is never mutated, replaced, or freed before drop; and
/// `compressor` is declared first, so it drops before [`GrammarBox`]
/// frees the allocation it borrows.
pub(crate) struct Engine {
    pub(crate) id: GrammarId,
    pub(crate) start: Nt,
    pub(crate) byte_nt: Nt,
    pub(crate) compressor: Compressor<'static>,
    grammar: GrammarBox,
}

/// Owner of an [`Engine`]'s grammar allocation, as a raw pointer so the
/// borrowed allocation's `Box` is never moved. Must be declared after
/// `compressor`: fields drop in declaration order, and the borrower has
/// to go first.
struct GrammarBox(*mut Grammar);

impl Drop for GrammarBox {
    fn drop(&mut self) {
        // SAFETY: the pointer came from `Box::into_raw` and is freed
        // exactly once, here — after `compressor` (declared earlier in
        // `Engine`, so already dropped) released its borrow.
        drop(unsafe { Box::from_raw(self.0) });
    }
}

// SAFETY: GrammarBox owns its allocation exactly like the Box<Grammar>
// it was made from (which is Send — see the witness below); the raw
// pointer is only a device to avoid moving a borrowed box.
unsafe impl Send for GrammarBox {}
// SAFETY: as above; shared access to the grammar is read-only.
unsafe impl Sync for GrammarBox {}

/// Compile-time witness backing the `unsafe impl`s above.
fn _grammar_box_is_send_sync(b: Box<Grammar>) -> impl Send + Sync {
    b
}

impl Engine {
    fn new(
        id: GrammarId,
        file: pgr_grammar::GrammarFile,
        config: CompressorConfig,
        recorder: Recorder,
    ) -> Arc<Engine> {
        let grammar = Box::into_raw(Box::new(file.grammar));
        // SAFETY: the allocation was just leaked out of its box, is
        // never mutated, and lives until `GrammarBox::drop` — where
        // `compressor` (the only borrower, and the field declared
        // first) is dropped before it. The 'static lifetime never
        // escapes the Engine: every public access borrows through
        // `&self`.
        let grammar_ref: &'static Grammar = unsafe { &*grammar };
        let compressor = Compressor::with_recorder(grammar_ref, file.start, config, recorder);
        Arc::new(Engine {
            id,
            start: file.start,
            byte_nt: file.byte_nt,
            compressor,
            grammar: GrammarBox(grammar),
        })
    }

    /// The engine's grammar, reborrowed at `&self`'s lifetime.
    pub(crate) fn grammar(&self) -> &Grammar {
        // SAFETY: points at the live allocation `self.grammar` owns.
        unsafe { &*self.grammar.0 }
    }
}

/// How many shards the engine map splits into. Requests hash by grammar
/// id, so multi-tenant load spreads across locks instead of serializing
/// on one.
const ENGINE_SHARD_COUNT: usize = 8;

struct ShardEntry {
    engine: Arc<Engine>,
    /// Global LRU tick at last use.
    last_used: u64,
}

/// The sharded, LRU-bounded engine map.
pub(crate) struct EngineShards {
    shards: Vec<Mutex<HashMap<GrammarId, ShardEntry>>>,
    max_engines: usize,
    /// Monotonic use counter; per-entry `last_used` snapshots order the
    /// LRU scan.
    clock: AtomicU64,
    /// Engines resident across all shards.
    resident: AtomicU64,
}

impl EngineShards {
    fn new(max_engines: usize) -> EngineShards {
        EngineShards {
            shards: (0..ENGINE_SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            max_engines: max_engines.max(1),
            clock: AtomicU64::new(0),
            resident: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, id: &GrammarId) -> &Mutex<HashMap<GrammarId, ShardEntry>> {
        // Grammar ids are SHA-256, so any byte is uniformly distributed.
        &self.shards[id.as_bytes()[0] as usize % self.shards.len()]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up an engine, refreshing its LRU position.
    fn get(&self, id: &GrammarId) -> Option<Arc<Engine>> {
        let mut shard = self.shard_of(id).lock().expect("engine shard lock");
        let entry = shard.get_mut(id)?;
        entry.last_used = self.tick();
        Some(Arc::clone(&entry.engine))
    }

    /// Insert an engine loaded outside the lock, evicting LRU engines
    /// first if the map is at its bound. If a racing loader beat us to
    /// this id, their engine wins (and ours drops) so the map never
    /// double-counts.
    fn insert(&self, engine: Arc<Engine>, recorder: &Recorder) -> Arc<Engine> {
        while self.resident.load(Ordering::Relaxed) >= self.max_engines as u64 {
            if !self.evict_lru(recorder) {
                break;
            }
        }
        let id = engine.id;
        let mut shard = self.shard_of(&id).lock().expect("engine shard lock");
        match shard.entry(id) {
            std::collections::hash_map::Entry::Occupied(mut racing) => {
                racing.get_mut().last_used = self.tick();
                Arc::clone(&racing.get().engine)
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(ShardEntry {
                    engine: Arc::clone(&engine),
                    last_used: self.tick(),
                });
                self.resident.fetch_add(1, Ordering::Relaxed);
                engine
            }
        }
    }

    /// Evict the globally least-recently-used engine. Shards are locked
    /// one at a time (scan, then re-lock the winner), so a concurrent
    /// touch can save an engine — the bound is enforced, strict LRU is
    /// best-effort. Returns whether anything was evicted.
    fn evict_lru(&self, recorder: &Recorder) -> bool {
        let mut oldest: Option<(usize, GrammarId, u64)> = None;
        for (si, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock().expect("engine shard lock");
            for (id, entry) in shard.iter() {
                if oldest.is_none_or(|(_, _, t)| entry.last_used < t) {
                    oldest = Some((si, *id, entry.last_used));
                }
            }
        }
        let Some((si, id, seen)) = oldest else {
            return false;
        };
        let mut shard = self.shards[si].lock().expect("engine shard lock");
        if shard.get(&id).is_some_and(|e| e.last_used == seen) {
            shard.remove(&id);
            self.resident.fetch_sub(1, Ordering::Relaxed);
            recorder.add(names::SERVE_ENGINES_EVICTED, 1);
            true
        } else {
            // Touched (or already gone) since the scan: treat the
            // attempt as progress and let the caller re-check the bound.
            true
        }
    }

    /// Engines currently resident across all shards.
    pub(crate) fn len(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }
}

pub(crate) struct State {
    pub(crate) registry: Registry,
    pub(crate) engines: EngineShards,
    max_budget: EarleyBudget,
    threads: usize,
    pub(crate) recorder: Recorder,
    pub(crate) running: AtomicBool,
    pub(crate) socket: PathBuf,
    /// Server start, the zero point for uptime and the sliding window.
    pub(crate) start: Instant,
    pub(crate) window: Mutex<SlidingWindow>,
    /// Requests accepted but not yet picked up by a worker (batch-held
    /// included); the live value behind `serve.queue.depth`.
    pub(crate) queue_depth: AtomicU64,
    /// Slow-request threshold in micros, when slow tracing is on.
    slow_micros: Option<u64>,
    /// The open slow-trace NDJSON log, when slow tracing is on.
    slow_log: Option<Mutex<SlowLog>>,
    /// Server-wide request deadline ceiling, when one is configured.
    pub(crate) request_timeout_ms: Option<u64>,
}

/// The slow-trace NDJSON log with a size cap and single-generation
/// rotation: at the cap the current file is renamed to `<path>.old`
/// (replacing any previous `.old`) and a fresh file is started, so an
/// unattended server's trace dump never grows past ~2× the cap.
struct SlowLog {
    path: PathBuf,
    file: File,
    /// Bytes appended to the current generation.
    written: u64,
    /// Rotation threshold; 0 disables the cap.
    cap: u64,
}

impl SlowLog {
    fn open(path: PathBuf, cap: u64) -> io::Result<SlowLog> {
        let file = File::options().create(true).append(true).open(&path)?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(SlowLog {
            path,
            file,
            written,
            cap,
        })
    }

    fn append(&mut self, chunk: &[u8]) {
        // Rotate before a write that would cross the cap — unless the
        // current generation is empty (one oversized record still lands
        // somewhere instead of rotating forever).
        if self.cap > 0 && self.written > 0 && self.written + chunk.len() as u64 > self.cap {
            let mut old = self.path.clone().into_os_string();
            old.push(".old");
            let _ = std::fs::rename(&self.path, &old);
            if let Ok(fresh) = File::options().create(true).append(true).open(&self.path) {
                self.file = fresh;
                self.written = 0;
            }
        }
        if self.file.write_all(chunk).is_ok() {
            self.written += chunk.len() as u64;
        }
        let _ = self.file.flush();
    }
}

/// What one request handler produced: the response under construction
/// (the dispatcher appends the trace id and closes it) and the grammar
/// the request resolved to, for per-grammar window accounting.
type Handled = (ResponseLine, Option<GrammarId>);

/// Render an error with its full `source()` chain, outermost first.
fn error_chain(e: &dyn std::error::Error) -> String {
    let mut out = e.to_string();
    let mut cur = e.source();
    while let Some(cause) = cur {
        out.push_str(": ");
        out.push_str(&cause.to_string());
        cur = cause.source();
    }
    out
}

impl State {
    /// Get (loading and caching if needed) the engine for a grammar id.
    /// The registry read happens outside any shard lock; a racing load
    /// of the same id is resolved by [`EngineShards::insert`].
    fn engine_for(&self, id: GrammarId) -> Result<Arc<Engine>, RegistryError> {
        if let Some(engine) = self.engines.get(&id) {
            return Ok(engine);
        }
        let file = self.registry.load(&id)?;
        let config = CompressorConfig::builder()
            .threads(self.threads)
            .earley_budget(self.max_budget)
            .build();
        let engine = Engine::new(id, file, config, self.recorder.clone());
        let engine = self.engines.insert(engine, &self.recorder);
        self.recorder
            .gauge_max(names::SERVE_GRAMMARS_LOADED, self.engines.len());
        Ok(engine)
    }

    /// Resolve the engine for a request: an explicit `"grammar"` field
    /// (full id or prefix) wins; otherwise the image's embedded grammar
    /// id is used.
    fn engine_of_request(
        &self,
        doc: &Value,
        header_id: Option<GrammarId>,
    ) -> Result<Arc<Engine>, String> {
        let id = match doc.get("grammar").and_then(Value::as_str) {
            Some(spec) => self.registry.resolve(spec).map_err(|e| error_chain(&e))?,
            None => header_id.ok_or(
                "no \"grammar\" field and the image carries no grammar id; \
                 pass one or re-compress with a registry grammar",
            )?,
        };
        self.engine_for(id).map_err(|e| error_chain(&e))
    }

    /// Clamp a request's declared budget to the server ceiling, counting
    /// the clamp. Returns the admitted budget and whether clamping
    /// happened.
    fn admit_budget(&self, doc: &Value) -> (EarleyBudget, bool) {
        let (admitted, clamped) = self.admit_budget_quiet(doc);
        if clamped {
            self.recorder.add(names::SERVE_BUDGET_CLAMPED, 1);
        }
        (admitted, clamped)
    }

    /// [`State::admit_budget`] without the counter — the batch path
    /// admits once per *distinct* request line but counts once per
    /// request, so it does its own accounting.
    fn admit_budget_quiet(&self, doc: &Value) -> (EarleyBudget, bool) {
        let Some(declared) = doc.get("budget") else {
            return (self.max_budget, false);
        };
        let field = |key: &str| {
            declared
                .get(key)
                .and_then(Value::as_u64)
                .map_or(usize::MAX, |v| usize::try_from(v).unwrap_or(usize::MAX))
        };
        let requested = EarleyBudget {
            max_items: field("max_items"),
            max_columns: field("max_columns"),
        };
        let admitted = EarleyBudget {
            max_items: requested.max_items.min(self.max_budget.max_items),
            max_columns: requested.max_columns.min(self.max_budget.max_columns),
        };
        (admitted, admitted != requested)
    }

    /// Retire a request's trace events: always drained (completed
    /// requests must not pool in the shared buffer), dumped to the
    /// slow-trace log only when the request was over threshold.
    fn retire_trace(&self, id: TraceId, op: &str, micros: u64) {
        let Some(log) = &self.slow_log else {
            return;
        };
        let events = self.recorder.drain_trace(id);
        let over = self.slow_micros.is_some_and(|t| micros >= t);
        if !over {
            return;
        }
        self.recorder.add(names::SERVE_SLOW_REQUESTS, 1);
        // Header line, then one line per event — all independently
        // parseable JSON, greppable by trace id.
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str(&format!(
            "{{\"trace\":\"{}\",\"op\":{},\"micros\":{micros},\"events\":{}}}\n",
            id.to_hex(),
            json_string(op),
            events.len(),
        ));
        for event in &events {
            out.push_str(&event.to_ndjson());
            out.push('\n');
        }
        log.lock().expect("slow log lock").append(out.as_bytes());
    }

    /// Clamp a request's declared `timeout_ms` to the server ceiling:
    /// the tighter of the two wins, and a request that declares none
    /// inherits the ceiling.
    pub(crate) fn effective_timeout_ms(&self, requested: Option<u64>) -> Option<u64> {
        match (requested, self.request_timeout_ms) {
            (Some(r), Some(c)) => Some(r.min(c)),
            (Some(r), None) => Some(r),
            (None, ceiling) => ceiling,
        }
    }
}

/// The fixed in-band error token for a request that ran past its
/// deadline. Clients match on it exactly, the same way they match
/// `overloaded`.
pub(crate) const DEADLINE_EXCEEDED: &str = "deadline_exceeded";

/// Fold a compression failure into a response message, collapsing
/// cancellation to the fixed `deadline_exceeded` token.
fn compress_error_message(e: &pgr_core::CompressError) -> String {
    match e {
        pgr_core::CompressError::Cancelled { .. } => DEADLINE_EXCEEDED.to_string(),
        other => error_chain(other),
    }
}

/// Fold a VM failure into a response message, collapsing cancellation
/// to the fixed `deadline_exceeded` token.
fn vm_error_message(e: &VmError) -> String {
    match e {
        VmError::Cancelled { .. } => DEADLINE_EXCEEDED.to_string(),
        other => error_chain(other),
    }
}

/// Pull and decode the request's base64 `"image"` field.
fn image_of(doc: &Value) -> Result<(Program, ImageKind, Option<GrammarId>), String> {
    let text = doc
        .get("image")
        .and_then(Value::as_str)
        .ok_or("request needs a base64 \"image\" field")?;
    let bytes = base64_decode(text).ok_or("\"image\" is not valid base64")?;
    let (program, kind, raw_id) =
        read_program_tagged(&bytes).map_err(|e| format!("bad image: {}", error_chain(&e)))?;
    Ok((program, kind, raw_id.map(GrammarId::from_raw)))
}

fn handle_compress(state: &State, doc: &Value, cancel: &CancelToken) -> Result<Handled, String> {
    let (program, kind, _) = image_of(doc)?;
    if kind == ImageKind::Compressed {
        return Err("image is already compressed".into());
    }
    let engine = state.engine_of_request(doc, None)?;
    let (budget, clamped) = state.admit_budget(doc);
    let (cp, stats) = engine
        .compressor
        .compress_cancellable(&program, budget, cancel.clone())
        .map_err(|e| compress_error_message(&e))?;
    let image = write_program_tagged(
        &cp.program,
        ImageKind::Compressed,
        Some(engine.id.as_bytes()),
    );
    Ok((
        ResponseLine::ok()
            .str_field("grammar", &engine.id.to_hex())
            .str_field("image", &base64_encode(&image))
            .num_field("original_bytes", stats.original_code as u64)
            .num_field("compressed_bytes", stats.compressed_code as u64)
            .num_field("fallback_segments", stats.fallback_segments as u64)
            .bool_field("clamped", clamped),
        Some(engine.id),
    ))
}

fn handle_decompress(state: &State, doc: &Value) -> Result<Handled, String> {
    let (program, kind, header_id) = image_of(doc)?;
    if kind == ImageKind::Uncompressed {
        return Err("image is not compressed".into());
    }
    let engine = state.engine_of_request(doc, header_id)?;
    let cp = pgr_core::CompressedProgram { program };
    let back = pgr_core::compress::decompress_program(engine.grammar(), engine.start, &cp)
        .map_err(|e| error_chain(&e))?;
    let image = write_program_tagged(&back, ImageKind::Uncompressed, None);
    Ok((
        ResponseLine::ok()
            .str_field("grammar", &engine.id.to_hex())
            .str_field("image", &base64_encode(&image))
            .num_field("bytes", back.code_size() as u64),
        Some(engine.id),
    ))
}

fn handle_run(state: &State, doc: &Value, cancel: &CancelToken) -> Result<Handled, String> {
    let (program, kind, header_id) = image_of(doc)?;
    let input = match doc.get("input").and_then(Value::as_str) {
        Some(text) => base64_decode(text).ok_or("\"input\" is not valid base64")?,
        None => Vec::new(),
    };
    let config = VmConfig {
        input,
        recorder: state.recorder.clone(),
        cancel: cancel.clone(),
        ..VmConfig::default()
    };
    let (result, grammar, tier2) = match kind {
        ImageKind::Uncompressed => {
            let mut vm = Vm::new(&program, config).map_err(|e| vm_error_message(&e))?;
            let result = vm.run().map_err(|e| vm_error_message(&e))?;
            (result, None, vm.tier2_stats())
        }
        ImageKind::Compressed => {
            let engine = state.engine_of_request(doc, header_id)?;
            let mut vm = Vm::new_compressed(
                &program,
                engine.grammar(),
                engine.start,
                engine.byte_nt,
                config,
            )
            .map_err(|e| vm_error_message(&e))?;
            let result = vm.run().map_err(|e| vm_error_message(&e))?;
            (result, Some(engine.id), vm.tier2_stats())
        }
    };
    // Surface this request's tier-2 activity in the sliding stats
    // window, so `pgr top` shows tier-up churn as it happens.
    state.window.lock().expect("window lock").record_tier2(
        state.start.elapsed().as_secs(),
        tier2.compiled,
        tier2.deopts,
    );
    Ok((
        ResponseLine::ok()
            .int_field(
                "exit_code",
                i64::from(result.exit_code.unwrap_or_else(|| result.ret.i())),
            )
            .str_field("output", &base64_encode(&result.output))
            .num_field("steps", result.steps),
        grammar,
    ))
}

/// `stats` records its own latency *before* snapshotting, so the
/// response's `serve.request.stats.micros` histogram includes the very
/// request that produced it.
fn handle_stats(state: &State, received: Instant) -> Result<Handled, String> {
    state.recorder.observe(
        names::SERVE_REQUEST_STATS_MICROS,
        received.elapsed().as_micros() as u64,
    );
    let snapshot = state.recorder.snapshot();
    // `Metrics::to_json` pretty-prints across lines; NDJSON framing
    // needs the whole response on one. Metric names and values contain
    // no newlines, so dropping them is safe.
    let compact: String = snapshot.to_json().chars().filter(|c| *c != '\n').collect();
    let now_sec = state.start.elapsed().as_secs();
    let window = state.window.lock().expect("window lock").aggregate(now_sec);
    Ok((
        ResponseLine::ok()
            .raw_field("metrics", &compact)
            .raw_field("window", &window.to_json())
            .num_field("queue_depth", state.queue_depth.load(Ordering::Relaxed))
            .num_field("engines", state.engines.len())
            .num_field("uptime_secs", now_sec),
        None,
    ))
}

/// Handle one request line, minting its trace id and timing from now —
/// the legacy transport's entry point, where a request is handled the
/// moment it is read.
fn handle_line(state: &State, line: &str) -> String {
    handle_line_at(
        state,
        line,
        TraceId::mint(),
        Instant::now(),
        &CancelToken::new(),
    )
}

/// Handle one reactor-queued request end to end: the response's latency
/// runs from `req.received`, so queue wait is part of what the
/// histograms see.
pub(crate) fn handle_single(state: &State, req: PendingRequest) -> Done {
    let response = handle_line_at(state, &req.line, req.trace, req.received, &req.cancel);
    Done {
        conn: req.conn,
        seq: req.seq,
        response,
    }
}

/// Handle one request line under a caller-supplied trace id, arrival
/// time, and cancellation token, returning the response line.
fn handle_line_at(
    state: &State,
    line: &str,
    id: TraceId,
    received: Instant,
    cancel: &CancelToken,
) -> String {
    // The trace id is installed as this thread's trace scope: every span
    // below — engine workers and the VM thread included, via explicit
    // propagation — attributes to this request.
    let _attribution = trace::scope(id);
    state.recorder.add(names::SERVE_REQUESTS, 1);
    let parsed = json::parse(line);
    let op: String = parsed
        .as_ref()
        .ok()
        .and_then(|doc| doc.get("op").and_then(Value::as_str))
        .unwrap_or("")
        .to_string();
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| -> Result<Handled, String> {
        let doc = parsed.map_err(|e| format!("bad request JSON: {e}"))?;
        // Arm (or tighten) the deadline from the parsed request. The
        // reactor usually armed the token at intake already; deadlines
        // only tighten, so re-arming with the same value is a no-op,
        // and this is where escaped lines the reactor's lexical scan
        // could not vouch for get their deadline at all.
        let requested = doc.get("timeout_ms").and_then(Value::as_u64);
        if let Some(ms) = state.effective_timeout_ms(requested) {
            cancel.set_deadline(Duration::from_millis(ms));
        }
        let span_name = format!(
            "serve.{}",
            if op.is_empty() {
                "request"
            } else {
                op.as_str()
            }
        );
        let _op_span = state.recorder.trace_span(&span_name);
        // A request whose deadline passed while it sat queued fails
        // cheaply here, before any engine or VM work starts. stats and
        // shutdown stay exempt: operators must be able to observe and
        // stop a wedged server.
        if cancel.is_cancelled() && matches!(op.as_str(), "compress" | "decompress" | "run") {
            return Err(DEADLINE_EXCEEDED.to_string());
        }
        match op.as_str() {
            "compress" => handle_compress(state, &doc, cancel),
            "decompress" => handle_decompress(state, &doc),
            "run" => handle_run(state, &doc, cancel),
            "stats" => handle_stats(state, received),
            "shutdown" => {
                state.running.store(false, Ordering::SeqCst);
                Ok((ResponseLine::ok().bool_field("shutdown", true), None))
            }
            other => Err(format!(
                "unknown op {other:?} (expected compress/decompress/run/stats/shutdown)"
            )),
        }
    }));
    let micros = received.elapsed().as_micros() as u64;
    let known_op = SERVE_OPS.contains(&op.as_str());
    // stats records itself before snapshotting; the other ops land here.
    if known_op && op != "stats" {
        state
            .recorder
            .observe(&names::serve_request_micros(&op), micros);
    }
    let record_error = || {
        state.recorder.add(names::SERVE_ERRORS, 1);
        if known_op {
            state.recorder.add(&names::serve_request_errors(&op), 1);
        }
    };
    let mut deadline_hit = false;
    let (response, grammar, ok) = match outcome {
        Ok(Ok((line, grammar))) => (
            line.str_field("trace", &id.to_hex()).finish(),
            grammar,
            true,
        ),
        Ok(Err(message)) => {
            record_error();
            if message == DEADLINE_EXCEEDED {
                deadline_hit = true;
                state.recorder.add(names::SERVE_DEADLINE_EXCEEDED, 1);
            }
            (
                ResponseLine::err_traced(&message, &id.to_hex(), micros),
                None,
                false,
            )
        }
        // A panic is this request's failure, not the server's: the
        // compressor already isolates worker panics, and this outer
        // guard keeps a handler bug from tearing the connection down.
        Err(_) => {
            record_error();
            (
                ResponseLine::err_traced(
                    "internal panic while handling request",
                    &id.to_hex(),
                    micros,
                ),
                None,
                false,
            )
        }
    };
    // Window accounting: known ops keep their name; everything else
    // (unknown ops, shutdown, unparseable lines) pools under "other" so
    // client typos can't grow the op map without bound.
    let window_op = if known_op { op.as_str() } else { "other" };
    let grammar_hex = grammar.map(|g| g.to_hex());
    {
        let now_sec = state.start.elapsed().as_secs();
        let mut window = state.window.lock().expect("window lock");
        window.record(now_sec, window_op, grammar_hex.as_deref(), micros, ok);
        if deadline_hit {
            window.record_deadline(now_sec, false);
        }
    }
    state.retire_trace(id, window_op, micros);
    response
}

/// One distinct request line's preparation outcome within a batch.
enum Prep {
    /// Parsed, validated, budget admitted: ready for the engine.
    Ready {
        program: Program,
        budget: EarleyBudget,
        clamped: bool,
    },
    /// Failed before the engine (bad JSON, bad image, …); every request
    /// sharing the line gets this message.
    Failed(String),
    /// The line is not actually a same-grammar compress request (the
    /// reactor's cheap field scan can be fooled by adversarial nesting);
    /// its requests take the full single-request path instead.
    Divert,
}

/// Handle one flushed same-grammar compress batch: one engine dispatch
/// for every *distinct* request line, fanned back out to each member.
///
/// Duplicate lines — the common case under closed-loop load, where many
/// clients compress the same artifact — are prepared and compressed
/// once; compression is deterministic, so their responses differ only
/// in trace id. Distinct lines become entries of one
/// [`Compressor::compress_batch`] call, sharing a single parallel
/// stride and cache epoch. Byte-for-byte, every response is identical
/// to what serial per-request dispatch would have produced.
pub(crate) fn handle_batch(state: &State, batch: Batch) -> Vec<Done> {
    // Engine work runs under a batch-level trace id (segment spans can't
    // be attributed to one member of a shared dispatch); each member's
    // response still carries its own per-request id.
    let batch_trace = TraceId::mint();
    let _attribution = trace::scope(batch_trace);
    let batch_sw = Stopwatch::start_if(true);

    // Dispatch-level telemetry: how many requests coalesced, and how
    // long the oldest member waited between arrival and dispatch.
    let size = batch.requests.len() as u64;
    let wait_micros = batch
        .requests
        .first()
        .map_or(0, |r| r.received.elapsed().as_micros() as u64);
    state.recorder.observe(names::SERVE_BATCH_SIZE, size);
    state
        .recorder
        .observe(names::SERVE_BATCH_WAIT_MICROS, wait_micros);
    state.window.lock().expect("window lock").record_batch(
        state.start.elapsed().as_secs(),
        size,
        wait_micros,
    );

    // Group identical lines.
    let mut distinct: Vec<&str> = Vec::new();
    let mut group_of: Vec<usize> = Vec::with_capacity(batch.requests.len());
    {
        let mut index: HashMap<&str, usize> = HashMap::new();
        for req in &batch.requests {
            let next = distinct.len();
            let g = *index.entry(req.line.as_str()).or_insert(next);
            if g == next {
                distinct.push(req.line.as_str());
            }
            group_of.push(g);
        }
    }

    // Resolve the shared grammar once for the whole batch.
    let engine = state
        .registry
        .resolve(&batch.grammar)
        .map_err(|e| error_chain(&e))
        .and_then(|id| state.engine_for(id).map_err(|e| error_chain(&e)));

    // Prepare each distinct line.
    let mut preps: Vec<Prep> = Vec::with_capacity(distinct.len());
    for line in &distinct {
        let prep = (|| -> Prep {
            let doc = match json::parse(line) {
                Ok(doc) => doc,
                Err(e) => return Prep::Failed(format!("bad request JSON: {e}")),
            };
            if doc.get("op").and_then(Value::as_str) != Some("compress")
                || doc.get("grammar").and_then(Value::as_str) != Some(batch.grammar.as_str())
            {
                return Prep::Divert;
            }
            let (program, kind, _) = match image_of(&doc) {
                Ok(image) => image,
                Err(message) => return Prep::Failed(message),
            };
            if kind == ImageKind::Compressed {
                return Prep::Failed("image is already compressed".into());
            }
            let (budget, clamped) = state.admit_budget_quiet(&doc);
            Prep::Ready {
                program,
                budget,
                clamped,
            }
        })();
        preps.push(prep);
    }
    if engine.is_err() {
        // Unknown grammar: nothing to dispatch; every Ready line fails
        // with the resolution error below.
        for prep in &mut preps {
            if let Prep::Ready { .. } = prep {
                *prep = Prep::Failed(engine.as_ref().err().cloned().unwrap_or_default());
            }
        }
    }

    // One engine dispatch for everything Ready.
    let _op_span = state.recorder.trace_span("serve.compress");
    let ready: Vec<usize> = (0..preps.len())
        .filter(|&i| matches!(preps[i], Prep::Ready { .. }))
        .collect();
    let mut templates: Vec<Option<Result<ResponseLine, String>>> =
        (0..preps.len()).map(|_| None).collect();
    if let (Ok(engine), false) = (&engine, ready.is_empty()) {
        // Each distinct line is compressed once and shared by every
        // member that sent it, so the entry's cancellation token must
        // not let one member's short deadline kill work a more patient
        // member still wants: the group runs under the most generous
        // member's token (an undeadlined member wins outright).
        let group_cancel = |group: usize| -> CancelToken {
            let mut best: Option<&CancelToken> = None;
            for (req, &g) in batch.requests.iter().zip(&group_of) {
                if g != group {
                    continue;
                }
                match req.cancel.remaining() {
                    None => return req.cancel.clone(),
                    Some(left) => {
                        if best.is_none_or(|b| b.remaining().is_some_and(|br| br < left)) {
                            best = Some(&req.cancel);
                        }
                    }
                }
            }
            best.cloned().unwrap_or_else(CancelToken::never)
        };
        let entries: Vec<pgr_core::BatchEntry<'_>> = ready
            .iter()
            .map(|&i| match &preps[i] {
                Prep::Ready {
                    program, budget, ..
                } => pgr_core::BatchEntry {
                    program,
                    budget: *budget,
                    cancel: group_cancel(i),
                },
                _ => unreachable!("filtered to Ready"),
            })
            .collect();
        let results = std::panic::catch_unwind(AssertUnwindSafe(|| {
            engine.compressor.compress_batch_cancellable(&entries)
        }));
        match results {
            Ok(results) => {
                for (&i, result) in ready.iter().zip(results) {
                    let &Prep::Ready { clamped, .. } = &preps[i] else {
                        unreachable!("filtered to Ready");
                    };
                    templates[i] = Some(match result {
                        Ok((cp, stats)) => {
                            let image = write_program_tagged(
                                &cp.program,
                                ImageKind::Compressed,
                                Some(engine.id.as_bytes()),
                            );
                            Ok(ResponseLine::ok()
                                .str_field("grammar", &engine.id.to_hex())
                                .str_field("image", &base64_encode(&image))
                                .num_field("original_bytes", stats.original_code as u64)
                                .num_field("compressed_bytes", stats.compressed_code as u64)
                                .num_field("fallback_segments", stats.fallback_segments as u64)
                                .bool_field("clamped", clamped))
                        }
                        Err(e) => Err(compress_error_message(&e)),
                    });
                }
            }
            Err(_) => {
                for &i in &ready {
                    templates[i] = Some(Err("internal panic while handling request".to_string()));
                }
            }
        }
    }

    // Fan back out: one response per member, with per-request trace id,
    // latency, and window/metric accounting.
    let grammar_hex = engine.as_ref().ok().map(|e| e.id.to_hex());
    let now_sec = state.start.elapsed().as_secs();
    let mut out = Vec::with_capacity(batch.requests.len());
    for (req, &group) in batch.requests.iter().zip(&group_of) {
        if matches!(preps[group], Prep::Divert) {
            out.push(handle_single(
                state,
                PendingRequest {
                    conn: req.conn,
                    seq: req.seq,
                    line: req.line.clone(),
                    received: req.received,
                    trace: req.trace,
                    cancel: req.cancel.clone(),
                },
            ));
            continue;
        }
        state.recorder.add(names::SERVE_REQUESTS, 1);
        let micros = req.received.elapsed().as_micros() as u64;
        state
            .recorder
            .observe(names::SERVE_REQUEST_COMPRESS_MICROS, micros);
        let mut deadline_hit = false;
        let (response, ok) = match &templates[group] {
            Some(Ok(template)) => {
                if matches!(&preps[group], Prep::Ready { clamped: true, .. }) {
                    state.recorder.add(names::SERVE_BUDGET_CLAMPED, 1);
                }
                (
                    template
                        .clone()
                        .str_field("trace", &req.trace.to_hex())
                        .finish(),
                    true,
                )
            }
            Some(Err(message)) => {
                deadline_hit = message == DEADLINE_EXCEEDED;
                (
                    ResponseLine::err_traced(message, &req.trace.to_hex(), micros),
                    false,
                )
            }
            None => {
                let Prep::Failed(message) = &preps[group] else {
                    unreachable!("non-Ready groups carry a failure message");
                };
                (
                    ResponseLine::err_traced(message, &req.trace.to_hex(), micros),
                    false,
                )
            }
        };
        if !ok {
            state.recorder.add(names::SERVE_ERRORS, 1);
            state.recorder.add(names::SERVE_REQUEST_COMPRESS_ERRORS, 1);
            if deadline_hit {
                state.recorder.add(names::SERVE_DEADLINE_EXCEEDED, 1);
            }
        }
        {
            let mut window = state.window.lock().expect("window lock");
            window.record(now_sec, "compress", grammar_hex.as_deref(), micros, ok);
            if deadline_hit {
                window.record_deadline(now_sec, false);
            }
        }
        state.retire_trace(req.trace, "compress", micros);
        out.push(Done {
            conn: req.conn,
            seq: req.seq,
            response,
        });
    }
    // Retire the batch-level trace (engine spans accumulated here); it
    // reports to the slow log under the whole dispatch's elapsed time.
    state.retire_trace(
        batch_trace,
        "compress.batch",
        batch_sw.elapsed().as_micros() as u64,
    );
    out
}

/// Serve one connection: read request lines, write response lines.
fn connection(state: &State, stream: UnixStream) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(reader).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let shutting_down_before = !state.running.load(Ordering::SeqCst);
        let response = handle_line(state, &line);
        if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
            break;
        }
        if !state.running.load(Ordering::SeqCst) {
            // This request (or an earlier one) asked for shutdown: poke
            // the acceptor awake so `run` can stop listening.
            if !shutting_down_before {
                let _ = UnixStream::connect(&state.socket);
            }
            break;
        }
    }
}

/// A bound, not-yet-running request server.
pub struct Server {
    listener: UnixListener,
    workers: usize,
    batch_window_us: u64,
    max_connections: usize,
    max_queue: usize,
    thread_per_conn: bool,
    idle_timeout_ms: Option<u64>,
    max_line_bytes: usize,
    state: Arc<State>,
}

impl Server {
    /// Bind `socket` (removing any stale socket file first), open the
    /// registry, and pre-register the serve metric names — every
    /// `serve.request.<op>.micros` histogram and `.errors` counter shows
    /// up in `stats` (quantiles and all) from the first response, not
    /// after the first request of each kind.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] / [`ServeError::Registry`] /
    /// [`ServeError::SlowLog`].
    pub fn bind(socket: impl AsRef<Path>, config: ServeConfig) -> Result<Server, ServeError> {
        let socket = socket.as_ref().to_path_buf();
        let registry = Registry::open(&config.registry_root)?;
        if socket.exists() {
            let _ = std::fs::remove_file(&socket);
        }
        let listener = UnixListener::bind(&socket).map_err(|e| ServeError::Bind {
            path: socket.display().to_string(),
            message: e.to_string(),
        })?;

        let mut pre = Metrics::new();
        for counter in [
            names::SERVE_CONNECTIONS,
            names::SERVE_REQUESTS,
            names::SERVE_ERRORS,
            names::SERVE_BUDGET_CLAMPED,
            names::SERVE_SLOW_REQUESTS,
            names::SERVE_REJECTED_OVERLOAD,
            names::SERVE_ENGINES_EVICTED,
            names::SERVE_DEADLINE_EXCEEDED,
            names::SERVE_DEADLINE_FORCE_EXPIRED,
            names::SERVE_CONN_IDLE_CLOSED,
            names::SERVE_LINE_OVERFLOW,
        ] {
            pre.add(counter, 0);
        }
        pre.gauge_max(names::SERVE_QUEUE_DEPTH, 0);
        pre.ensure_hist(names::SERVE_BATCH_SIZE);
        pre.ensure_hist(names::SERVE_BATCH_WAIT_MICROS);
        for op in SERVE_OPS {
            pre.ensure_hist(names::serve_request_micros(op));
            pre.add(names::serve_request_errors(op), 0);
        }
        config.recorder.record(pre);

        let slow_log = match config.slow_ms {
            Some(_) => {
                // Per-request tracing rides on the metrics recorder; the
                // buffer is drained request-by-request, so capacity only
                // bounds concurrent in-flight spans.
                config.recorder.enable_tracing(DEFAULT_TRACE_CAPACITY);
                let path = config
                    .slow_trace
                    .clone()
                    .unwrap_or_else(|| socket.with_extension("slow.ndjson"));
                let log =
                    SlowLog::open(path.clone(), config.slow_trace_max_bytes).map_err(|e| {
                        ServeError::SlowLog {
                            path: path.display().to_string(),
                            message: e.to_string(),
                        }
                    })?;
                Some(Mutex::new(log))
            }
            None => None,
        };

        Ok(Server {
            listener,
            workers: config.workers,
            batch_window_us: config.batch_window_us,
            max_connections: config.max_connections,
            max_queue: config.max_queue,
            thread_per_conn: config.thread_per_conn,
            idle_timeout_ms: config.idle_timeout_ms,
            max_line_bytes: config.max_line_bytes,
            state: Arc::new(State {
                registry,
                engines: EngineShards::new(config.max_engines),
                max_budget: config.max_budget,
                threads: config.threads,
                recorder: config.recorder,
                running: AtomicBool::new(true),
                socket,
                start: Instant::now(),
                window: Mutex::new(SlidingWindow::new(DEFAULT_WINDOW_SECS)),
                queue_depth: AtomicU64::new(0),
                slow_micros: config.slow_ms.map(|ms| ms.saturating_mul(1000)),
                slow_log,
                request_timeout_ms: config.request_timeout_ms,
            }),
        })
    }

    /// The socket path the server is listening on.
    pub fn socket(&self) -> &Path {
        &self.state.socket
    }

    /// Serve until a `shutdown` request arrives, then drain in-flight
    /// work, remove the socket file, and return.
    ///
    /// The default transport is the epoll reactor; with
    /// [`ServeConfig::thread_per_conn`] set (or on platforms without
    /// epoll) each connection gets a thread instead.
    ///
    /// # Errors
    ///
    /// [`ServeError::Reactor`] when the event loop hits an
    /// unrecoverable I/O error (epoll or eventfd setup, listener
    /// registration).
    pub fn run(self) -> Result<(), ServeError> {
        let use_reactor = !self.thread_per_conn;
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if use_reactor {
            let cfg = crate::reactor::ReactorConfig {
                workers: self.workers,
                batch_window: std::time::Duration::from_micros(self.batch_window_us.max(1)),
                max_connections: self.max_connections,
                max_queue: self.max_queue,
                idle_timeout: self.idle_timeout_ms.map(Duration::from_millis),
                max_line_bytes: self.max_line_bytes,
            };
            let state = Arc::clone(&self.state);
            let result = crate::reactor::run(state, self.listener, cfg);
            let _ = std::fs::remove_file(&self.state.socket);
            return result.map_err(|e| ServeError::Reactor {
                message: e.to_string(),
            });
        }
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        let _ = use_reactor; // no epoll here: always thread-per-connection
        let mut workers = Vec::new();
        for conn in self.listener.incoming() {
            if !self.state.running.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            self.state.recorder.add(names::SERVE_CONNECTIONS, 1);
            let state = Arc::clone(&self.state);
            workers.push(std::thread::spawn(move || connection(&state, stream)));
        }
        for worker in workers {
            let _ = worker.join();
        }
        let _ = std::fs::remove_file(&self.state.socket);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgr_grammar::{GrammarFile, InitialGrammar};
    use std::sync::Weak;

    fn sample_file() -> GrammarFile {
        let ig = InitialGrammar::build();
        GrammarFile::new(ig.grammar, ig.nt_start, ig.nt_byte)
    }

    fn engine(first_byte: u8, recorder: &Recorder) -> Arc<Engine> {
        let mut raw = [0u8; crate::id::ID_LEN];
        raw[0] = first_byte;
        Engine::new(
            GrammarId::from_raw(raw),
            sample_file(),
            CompressorConfig::builder().threads(1).build(),
            recorder.clone(),
        )
    }

    #[test]
    fn engine_shards_evict_lru_at_bound_and_drop_cleanly() {
        let recorder = Recorder::new();
        let shards = EngineShards::new(2);
        let a = shards.insert(engine(1, &recorder), &recorder);
        let weak_a: Weak<Engine> = Arc::downgrade(&a);
        let id_a = a.id;
        drop(a);
        let id_b = shards.insert(engine(2, &recorder), &recorder).id;
        assert_eq!(shards.len(), 2);

        // Touch A so B is the least-recently-used entry at the bound.
        assert!(shards.get(&id_a).is_some());
        let id_c = shards.insert(engine(3, &recorder), &recorder).id;
        assert_eq!(shards.len(), 2, "resident bound holds");
        assert!(shards.get(&id_b).is_none(), "LRU engine was evicted");
        assert!(shards.get(&id_a).is_some(), "recently-used engine survives");
        assert!(shards.get(&id_c).is_some(), "new engine is resident");
        assert_eq!(recorder.snapshot().counter(names::SERVE_ENGINES_EVICTED), 1);

        // Leak regression: before eviction existed, every engine's
        // grammar was `Box::leak`ed and lived until process exit. Evict
        // A (C is fresher) and prove its memory is actually released.
        assert!(shards.get(&id_c).is_some());
        let _d = shards.insert(engine(4, &recorder), &recorder);
        assert!(shards.get(&id_a).is_none());
        assert!(
            weak_a.upgrade().is_none(),
            "evicted engine must drop, grammar and compressor included"
        );
    }

    #[test]
    fn racing_inserts_of_one_id_share_an_engine() {
        let recorder = Recorder::new();
        let shards = EngineShards::new(4);
        let first = shards.insert(engine(9, &recorder), &recorder);
        let second = shards.insert(engine(9, &recorder), &recorder);
        assert!(Arc::ptr_eq(&first, &second), "existing entry wins the race");
        assert_eq!(shards.len(), 1);
    }
}
